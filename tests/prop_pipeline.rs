//! Property-based end-to-end checks: for randomly shaped community graphs
//! and injection parameters, the full pipeline neither panics nor produces
//! malformed scores.

use proptest::prelude::*;
use vgod_suite::prelude::*;

fn tiny_vgod() -> Vgod {
    let mut cfg = VgodConfig::fast();
    cfg.vbm.hidden_dim = 8;
    cfg.vbm.epochs = 2;
    cfg.arm.hidden_dim = 8;
    cfg.arm.epochs = 3;
    cfg.arm.backbone = GnnBackbone::Gcn;
    Vgod::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_is_total_over_random_graphs(
        seed in 0u64..1_000,
        n in 60usize..140,
        communities in 2usize..5,
        avg_degree in 2.0f32..8.0,
        clique in 3usize..8,
    ) {
        let mut rng = seeded_rng(seed);
        let mut g = vgod_suite::graph::community_graph(
            &vgod_suite::graph::CommunityGraphConfig::homogeneous(n, communities, avg_degree, 0.85),
            &mut rng,
        );
        let x = vgod_suite::graph::gaussian_mixture_attributes(
            g.labels().unwrap(), 6, 3.0, 0.5, &mut rng,
        );
        g.set_attrs(x);
        let sp = StructuralParams { num_cliques: 1, clique_size: clique };
        let cp = ContextualParams { count: clique, candidates: 5, metric: DistanceMetric::Euclidean };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);
        prop_assert!(g.check_invariants());

        let mut model = tiny_vgod();
        let scores = model.fit_score(&g);
        prop_assert_eq!(scores.combined.len(), n);
        prop_assert!(scores.combined.iter().all(|s| s.is_finite()));
        let a = auc(&scores.combined, &truth.outlier_mask());
        prop_assert!((0.0..=1.0).contains(&a));
        // Even a barely-trained model should not be strongly anti-predictive.
        prop_assert!(a > 0.2, "strongly inverted ranking (AUC {a}) suggests a sign bug");
    }

    #[test]
    fn injection_respects_requested_counts(
        seed in 0u64..1_000,
        p in 1usize..4,
        q in 2usize..7,
    ) {
        let mut rng = seeded_rng(seed);
        let mut g = vgod_suite::graph::community_graph(
            &vgod_suite::graph::CommunityGraphConfig::homogeneous(150, 3, 4.0, 0.9),
            &mut rng,
        );
        g.set_attrs(Matrix::from_fn(150, 4, |r, c| ((r + c * 31) % 11) as f32));
        let sp = StructuralParams { num_cliques: p, clique_size: q };
        let cp = ContextualParams::standard(&sp);
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);
        prop_assert_eq!(truth.structural_nodes().len(), p * q);
        prop_assert_eq!(truth.contextual_nodes().len(), p * q);
        // No node carries both labels.
        let s = truth.structural_mask();
        let c = truth.contextual_mask();
        prop_assert!(s.iter().zip(&c).all(|(&a, &b)| !(a && b)));
    }
}
