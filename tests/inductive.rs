//! Inductive-protocol integration tests (Appendix B): detectors trained on
//! one graph score a different graph.

use vgod_suite::baselines::DeepConfig;
use vgod_suite::prelude::*;

fn snapshot(seed: u64) -> (vgod_suite::graph::AttributedGraph, GroundTruth) {
    let mut rng = seeded_rng(seed);
    let mut data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    let sp = StructuralParams {
        num_cliques: 2,
        clique_size: 8,
    };
    let cp = ContextualParams::standard(&sp);
    let truth = inject_standard(&mut data.graph, &sp, &cp, &mut rng);
    (data.graph, truth)
}

#[test]
fn vgod_scores_unseen_graphs() {
    let (train, _) = snapshot(10);
    let (test, truth) = snapshot(20);
    let mut model = Vgod::new(VgodConfig::fast());
    model.fit(&train);
    let scores = model.score(&test);
    let a = auc(&scores.combined, &truth.outlier_mask());
    assert!(a > 0.7, "inductive VGOD AUC = {a}");
}

#[test]
fn inductive_capable_baselines_score_unseen_graphs() {
    let (train, _) = snapshot(11);
    let (test, truth) = snapshot(21);
    let mask = truth.outlier_mask();
    let detectors: Vec<Box<dyn OutlierDetector>> = vec![
        Box::new(Dominant::new(DeepConfig::fast())),
        Box::new(Done::new(DeepConfig::fast())),
        Box::new(Cola::new(DeepConfig::fast())),
        Box::new(Conad::new(DeepConfig::fast())),
    ];
    for mut det in detectors {
        det.fit(&train);
        let scores = det.score(&test);
        assert_eq!(scores.combined.len(), test.num_nodes(), "{}", det.name());
        let a = auc(&scores.combined, &mask);
        // This asserts the inductive *mechanism* (finite, not
        // anti-predictive scores on an unseen graph); detection quality at
        // tiny scale is noisy for the weaker baselines and is measured
        // properly by the exp_inductive bench target.
        assert!(
            a > 0.35,
            "{}: inductive AUC {a} is anti-predictive",
            det.name()
        );
    }
}

#[test]
fn anomaly_dae_rejects_inductive_use() {
    // Table II: AnomalyDAE cannot perform inductive inference; our
    // implementation makes the limitation explicit.
    let (train, _) = snapshot(12);
    let mut rng = seeded_rng(99);
    let other = replica(Dataset::CiteseerLike, Scale::Tiny, &mut rng);
    let mut det = AnomalyDae::new(DeepConfig::fast());
    det.fit(&train);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| det.score(&other.graph)));
    assert!(result.is_err(), "AnomalyDAE must refuse a different graph");
}
