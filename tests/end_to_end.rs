//! Cross-crate integration tests: the full pipeline — replica generation →
//! injection → training → scoring → evaluation — through the public facade.

use vgod_suite::prelude::*;

fn injected(ds: Dataset, seed: u64) -> (vgod_suite::graph::AttributedGraph, GroundTruth) {
    let mut rng = seeded_rng(seed);
    let mut data = replica(ds, Scale::Tiny, &mut rng);
    let sp = StructuralParams {
        num_cliques: 2,
        clique_size: 8,
    };
    let cp = ContextualParams::standard(&sp);
    let truth = inject_standard(&mut data.graph, &sp, &cp, &mut rng);
    (data.graph, truth)
}

#[test]
fn vgod_end_to_end_on_citation_replica() {
    let (g, truth) = injected(Dataset::CoraLike, 1);
    let mut model = Vgod::new(VgodConfig::fast());
    let scores = model.fit_score(&g);
    assert_eq!(scores.combined.len(), g.num_nodes());
    let a = auc(&scores.combined, &truth.outlier_mask());
    assert!(a > 0.75, "end-to-end AUC = {a}");
    // The components must exist and be finite.
    for s in scores.structural.as_ref().unwrap() {
        assert!(s.is_finite());
    }
    for s in scores.contextual.as_ref().unwrap() {
        assert!(s.is_finite());
    }
}

#[test]
fn vgod_beats_degnorm_when_leak_is_closed() {
    // The repository's headline reproduction in one test: under the
    // degree-preserving injection, the leak-only baseline collapses while
    // the variance-based model keeps detecting.
    let mut rng = seeded_rng(5);
    let mut data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    let mut truth = GroundTruth::new(data.graph.num_nodes());
    inject_community_replacement(&mut data.graph, &mut truth, 0.1, &mut rng);
    let mask = truth.outlier_mask();

    let mut leak = DegNorm;
    let leak_auc = auc(&leak.fit_score(&data.graph).combined, &mask);

    let mut cfg = VgodConfig::fast();
    cfg.vbm.epochs = 10;
    let mut model = Vgod::new(cfg);
    let scores = model.fit_score(&data.graph);
    let vbm_auc = auc(scores.structural.as_ref().unwrap(), &mask);

    assert!(
        leak_auc < 0.7,
        "DegNorm should collapse without leakage: {leak_auc}"
    );
    assert!(vbm_auc > 0.8, "VBM should keep detecting: {vbm_auc}");
    assert!(vbm_auc > leak_auc + 0.15);
}

#[test]
fn every_facade_detector_runs_on_every_injected_replica() {
    for ds in Dataset::INJECTED {
        let (g, truth) = injected(ds, 7);
        let mask = truth.outlier_mask();
        let detectors: Vec<Box<dyn OutlierDetector>> = vec![
            Box::new(Dominant::new(vgod_suite::baselines::DeepConfig::fast())),
            Box::new(AnomalyDae::new(vgod_suite::baselines::DeepConfig::fast())),
            Box::new(Done::new(vgod_suite::baselines::DeepConfig::fast())),
            Box::new(Cola::new(vgod_suite::baselines::DeepConfig::fast())),
            Box::new(Conad::new(vgod_suite::baselines::DeepConfig::fast())),
            Box::new(DegNorm),
            Box::new(Deg),
            Box::new(L2Norm),
            Box::new(RandomDetector::new(1)),
        ];
        for mut det in detectors {
            let scores = det.fit_score(&g);
            assert_eq!(
                scores.combined.len(),
                g.num_nodes(),
                "{} on {ds}",
                det.name()
            );
            assert!(
                scores.combined.iter().all(|s| s.is_finite()),
                "{} on {ds}: non-finite scores",
                det.name()
            );
            let a = auc(&scores.combined, &mask);
            assert!((0.0..=1.0).contains(&a), "{} on {ds}: AUC {a}", det.name());
        }
    }
}

#[test]
fn weibo_replica_flows_through_without_injection() {
    let mut rng = seeded_rng(2);
    let data = replica(Dataset::WeiboLike, Scale::Tiny, &mut rng);
    let truth = data.labeled_truth.expect("weibo carries labels");
    let mut cfg = VgodConfig::fast();
    cfg.arm.row_normalize = true;
    let mut model = Vgod::new(cfg);
    let scores = model.fit_score(&data.graph);
    let a = auc(&scores.combined, &truth.outlier_mask());
    assert!(a > 0.85, "weibo-like AUC = {a}");
}

#[test]
fn score_normalisation_composes_with_detectors() {
    let (g, _) = injected(Dataset::CiteseerLike, 9);
    let mut det = DegNorm;
    let scores = det.fit_score(&g);
    let z = mean_std_normalize(&scores.combined);
    let mean: f32 = z.iter().sum::<f32>() / z.len() as f32;
    assert!(mean.abs() < 1e-4);
}
