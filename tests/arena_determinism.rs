//! Buffer recycling must be invisible: training a detector on a cold
//! arena (first fit in a thread) and again on a warm arena (free lists
//! populated by the first fit) must produce bit-identical score vectors.
//! The arena is thread-local, so each test owns its arena state.

use vgod_suite::baselines::DeepConfig;
use vgod_suite::prelude::*;

fn small_graph() -> AttributedGraph {
    let mut rng = seeded_rng(42);
    let data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    data.graph
}

/// Run `fit_and_score` twice — once on a cleared (cold) arena, once on the
/// warm arena the first run left behind — and require bitwise equality.
fn warm_equals_cold(mut fit_and_score: impl FnMut(&AttributedGraph) -> Vec<f32>) {
    let g = small_graph();
    vgod_suite::tensor::arena::clear();
    let cold = fit_and_score(&g);
    let warm = fit_and_score(&g);
    assert_eq!(cold.len(), warm.len());
    for (i, (a, b)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(a, b, "node {i}: cold arena {a} != warm arena {b}");
    }
    assert!(cold.iter().all(|s| s.is_finite()));
}

fn deep_cfg() -> DeepConfig {
    DeepConfig {
        epochs: 5,
        ..DeepConfig::fast()
    }
}

#[test]
fn dominant_is_arena_deterministic() {
    warm_equals_cold(|g| Dominant::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn anomaly_dae_is_arena_deterministic() {
    warm_equals_cold(|g| AnomalyDae::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn done_is_arena_deterministic() {
    warm_equals_cold(|g| Done::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn cola_is_arena_deterministic() {
    warm_equals_cold(|g| {
        let mut model = Cola::new(deep_cfg());
        model.rounds = 4;
        model.fit_score(g).combined
    });
}

#[test]
fn conad_is_arena_deterministic() {
    warm_equals_cold(|g| Conad::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn vbm_is_arena_deterministic() {
    warm_equals_cold(|g| {
        let mut model = Vbm::new(VbmConfig {
            hidden_dim: 16,
            epochs: 5,
            lr: 0.01,
            self_loops: false,
            seed: 7,
        });
        model.fit(g);
        model.scores(g)
    });
}

#[test]
fn arm_is_arena_deterministic() {
    warm_equals_cold(|g| {
        let mut model = Arm::new(ArmConfig {
            hidden_dim: 16,
            layers: 2,
            backbone: GnnBackbone::Gcn,
            epochs: 5,
            lr: 0.01,
            row_normalize: false,
            seed: 3,
        });
        model.fit(g);
        model.scores(g)
    });
}
