//! The dispatched SIMD path must be deterministic for every deep detector:
//! score vectors are bit-identical across thread counts (sequential vs the
//! 4-worker pool) and across cold/warm arena state, under whichever ISA
//! `VGOD_SIMD` selects. Each kernel fixes its accumulation order per ISA, so
//! neither banding nor buffer recycling may leak into results.
//!
//! `force_sequential` is process-global, so the runs of one detector are
//! serialized behind a file-local lock.

use std::sync::Mutex;

use vgod_suite::baselines::DeepConfig;
use vgod_suite::prelude::*;
use vgod_suite::tensor::threading;

static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the pooled path even if a fit panics.
struct SeqGuard;

impl Drop for SeqGuard {
    fn drop(&mut self) {
        threading::force_sequential(false);
    }
}

fn small_graph() -> AttributedGraph {
    let mut rng = seeded_rng(42);
    let data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    data.graph
}

/// Fit four times — sequential/cold, sequential/warm, pooled/warm,
/// pooled/cold — and require all four score vectors bitwise equal.
fn all_paths_bit_identical(mut fit_and_score: impl FnMut(&AttributedGraph) -> Vec<f32>) {
    let _lock = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = threading::set_num_threads(4);
    let _guard = SeqGuard;
    let g = small_graph();

    threading::force_sequential(true);
    vgod_suite::tensor::arena::clear();
    let seq_cold = fit_and_score(&g);
    let seq_warm = fit_and_score(&g);

    threading::force_sequential(false);
    let par_warm = fit_and_score(&g);
    vgod_suite::tensor::arena::clear();
    let par_cold = fit_and_score(&g);

    assert!(seq_cold.iter().all(|s| s.is_finite()));
    for (label, run) in [
        ("sequential/warm", &seq_warm),
        ("pooled/warm", &par_warm),
        ("pooled/cold", &par_cold),
    ] {
        assert_eq!(seq_cold.len(), run.len());
        for (i, (a, b)) in seq_cold.iter().zip(run.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "node {i}: sequential/cold {a} != {label} {b}"
            );
        }
    }
}

fn deep_cfg() -> DeepConfig {
    DeepConfig {
        epochs: 5,
        ..DeepConfig::fast()
    }
}

#[test]
fn dominant_is_simd_deterministic() {
    all_paths_bit_identical(|g| Dominant::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn anomaly_dae_is_simd_deterministic() {
    all_paths_bit_identical(|g| AnomalyDae::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn done_is_simd_deterministic() {
    all_paths_bit_identical(|g| Done::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn cola_is_simd_deterministic() {
    all_paths_bit_identical(|g| {
        let mut model = Cola::new(deep_cfg());
        model.rounds = 4;
        model.fit_score(g).combined
    });
}

#[test]
fn conad_is_simd_deterministic() {
    all_paths_bit_identical(|g| Conad::new(deep_cfg()).fit_score(g).combined);
}

#[test]
fn vbm_is_simd_deterministic() {
    all_paths_bit_identical(|g| {
        let mut model = Vbm::new(VbmConfig {
            hidden_dim: 16,
            epochs: 5,
            lr: 0.01,
            self_loops: false,
            seed: 7,
        });
        model.fit(g);
        model.scores(g)
    });
}

#[test]
fn arm_is_simd_deterministic() {
    all_paths_bit_identical(|g| {
        let mut model = Arm::new(ArmConfig {
            hidden_dim: 16,
            layers: 2,
            backbone: GnnBackbone::Gcn,
            epochs: 5,
            lr: 0.01,
            row_normalize: false,
            seed: 3,
        });
        model.fit(g);
        model.scores(g)
    });
}
