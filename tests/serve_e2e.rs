//! End-to-end serving tests: concurrent clients against a live HTTP server
//! must see exactly the scores offline `detect` would write, overload must
//! surface as `503`, and shutdown must drain queued work.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use vgod_suite::baselines::DeepConfig;
use vgod_suite::prelude::*;
use vgod_suite::serve::{http, AnyDetector, ServeConfig};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vgod_e2e_{tag}_{}", std::process::id()))
}

fn tiny_graph() -> AttributedGraph {
    let mut rng = seeded_rng(29);
    replica(Dataset::CoraLike, Scale::Tiny, &mut rng).graph
}

/// Save the graph plus fitted checkpoints; returns the models dir, graph
/// path, and each model's offline scores rendered exactly as score files
/// render them (f32 `Display`).
fn fixture(
    tag: &str,
    detectors: Vec<(&str, AnyDetector)>,
) -> (PathBuf, PathBuf, Vec<(String, Vec<String>)>) {
    let g = tiny_graph();
    let graph_path = tmp(&format!("{tag}_graph.txt"));
    save_graph(&g, graph_path.display().to_string()).unwrap();
    let models = tmp(&format!("{tag}_models"));
    let _ = std::fs::remove_dir_all(&models);
    std::fs::create_dir_all(&models).unwrap();
    let mut offline = Vec::new();
    for (name, mut det) in detectors {
        det.fit(&g);
        det.save_file(&models.join(format!("{name}.ckpt"))).unwrap();
        let rendered: Vec<String> = det.score(&g).combined.iter().map(f32::to_string).collect();
        offline.push((name.to_string(), rendered));
    }
    (models, graph_path, offline)
}

/// The raw text inside `"scores":[...]` — compared byte-for-byte against
/// offline renderings.
fn scores_field(body: &str) -> &str {
    let start = body.find("\"scores\":[").expect(body) + "\"scores\":[".len();
    let end = body[start..].find(']').unwrap() + start;
    &body[start..end]
}

#[test]
fn concurrent_clients_get_offline_identical_scores() {
    let deep = DeepConfig {
        hidden: 8,
        epochs: 2,
        lr: 0.005,
        seed: 13,
    };
    let (models, graph_path, offline) = fixture(
        "concurrent",
        vec![
            ("dom", AnyDetector::Dominant(Dominant::new(deep))),
            ("degnorm", AnyDetector::DegNorm(DegNorm)),
        ],
    );
    let handle =
        vgod_suite::serve::serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default())
            .unwrap();
    let addr = handle.addr();
    let offline = Arc::new(offline);

    let num_nodes = offline[0].1.len();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let offline = Arc::clone(&offline);
            std::thread::spawn(move || {
                for i in 0..6 {
                    let (name, expected) = &offline[(t + i) % offline.len()];
                    // Mix whole-graph requests with per-thread subsets.
                    let (body, want) = if i % 2 == 0 {
                        (format!("{{\"model\":\"{name}\"}}"), expected.join(","))
                    } else {
                        let nodes = [t % num_nodes, (7 * t + i) % num_nodes, num_nodes - 1];
                        let ids: Vec<String> = nodes.iter().map(usize::to_string).collect();
                        let want: Vec<String> =
                            nodes.iter().map(|&n| expected[n].clone()).collect();
                        (
                            format!("{{\"model\":\"{name}\",\"nodes\":[{}]}}", ids.join(",")),
                            want.join(","),
                        )
                    };
                    let (status, reply) = http::post(addr, "/score", &body).unwrap();
                    assert_eq!(status, 200, "{reply}");
                    assert_eq!(
                        scores_field(&reply),
                        want,
                        "served scores must match offline detect byte-for-byte"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let m = handle.metrics();
    assert_eq!(m.requests, 24);
    assert_eq!(m.errors, 0);
    assert_eq!(m.rejected, 0);
    assert!(m.batches >= 1 && m.batches <= 24);
    assert_eq!(m.batch_hist.iter().sum::<u64>(), m.batches);

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_file(&graph_path);
}

/// Every checkpointable detector, fitted with tiny budgets — the full
/// served-model matrix for the determinism test.
fn all_detectors() -> Vec<(&'static str, AnyDetector)> {
    let deep = |seed| DeepConfig {
        hidden: 6,
        epochs: 1,
        lr: 0.005,
        seed,
    };
    let vbm_cfg = VbmConfig {
        hidden_dim: 6,
        epochs: 1,
        lr: 0.005,
        self_loops: true,
        seed: 3,
    };
    let arm_cfg = ArmConfig {
        hidden_dim: 6,
        layers: 1,
        epochs: 1,
        seed: 4,
        ..ArmConfig::default()
    };
    vec![
        (
            "vgod",
            AnyDetector::Vgod(Vgod::new(VgodConfig {
                vbm: vbm_cfg.clone(),
                arm: arm_cfg.clone(),
                ..VgodConfig::default()
            })),
        ),
        ("vbm", AnyDetector::Vbm(Vbm::new(vbm_cfg))),
        ("arm", AnyDetector::Arm(Arm::new(arm_cfg))),
        ("dominant", AnyDetector::Dominant(Dominant::new(deep(11)))),
        (
            "anomalydae",
            AnyDetector::AnomalyDae(AnomalyDae::new(deep(12))),
        ),
        ("done", AnyDetector::Done(Done::new(deep(13)))),
        ("cola", AnyDetector::Cola(Cola::new(deep(14)))),
        ("conad", AnyDetector::Conad(Conad::new(deep(15)))),
        ("radar", AnyDetector::Radar(Radar::new(deep(16)))),
        ("degnorm", AnyDetector::DegNorm(DegNorm)),
        ("deg", AnyDetector::Deg(Deg)),
        ("l2norm", AnyDetector::L2Norm(L2Norm)),
        ("random", AnyDetector::Random(RandomDetector::new(17))),
    ]
}

/// A 1-replica fleet and a 4-replica fleet must serve **byte-identical**
/// responses for every detector the workspace can checkpoint — and both
/// must match offline `score` / `score_nodes` rendering exactly. This is
/// the contract that makes `--replicas` a pure throughput knob.
#[test]
fn replica_fleets_serve_byte_identical_scores_for_all_detectors() {
    let (models, graph_path, offline) = fixture("replicas", all_detectors());
    let num_nodes = offline[0].1.len();
    let subset = [0usize, num_nodes / 3, num_nodes - 1];
    let subset_ids: Vec<String> = subset.iter().map(usize::to_string).collect();

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for replicas in [1usize, 4] {
        let cfg = ServeConfig {
            replicas,
            ..ServeConfig::default()
        };
        let handle = vgod_suite::serve::serve(&models, &graph_path, "127.0.0.1:0", cfg).unwrap();
        let mut client = http::Client::connect(handle.addr()).unwrap();
        let mut bodies = Vec::new();
        for (name, expected) in offline.iter() {
            // Whole graph: must equal offline `score` byte-for-byte.
            let (status, body) = client
                .request("POST", "/score", Some(&format!("{{\"model\":\"{name}\"}}")))
                .unwrap();
            assert_eq!(status, 200, "{name}: {body}");
            assert_eq!(
                scores_field(&body),
                expected.join(","),
                "{name}: served full-graph scores must match offline score()"
            );
            bodies.push(body);
            // Subset: must equal offline `score_nodes` byte-for-byte.
            let want: Vec<String> = subset.iter().map(|&n| expected[n].clone()).collect();
            let (status, body) = client
                .request(
                    "POST",
                    "/score",
                    Some(&format!(
                        "{{\"model\":\"{name}\",\"nodes\":[{}]}}",
                        subset_ids.join(",")
                    )),
                )
                .unwrap();
            assert_eq!(status, 200, "{name}: {body}");
            assert_eq!(
                scores_field(&body),
                want.join(","),
                "{name}: served subset scores must match offline score_nodes()"
            );
            bodies.push(body);
        }
        handle.shutdown();
        handle.join();
        transcripts.push(bodies);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "1-replica and 4-replica fleets must serve byte-identical responses"
    );

    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_file(&graph_path);
}

/// Sequential keep-alive requests on one connection, interleaved with
/// bursts of concurrent one-shot connections — every response must still
/// be byte-identical to offline scoring.
#[test]
fn keep_alive_interleaves_with_concurrent_connections() {
    let (models, graph_path, offline) = fixture(
        "interleave",
        vec![
            ("degnorm", AnyDetector::DegNorm(DegNorm)),
            ("random", AnyDetector::Random(RandomDetector::new(23))),
        ],
    );
    let handle =
        vgod_suite::serve::serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default())
            .unwrap();
    let addr = handle.addr();
    let offline = Arc::new(offline);
    let num_nodes = offline[0].1.len();

    // Concurrent one-shot connections hammering away in the background.
    let threads: Vec<_> = (0..3)
        .map(|t| {
            let offline = Arc::clone(&offline);
            std::thread::spawn(move || {
                for i in 0..15 {
                    let (name, expected) = &offline[(t + i) % offline.len()];
                    let node = (3 * t + 5 * i) % num_nodes;
                    let (status, body) = http::post(
                        addr,
                        "/score",
                        &format!("{{\"model\":\"{name}\",\"nodes\":[{node}]}}"),
                    )
                    .unwrap();
                    assert_eq!(status, 200, "{body}");
                    assert_eq!(scores_field(&body), expected[node]);
                }
            })
        })
        .collect();

    // Meanwhile: one keep-alive connection issuing sequential requests.
    let mut client = http::Client::connect(addr).unwrap();
    for i in 0..30 {
        let (name, expected) = &offline[i % offline.len()];
        let node = (7 * i) % num_nodes;
        let (status, body) = client
            .request(
                "POST",
                "/score",
                Some(&format!("{{\"model\":\"{name}\",\"nodes\":[{node}]}}")),
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            scores_field(&body),
            expected[node],
            "keep-alive responses must match offline scores byte-for-byte"
        );
    }
    for t in threads {
        t.join().unwrap();
    }

    let m = handle.metrics();
    assert_eq!(m.requests, 30 + 3 * 15);
    assert_eq!(m.errors, 0);
    assert!(
        m.conns_accepted >= 4,
        "keep-alive conn + one-shot conns must all be counted: {m:?}"
    );

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_file(&graph_path);
}

#[test]
fn overload_rejects_with_503_and_shutdown_drains() {
    // An intentionally slow model: CoLA's inference cost scales with its
    // sampling rounds, so a big round count keeps the engine busy while a
    // burst of clients slams a capacity-1 queue.
    let mut cola = Cola::new(DeepConfig {
        hidden: 8,
        epochs: 1,
        lr: 0.005,
        seed: 31,
    });
    cola.rounds = 2048;
    let (models, graph_path, _) = fixture(
        "overload",
        vec![
            ("slow", AnyDetector::Cola(cola)),
            ("degnorm", AnyDetector::DegNorm(DegNorm)),
        ],
    );
    let cfg = ServeConfig {
        max_batch: 1,
        max_wait: Duration::from_micros(0),
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let handle = vgod_suite::serve::serve(&models, &graph_path, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();

    // 8 clients fire simultaneously; with the engine grinding through one
    // slow request and only one queue slot, most of the burst must bounce.
    let barrier = Arc::new(Barrier::new(8));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (status, _) = http::post(addr, "/score", "{\"model\":\"slow\"}").unwrap();
                status
            })
        })
        .collect();
    let statuses: Vec<u16> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(
        statuses.contains(&503),
        "a capacity-1 queue under an 8-client burst must shed load: {statuses:?}"
    );
    assert!(
        statuses.contains(&200),
        "accepted requests still succeed: {statuses:?}"
    );
    assert!(handle.metrics().rejected >= 1);

    // Graceful drain: a request accepted before shutdown is still answered.
    let inflight = std::thread::spawn(move || {
        http::post(addr, "/score", "{\"model\":\"slow\",\"nodes\":[0]}").unwrap()
    });
    let before = handle.metrics().requests;
    loop {
        if handle.metrics().requests > before {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.shutdown();
    let (status, body) = inflight.join().unwrap();
    assert_eq!(status, 200, "queued request must drain on shutdown: {body}");
    handle.join();

    // After shutdown the server is gone.
    assert!(http::get(addr, "/healthz").is_err());
    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_file(&graph_path);
}
