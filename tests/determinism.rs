//! Reproducibility guarantees: identical seeds produce identical graphs,
//! injections, trained models and scores across the whole stack.

use vgod_suite::prelude::*;

fn pipeline(seed: u64) -> (usize, Vec<f32>) {
    let mut rng = seeded_rng(seed);
    let mut data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    let sp = StructuralParams {
        num_cliques: 1,
        clique_size: 8,
    };
    let cp = ContextualParams::standard(&sp);
    let _truth = inject_standard(&mut data.graph, &sp, &cp, &mut rng);
    let mut model = Vgod::new(VgodConfig::fast());
    let scores = model.fit_score(&data.graph);
    (data.graph.num_edges(), scores.combined)
}

#[test]
fn same_seed_same_everything() {
    let (e1, s1) = pipeline(1234);
    let (e2, s2) = pipeline(1234);
    assert_eq!(e1, e2, "graph generation must be deterministic");
    assert_eq!(s1.len(), s2.len());
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a, b, "scores must be bit-identical across runs");
    }
}

#[test]
fn different_seed_different_graph() {
    let (e1, s1) = pipeline(1);
    let (e2, s2) = pipeline(2);
    // Edge counts may coincide, but the score vectors will not.
    assert!(e1 > 0 && e2 > 0);
    assert_ne!(s1, s2);
}

#[test]
fn detector_scoring_is_pure() {
    // score() must not mutate the model: repeated calls agree.
    let mut rng = seeded_rng(77);
    let data = replica(Dataset::CiteseerLike, Scale::Tiny, &mut rng);
    let mut model = Vgod::new(VgodConfig::fast());
    model.fit(&data.graph);
    let a = model.score(&data.graph);
    let b = model.score(&data.graph);
    assert_eq!(a.combined, b.combined);
}
