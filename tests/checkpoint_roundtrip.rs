//! Every persistable detector must survive fit → save → load → score with
//! bit-identical scores: checkpoints are the contract between offline
//! training (`vgod detect --save-model`) and the serving registry.

use vgod_suite::baselines::DeepConfig;
use vgod_suite::prelude::*;
use vgod_suite::serve::AnyDetector;

fn tiny_graph() -> AttributedGraph {
    let mut rng = seeded_rng(17);
    replica(Dataset::CoraLike, Scale::Tiny, &mut rng).graph
}

fn small_vgod_config(seed: u64) -> VgodConfig {
    let mut cfg = VgodConfig::default();
    cfg.vbm.hidden_dim = 8;
    cfg.vbm.epochs = 2;
    cfg.vbm.seed = seed;
    cfg.arm.hidden_dim = 8;
    cfg.arm.epochs = 2;
    cfg.arm.seed = seed.wrapping_add(1);
    cfg
}

/// Fit, checkpoint through an in-memory buffer, reload via the magic-line
/// dispatcher, and demand score equality down to the last bit.
fn roundtrip(mut det: AnyDetector, g: &AttributedGraph) {
    det.fit(g);
    let expected = det.score(g).combined;
    let mut buf = Vec::new();
    det.save(&mut buf).unwrap();
    let loaded =
        AnyDetector::load(&mut buf.as_slice()).unwrap_or_else(|e| panic!("{}: {e}", det.kind()));
    assert_eq!(loaded.kind(), det.kind());
    assert_eq!(
        loaded.score(g).combined,
        expected,
        "{} checkpoint must reproduce scores bit-identically",
        det.kind()
    );

    // The checkpoint is also stable across a second save: loading what we
    // saved and saving again produces the same bytes.
    let mut buf2 = Vec::new();
    loaded.save(&mut buf2).unwrap();
    assert_eq!(buf, buf2, "{} re-save must be byte-stable", det.kind());
}

#[test]
fn every_detector_roundtrips_bit_identically() {
    let g = tiny_graph();
    let deep = DeepConfig {
        hidden: 8,
        epochs: 2,
        lr: 0.005,
        seed: 9,
    };
    let zoo: Vec<AnyDetector> = vec![
        AnyDetector::Vgod(Vgod::new(small_vgod_config(3))),
        AnyDetector::Vbm(Vbm::new(small_vgod_config(4).vbm)),
        AnyDetector::Arm(Arm::new(small_vgod_config(5).arm)),
        AnyDetector::Dominant(Dominant::new(deep.clone())),
        AnyDetector::AnomalyDae(AnomalyDae::new(deep.clone())),
        AnyDetector::Done(Done::new(deep.clone())),
        AnyDetector::Cola(Cola::new(deep.clone())),
        AnyDetector::Conad(Conad::new(deep.clone())),
        AnyDetector::Radar(Radar::new(deep)),
        AnyDetector::DegNorm(DegNorm),
        AnyDetector::Deg(Deg),
        AnyDetector::L2Norm(L2Norm),
        AnyDetector::Random(RandomDetector::new(7)),
    ];
    // Keep this list in lock-step with the AnyDetector enum: a new variant
    // without a roundtrip test should fail the count below.
    assert_eq!(zoo.len(), 13);
    for det in zoo {
        roundtrip(det, &g);
    }
}

#[test]
fn subset_scoring_matches_full_scoring() {
    let g = tiny_graph();
    let det = {
        let mut d = AnyDetector::DegNorm(DegNorm);
        d.fit(&g);
        d
    };
    let full = det.score(&g).combined;
    let subset = det.score_nodes(&g, &[0, 3, 9]);
    assert_eq!(subset, vec![full[0], full[3], full[9]]);
}
