//! Workspace-local stand-in for the subset of the `rand` 0.8 API that the
//! `vgod-rs` workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation with the same trait surface:
//! [`RngCore`], [`Rng`] (`gen_range` / `gen_bool` / `gen`), [`SeedableRng`]
//! (`seed_from_u64` / `from_seed`), [`rngs::StdRng`], `seq::SliceRandom`
//! (`shuffle` / `choose`) and `seq::index::sample`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulation workloads and fully
//! deterministic per seed. Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine here: every consumer in the workspace seeds its
//! own RNG and asserts on *behaviour*, not on specific draw values.

/// The core trait: a source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be uniformly sampled from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` (`span > 0`) via Lemire-style widening
/// multiply with rejection, so small ranges are exactly uniform.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // All workspace spans fit comfortably in u64.
    let span = span as u64;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return m >> 64;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:ty, $shift:expr, $scale:expr;)*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = ((rng.next_u64() >> $shift) as $t) * $scale;
                let v = low + (high - low) * unit;
                if v < high { v } else { <$t>::from_bits(high.to_bits() - 1) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = ((rng.next_u64() >> $shift) as $t) * $scale;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float! {
    f32 => u32, 40, 1.0 / (1u64 << 24) as f32;
    f64 => u64, 11, 1.0 / (1u64 << 53) as f64;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        f64::sample_half_open(self, 0.0, 1.0) < p
    }

    /// A uniform sample of the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" full-domain distribution (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one standard-distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f32::sample_half_open(rng, 0.0, 1.0)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_half_open(rng, 0.0, 1.0)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it into a full seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`, index sampling).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of sampled indices (mirrors `rand::seq::index::IndexVec`).
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterate over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consume into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, in random
        /// order. Floyd's algorithm keeps it `O(amount)` in memory.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "sample: amount {amount} exceeds length {length}"
            );
            // Partial Fisher-Yates over a lazily-materialised permutation:
            // exact uniform sampling without replacement.
            let mut map = std::collections::HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let elem_j = *map.get(&j).unwrap_or(&j);
                let elem_i = *map.get(&i).unwrap_or(&i);
                out.push(elem_j);
                map.insert(j, elem_i);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    fn rng(seed: u64) -> rngs::StdRng {
        rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map(|_| rng(7).next_u64()).collect();
        assert!(a.iter().all(|&v| v == a[0]));
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
        assert_ne!(rng(1).next_u64(), rng(2).next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = rng(3);
        for _ in 0..2000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(-2.0f32..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = r.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = rng(4);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rng(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits} of 10000");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut r = rng(6);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input untouched");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut r = rng(8);
        let picked: Vec<usize> = seq::index::sample(&mut r, 100, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "duplicates in {picked:?}");
        assert!(picked.iter().all(|&i| i < 100));
    }

    #[test]
    fn float_unit_range_is_half_open() {
        let mut r = rng(9);
        for _ in 0..10_000 {
            let v: f32 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
