//! Workspace-local stand-in for the subset of the `proptest` 1.x API used by
//! the `vgod-rs` workspace.
//!
//! The build environment has no crates.io access, so this crate provides the
//! same *surface* — the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `collection::vec`, [`any`],
//! [`Just`], `prop_assert!` / `prop_assert_eq!` and [`ProptestConfig`] — on
//! top of the workspace `rand` shim.
//!
//! Differences from upstream worth knowing about:
//! - **No shrinking.** A failing case reports its deterministic case seed so
//!   it can be replayed, but is not minimised.
//! - Case generation is deterministic per test name, so failures reproduce
//!   across runs without a persistence file.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (only the fields the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Full-domain strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

/// A strategy over the whole domain of `T` (the workspace uses `any::<bool>()`).
pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Something that can specify a vector length: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use super::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Drive `body` over `config.cases` deterministic random cases.
///
/// Used by the [`proptest!`] macro; not part of the public upstream API.
pub fn run_cases(config: ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    // Deterministic per-test base seed: stable across runs and platforms.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!("proptest {test_name}: case {case} failed (case seed {seed:#018x})");
            resume_unwind(panic);
        }
    }
}

/// Define property tests: each argument is drawn from its strategy, and the
/// body runs once per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        crate::run_cases(ProptestConfig::with_cases(32), "bounds", |rng| {
            let n = (1usize..6).generate(rng);
            assert!((1..6).contains(&n));
            let f = (-2.0f32..2.0).generate(rng);
            assert!((-2.0..2.0).contains(&f));
            let v = collection::vec(0u32..9, 3usize).generate(rng);
            assert_eq!(v.len(), 3);
            assert!(v.iter().all(|&x| x < 9));
        });
    }

    proptest! {
        #[test]
        fn macro_draws_every_arg(a in 0usize..5, (b, c) in (0u32..3, -1.0f32..1.0)) {
            prop_assert!(a < 5);
            prop_assert!(b < 3);
            prop_assert!((-1.0..1.0).contains(&c));
        }

        #[test]
        fn flat_map_chains_strategies(v in (1usize..4).prop_flat_map(|n| collection::vec(0usize..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn map_transforms(x in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn config_form_parses(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }
}
