//! Workspace-local stand-in for the subset of the `criterion` 0.5 API used
//! by the `vgod-bench` bench targets.
//!
//! The build environment has no crates.io access, so this crate provides the
//! same surface — [`Criterion`], [`BenchmarkId`], benchmark groups, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! calibrated wall-clock loop (median of several batches) instead of
//! criterion's full statistics engine. Good enough to spot order-of-magnitude
//! regressions and compare kernel variants.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (split over batches).
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Number of batches used for the median.
const BATCHES: usize = 5;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id made of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fill one batch.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (TARGET_MEASURE.as_nanos() / BATCHES as u128 / once.as_nanos()).max(1);

        let mut batches: Vec<f64> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            batches.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        batches.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_ns = batches[batches.len() / 2];
    }

    /// Median nanoseconds per iteration from the last [`Bencher::iter`] call.
    ///
    /// Not part of the upstream API: upstream criterion writes its estimates
    /// to `target/criterion/`, which this shim does not reproduce. Benches
    /// that want to export machine-readable results read this instead.
    pub fn median_ns(&self) -> f64 {
        self.median_ns
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { median_ns: 0.0 };
    f(&mut b);
    println!("bench {label:<48} {}", human(b.median_ns));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `routine` against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| routine(b, input));
    }

    /// Benchmark a plain routine within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), |b| routine(b));
    }

    /// End the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmark one named routine.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, |b| routine(b));
        self
    }
}

/// Prevent the optimiser from discarding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("noop-ish", |b| {
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(5)))
        });
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
