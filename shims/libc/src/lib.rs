//! Workspace-local stand-in for the tiny slice of `libc` that
//! `vgod-serve`'s non-blocking HTTP front end needs: epoll, `eventfd`, and
//! `accept4`, declared directly against the system C library. The build
//! environment has no crates.io access, so — like the `rand` / `proptest` /
//! `criterion` shims next door — this crate mirrors the upstream API
//! surface (names, types, constants) for exactly the symbols the workspace
//! uses, and nothing else.
//!
//! Everything here is Linux-only and is therefore `cfg`-gated; on other
//! platforms the crate compiles to an empty library and `vgod-serve` falls
//! back to its portable blocking server.

#![allow(non_camel_case_types)]

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::os::raw::{c_int, c_uint, c_void};

    /// One epoll readiness event. On x86-64 the kernel ABI packs the
    /// 12-byte struct (no padding between `events` and `u64`), which is
    /// why the upstream crate declares it `packed` — a plain `repr(C)`
    /// layout would make `epoll_wait` scribble events at the wrong
    /// offsets.
    #[repr(C, packed)]
    #[derive(Clone, Copy, Debug)]
    pub struct epoll_event {
        /// Readiness bit set (`EPOLLIN | …`).
        pub events: u32,
        /// Caller-owned cookie, returned verbatim with the event.
        pub u64: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn accept4(sockfd: c_int, addr: *mut c_void, addrlen: *mut u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    /// The packed layout is the contract with the kernel: 12 bytes, data
    /// at offset 4.
    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        assert_eq!(std::mem::size_of::<epoll_event>(), 12);
        let ev = epoll_event {
            events: EPOLLIN,
            u64: 0xdead_beef_cafe,
        };
        let base = &ev as *const _ as usize;
        let data = std::ptr::addr_of!(ev.u64) as usize;
        assert_eq!(data - base, 4);
    }

    /// Round-trip an eventfd counter through raw read/write — exercises
    /// the extern declarations end to end.
    #[test]
    fn eventfd_round_trip() {
        unsafe {
            let fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(
                fd >= 0,
                "eventfd failed: {}",
                std::io::Error::last_os_error()
            );
            let one: u64 = 1;
            let n = write(fd, &one as *const u64 as *const _, 8);
            assert_eq!(n, 8);
            let mut got: u64 = 0;
            let n = read(fd, &mut got as *mut u64 as *mut _, 8);
            assert_eq!(n, 8);
            assert_eq!(got, 1);
            // Drained: a second nonblocking read reports EAGAIN.
            let n = read(fd, &mut got as *mut u64 as *mut _, 8);
            assert_eq!(n, -1);
            assert_eq!(
                std::io::Error::last_os_error().raw_os_error(),
                Some(11) // EAGAIN
            );
            close(fd);
        }
    }

    /// epoll observes readiness on an eventfd.
    #[test]
    fn epoll_sees_eventfd_readiness() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0);
            let fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(fd >= 0);
            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, fd, &mut ev), 0);

            // Nothing readable yet.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            let one: u64 = 1;
            assert_eq!(write(fd, &one as *const u64 as *const _, 8), 8);
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            assert_eq!({ out[0].u64 }, 42);
            assert_ne!({ out[0].events } & EPOLLIN, 0);

            close(fd);
            close(ep);
        }
    }
}
