//! Serving smoke test: train tiny checkpoints, serve them on an ephemeral
//! port, score over HTTP with the workspace's own client helper, and shut
//! down gracefully. CI runs this end-to-end (it asserts, not just prints).
//!
//! ```sh
//! cargo run --release --example serve_smoke
//! ```

use vgod_suite::baselines::DeepConfig;
use vgod_suite::prelude::*;
use vgod_suite::serve::{http, json::Json, AnyDetector, ServeConfig};

fn main() {
    // --- training job: two checkpoints into a models directory ---------
    let dir = std::env::temp_dir().join(format!("vgod_serve_smoke_{}", std::process::id()));
    let models = dir.join("models");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&models).expect("create models dir");
    let graph_path = dir.join("graph.txt");

    let mut rng = seeded_rng(19);
    let g = replica(Dataset::CoraLike, Scale::Tiny, &mut rng).graph;
    save_graph(&g, graph_path.display().to_string()).expect("save graph");

    let mut dom = AnyDetector::Dominant(Dominant::new(DeepConfig {
        hidden: 8,
        epochs: 3,
        lr: 0.005,
        seed: 2,
    }));
    dom.fit(&g);
    dom.save_file(&models.join("dom.ckpt")).expect("save dom");
    AnyDetector::DegNorm(DegNorm)
        .save_file(&models.join("degnorm.ckpt"))
        .expect("save degnorm");

    // --- serving job: ephemeral port, default micro-batching -----------
    let handle =
        vgod_suite::serve::serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default())
            .expect("start server");
    let addr = handle.addr();
    println!("serving {} models on http://{addr}", handle.models().len());

    let (status, body) = http::get(addr, "/healthz").expect("healthz");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    let (status, body) = http::get(addr, "/models").expect("models");
    assert_eq!(status, 200);
    let v = Json::parse(&body).expect("well-formed /models JSON");
    assert_eq!(
        v.get("models").and_then(Json::as_arr).map(|a| a.len()),
        Some(2)
    );

    let (status, body) =
        http::post(addr, "/score", r#"{"model":"dom","nodes":[0,1,2]}"#).expect("score");
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).expect("well-formed /score JSON");
    let scores = v
        .get("scores")
        .and_then(Json::as_arr)
        .expect("scores array");
    assert_eq!(scores.len(), 3);
    println!("scored nodes [0,1,2] with dom: {body}");

    let (status, body) = http::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let v = Json::parse(&body).expect("well-formed /metrics JSON");
    assert!(v.get("requests").and_then(Json::as_u64).unwrap_or(0) >= 1);

    // --- graceful shutdown over HTTP ------------------------------------
    let (status, _) = http::post(addr, "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join();
    println!("server drained and stopped — serve smoke OK");

    let _ = std::fs::remove_dir_all(&dir);
}
