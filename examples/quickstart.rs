//! Quickstart: build a community-structured graph, inject the two standard
//! outlier types, and detect them with VGOD.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vgod_suite::prelude::*;

fn main() {
    // 1. A synthetic attributed network with planted community structure —
    //    a small calibrated stand-in for Cora (see `vgod_datasets` for the
    //    replicas of all five paper datasets).
    let mut rng = seeded_rng(7);
    let mut data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    println!(
        "graph: {} nodes, {} edges, {} attributes, avg degree {:.2}",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.graph.num_attrs(),
        data.graph.avg_degree()
    );

    // 2. Inject outliers with the standard protocol (§IV of the paper):
    //    two cliques of 8 structural outliers, 16 contextual outliers.
    let structural = StructuralParams {
        num_cliques: 2,
        clique_size: 8,
    };
    let contextual = ContextualParams::standard(&structural);
    let truth = inject_standard(&mut data.graph, &structural, &contextual, &mut rng);
    println!(
        "injected: {} structural + {} contextual outliers",
        truth.structural_nodes().len(),
        truth.contextual_nodes().len()
    );

    // 3. Train VGOD (variance-based model + attribute reconstruction
    //    model, trained separately per Algorithm 1) and score every node.
    let mut model = Vgod::new(VgodConfig::fast());
    let scores = model.fit_score(&data.graph);

    // 4. Evaluate: overall AUC, per-type AUC and the balance metric.
    let overall = auc(&scores.combined, &truth.outlier_mask());
    let on_structural = auc_subset(&scores.combined, &truth.structural_mask());
    let on_contextual = auc_subset(&scores.combined, &truth.contextual_mask());
    println!("AUC            = {overall:.4}");
    println!("AUC structural = {on_structural:.4}");
    println!("AUC contextual = {on_contextual:.4}");
    println!(
        "AucGap         = {:.4}",
        auc_gap(on_structural, on_contextual)
    );

    // 5. Show the top-5 most suspicious nodes.
    let mut ranked: Vec<(usize, f32)> = scores.combined.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top suspects (node, score, truth):");
    for (node, score) in ranked.into_iter().take(5) {
        println!("  #{node:<5} {score:>8.3}  {:?}", truth.kind(node as u32));
    }
}
