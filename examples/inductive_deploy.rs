//! Inductive deployment (Appendix B of the paper): train VGOD once, then
//! score *new* graphs with the same attribute schema — e.g. tonight's
//! snapshot of a network the model was trained on last week. Every VGOD
//! hyperparameter is decoupled from the graph size, so no retraining is
//! needed.
//!
//! ```sh
//! cargo run --release --example inductive_deploy
//! ```

use vgod_suite::prelude::*;

fn build_snapshot(seed: u64) -> (vgod_suite::graph::AttributedGraph, GroundTruth) {
    let mut rng = seeded_rng(seed);
    let mut data = replica(Dataset::CiteseerLike, Scale::Tiny, &mut rng);
    let sp = StructuralParams {
        num_cliques: 2,
        clique_size: 8,
    };
    let cp = ContextualParams::standard(&sp);
    let truth = inject_standard(&mut data.graph, &sp, &cp, &mut rng);
    (data.graph, truth)
}

fn main() {
    // Monday: train on the first snapshot.
    let (train_graph, train_truth) = build_snapshot(100);
    let mut model = Vgod::new(VgodConfig::fast());
    model.fit(&train_graph);
    let transductive = model.score(&train_graph);
    println!(
        "transductive AUC on the training snapshot: {:.4}",
        auc(&transductive.combined, &train_truth.outlier_mask())
    );

    // Rest of the week: score fresh snapshots without retraining.
    println!("\ninductive scoring of unseen snapshots:");
    for (day, seed) in [("tue", 200u64), ("wed", 300), ("thu", 400), ("fri", 500)] {
        let (snapshot, truth) = build_snapshot(seed);
        let scores = model.score(&snapshot);
        println!(
            "  {day}: {} nodes → AUC {:.4}",
            snapshot.num_nodes(),
            auc(&scores.combined, &truth.outlier_mask())
        );
    }

    println!(
        "\n(the paper's Appendix B reports the same effect: inductive VGOD matches or beats \
         its transductive numbers because the fresh graph removes overfitting)"
    );
}
