//! Benchmark-integrity audit on a citation network: demonstrates the
//! paper's central *insight* — the standard outlier-injection protocol
//! leaks labels through node degree and attribute L2-norm, and a detector
//! that merely reads the leak looks state-of-the-art until the leak is
//! closed.
//!
//! ```sh
//! cargo run --release --example citation_audit
//! ```

use vgod_suite::baselines::{Deg, DegNorm, L2Norm};
use vgod_suite::core::{Vbm, VbmConfig};
use vgod_suite::prelude::*;

fn main() {
    let mut rng = seeded_rng(3);

    // ------------------------------------------------------------------
    // Act 1: the standard injection protocol leaks.
    // ------------------------------------------------------------------
    let mut data = replica(Dataset::CoraLike, Scale::Small, &mut rng);
    let sp = StructuralParams {
        num_cliques: 2,
        clique_size: 15,
    };
    let cp = ContextualParams::standard(&sp); // k = 50, Euclidean
    let truth = inject_standard(&mut data.graph, &sp, &cp, &mut rng);

    println!("== standard injection (q=15, k=50, Euclidean) ==");
    let deg = Deg.score(&data.graph);
    let norm = L2Norm.score(&data.graph);
    println!(
        "node degree alone detects structural outliers:   AUC = {:.3}",
        auc(&deg.combined, &truth.structural_mask())
    );
    println!(
        "attribute L2-norm alone detects contextual ones: AUC = {:.3}",
        auc(&norm.combined, &truth.contextual_mask())
    );
    let mut degnorm = DegNorm;
    let leak_scores = degnorm.fit_score(&data.graph);
    println!(
        "DegNorm (leak only, zero training!) overall:     AUC = {:.3}",
        auc(&leak_scores.combined, &truth.outlier_mask())
    );

    // ------------------------------------------------------------------
    // Act 2: close the leak with the paper's degree-preserving injection.
    // ------------------------------------------------------------------
    let mut data2 = replica(Dataset::CoraLike, Scale::Small, &mut rng);
    let mut truth2 = GroundTruth::new(data2.graph.num_nodes());
    inject_community_replacement(&mut data2.graph, &mut truth2, 0.10, &mut rng);

    println!("\n== degree-preserving injection (neighbours replaced across communities) ==");
    let deg2 = Deg.score(&data2.graph);
    println!(
        "node degree alone now detects nothing:           AUC = {:.3}",
        auc(&deg2.combined, &truth2.outlier_mask())
    );

    // ------------------------------------------------------------------
    // Act 3: the variance-based model detects the *essence* — inconsistent
    // neighbourhoods — and survives the protocol change.
    // ------------------------------------------------------------------
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 32,
        epochs: 10,
        ..VbmConfig::default()
    });
    OutlierDetector::fit(&mut vbm, &data2.graph);
    let vbm_scores = vbm.scores(&data2.graph);
    println!(
        "neighbour-variance model (VBM):                  AUC = {:.3}",
        auc(&vbm_scores, &truth2.outlier_mask())
    );

    // Inspect the top alarms with their community context.
    let labels = data2.graph.labels().unwrap().to_vec();
    let mut ranked: Vec<usize> = (0..data2.graph.num_nodes()).collect();
    ranked.sort_by(|&a, &b| vbm_scores[b].total_cmp(&vbm_scores[a]));
    println!("\ntop alarms (node, score, own community, neighbour communities):");
    for &n in ranked.iter().take(5) {
        let nbr_comms: Vec<u32> = data2
            .graph
            .neighbors(n as u32)
            .iter()
            .map(|&v| labels[v as usize])
            .collect();
        println!(
            "  #{n:<5} {:>7.3}  c{}  nbrs {:?}  [{:?}]",
            vbm_scores[n],
            labels[n],
            &nbr_comms[..nbr_comms.len().min(8)],
            truth2.kind(n as u32)
        );
    }
}
