//! The paper's Fig. 1 as runnable code: a tiny two-community network with
//! one *structural* outlier (normal attributes, abnormal links bridging
//! the communities) and one *contextual* outlier (normal links, corrupted
//! attributes), and the two VGOD signals that expose each.
//!
//! ```sh
//! cargo run --release --example toy_figure1
//! ```

use vgod_suite::core::{Arm, ArmConfig, GnnBackbone, Vbm, VbmConfig};
use vgod_suite::prelude::*;

fn main() {
    // Two five-person communities: football players (attribute pattern A)
    // and music teachers (attribute pattern B).
    let d = 8;
    let pattern = |base: f32, i: usize| -> Vec<f32> {
        (0..d)
            .map(|k| base + if k % 2 == i % 2 { 0.3 } else { -0.3 })
            .collect()
    };
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for i in 0..5 {
        rows.push(pattern(2.0, i)); // community 0: values around +2
    }
    for i in 0..5 {
        rows.push(pattern(-2.0, i)); // community 1: values around −2
    }
    // Node 10: the structural outlier — a football player's attributes…
    rows.push(pattern(2.0, 0));
    // Node 11: the contextual outlier — attributes from neither community.
    rows.push(
        (0..d)
            .map(|k| if k % 3 == 0 { 9.0 } else { -7.0 })
            .collect(),
    );

    let x = Matrix::from_vec(12, d, rows.into_iter().flatten().collect()).unwrap();
    let mut g = AttributedGraph::new(x);
    // Dense intra-community wiring.
    g.make_clique(&[0, 1, 2, 3, 4]);
    g.make_clique(&[5, 6, 7, 8, 9]);
    // …but node 10 bridges *both* communities (Fig. 1a).
    for v in [0, 2, 5, 7, 9] {
        g.add_edge(10, v);
    }
    // Node 11 sits normally inside community 0 (Fig. 1b).
    for v in [1, 3, 4] {
        g.add_edge(11, v);
    }

    println!("Fig. 1 toy network: 12 nodes, {} edges", g.num_edges());
    println!("  node 10 = structural outlier (links span both communities)");
    println!("  node 11 = contextual outlier (attributes match neither community)\n");

    // The variance-based model: node 10's neighbours disagree with each
    // other, so its neighbour variance dwarfs everyone else's.
    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 8,
        epochs: 5,
        self_loops: true,
        ..VbmConfig::default()
    });
    OutlierDetector::fit(&mut vbm, &g);
    let str_scores = vbm.scores(&g);

    // The attribute reconstruction model: node 11's attributes cannot be
    // predicted from its context, so its reconstruction error stands out.
    let mut arm = Arm::new(ArmConfig {
        hidden_dim: 8,
        epochs: 60,
        backbone: GnnBackbone::Gcn,
        ..ArmConfig::default()
    });
    OutlierDetector::fit(&mut arm, &g);
    let ctx_scores = arm.scores(&g);

    let combined = vgod_suite::eval::combine_mean_std(&str_scores, &ctx_scores);
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "node", "variance", "recon_err", "combined"
    );
    println!("{:-<44}", "");
    for i in 0..12 {
        let marker = match i {
            10 => "  ← structural",
            11 => "  ← contextual",
            _ => "",
        };
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>10.3}{marker}",
            i, str_scores[i], ctx_scores[i], combined[i]
        );
    }

    let top_variance = (0..12)
        .max_by(|&a, &b| str_scores[a].total_cmp(&str_scores[b]))
        .unwrap();
    let top_recon = (0..12)
        .max_by(|&a, &b| ctx_scores[a].total_cmp(&ctx_scores[b]))
        .unwrap();
    println!("\nhighest neighbour variance: node {top_variance} (expect 10)");
    println!("highest reconstruction error: node {top_recon} (expect 11)");
    assert_eq!(
        top_variance, 10,
        "the structural outlier should top the variance ranking"
    );
    assert_eq!(
        top_recon, 11,
        "the contextual outlier should top the reconstruction ranking"
    );
    println!("\nboth outlier types identified — Fig. 1 reproduced.");
}
