//! Large-graph training via neighbour-sampled mini-batches — the paper's
//! §V-D extensibility claim in action: VBM's peak memory per optimisation
//! step drops from `O(n·d)` to `O(batch·(cap+1)·d)` while detection quality
//! tracks full-batch training.
//!
//! ```sh
//! cargo run --release --example minibatch_scaling
//! ```

use std::time::Instant;

use vgod_suite::core::{MiniBatchConfig, Vbm, VbmConfig};
use vgod_suite::prelude::*;

fn main() {
    // A larger replica than the other examples use: PubMed-like at Small
    // scale (≈ 2 000 nodes).
    let mut rng = seeded_rng(17);
    let mut data = replica(Dataset::PubmedLike, Scale::Small, &mut rng);
    let mut truth = GroundTruth::new(data.graph.num_nodes());
    inject_structural_groups(&mut data.graph, &mut truth, &[5, 10, 15], 0.02, &mut rng);
    let mask = truth.outlier_mask();
    println!(
        "graph: {} nodes, {} edges; {} structural outliers",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        truth.structural_nodes().len()
    );

    let cfg = VbmConfig {
        hidden_dim: 64,
        epochs: 8,
        lr: 0.005,
        self_loops: true,
        seed: 1,
    };

    // Full-batch training (the default path).
    let t0 = Instant::now();
    let mut full = Vbm::new(cfg.clone());
    OutlierDetector::fit(&mut full, &data.graph);
    let full_time = t0.elapsed();
    let full_auc = auc(&full.scores(&data.graph), &mask);

    // Mini-batch training at several batch sizes.
    println!("\n{:<18} {:>8} {:>10}", "trainer", "AUC", "fit time");
    println!("{:-<38}", "");
    println!("{:<18} {:>8.4} {:>9.2?}", "full batch", full_auc, full_time);
    for batch in [512usize, 128, 32] {
        let t0 = Instant::now();
        let mut mini = Vbm::new(cfg.clone());
        mini.fit_minibatch(
            &data.graph,
            &MiniBatchConfig {
                batch_size: batch,
                neighbor_cap: 10,
            },
        );
        let elapsed = t0.elapsed();
        let a = auc(&mini.scores(&data.graph), &mask);
        println!(
            "{:<18} {:>8.4} {:>9.2?}",
            format!("batch = {batch}"),
            a,
            elapsed
        );
    }
    println!(
        "\nmini-batch AUC tracks full batch; per-step memory is bounded by the batch and \
         neighbour cap instead of the graph size."
    );
}
