//! Train-once / score-forever: persist a trained VGOD pair as plain-text
//! checkpoints and restore it in a separate "process" — the deployment
//! workflow behind `vgod detect --save-model / --load-model`.
//!
//! ```sh
//! cargo run --release --example checkpoint_workflow
//! ```

use vgod_suite::core::{Arm, ArmConfig, GnnBackbone, Vbm, VbmConfig};
use vgod_suite::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("vgod_checkpoint_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let vbm_path = dir.join("vbm.ckpt");
    let arm_path = dir.join("arm.ckpt");

    // --- training job -------------------------------------------------
    let mut rng = seeded_rng(23);
    let mut data = replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
    let sp = StructuralParams {
        num_cliques: 2,
        clique_size: 8,
    };
    let cp = ContextualParams::standard(&sp);
    let truth = inject_standard(&mut data.graph, &sp, &cp, &mut rng);

    let mut vbm = Vbm::new(VbmConfig {
        hidden_dim: 32,
        epochs: 8,
        ..VbmConfig::default()
    });
    OutlierDetector::fit(&mut vbm, &data.graph);
    let mut arm = Arm::new(ArmConfig {
        hidden_dim: 32,
        epochs: 40,
        backbone: GnnBackbone::Gcn,
        ..ArmConfig::default()
    });
    OutlierDetector::fit(&mut arm, &data.graph);

    // Scope each writer so it flushes before the scoring job reads the file
    // (a shadowed BufWriter would stay alive — and unflushed — to scope end).
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&vbm_path).unwrap());
        vbm.save(&mut w).unwrap();
    }
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&arm_path).unwrap());
        arm.save(&mut w).unwrap();
    }
    println!(
        "training job: wrote {} and {}",
        vbm_path.display(),
        arm_path.display()
    );

    // --- scoring job (no retraining) -----------------------------------
    let mut r = std::io::BufReader::new(std::fs::File::open(&vbm_path).unwrap());
    let vbm2 = Vbm::load(&mut r).expect("load VBM checkpoint");
    let mut r = std::io::BufReader::new(std::fs::File::open(&arm_path).unwrap());
    let arm2 = Arm::load(&mut r).expect("load ARM checkpoint");

    let structural = vbm2.scores(&data.graph);
    let contextual = arm2.scores(&data.graph);
    let combined = vgod_suite::eval::combine_mean_std(&structural, &contextual);
    println!(
        "scoring job: AUC = {:.4} (identical to the training process's scores)",
        auc(&combined, &truth.outlier_mask())
    );

    // The restored models are bit-identical to the originals.
    assert_eq!(vbm.scores(&data.graph), structural);
    assert_eq!(arm.scores(&data.graph), contextual);
    println!("checkpoint roundtrip verified bit-exact");

    let _ = std::fs::remove_dir_all(&dir);
}
