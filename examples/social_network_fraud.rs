//! Fraud-ring detection on a social network with *organic* labeled
//! outliers — the scenario that motivates the paper's Weibo study (§VI-E4):
//! spam/fraud accounts form small, densely-connected rings whose member
//! profiles have nothing in common, inside an otherwise homophilous
//! network.
//!
//! ```sh
//! cargo run --release --example social_network_fraud
//! ```

use vgod_suite::graph::{adjusted_homophily, attribute_variance, degree_stats};
use vgod_suite::prelude::*;

fn main() {
    // The Weibo-like replica carries labeled outliers; no injection needed.
    let mut rng = seeded_rng(11);
    let data = replica(Dataset::WeiboLike, Scale::Tiny, &mut rng);
    let truth = data.labeled_truth.expect("weibo-like replica has labels");
    let g = data.graph;

    println!("== network profile ==");
    println!(
        "accounts: {}, connections: {}",
        g.num_nodes(),
        g.num_edges()
    );
    println!(
        "labeled fraud accounts: {} ({:.1}%)",
        truth.structural_nodes().len(),
        100.0 * truth.outlier_ratio()
    );
    println!(
        "adjusted homophily: {:.2} (paper measured 0.75 on the real Weibo)",
        adjusted_homophily(&g)
    );

    // Why is this hard? The fraud accounts carry no degree signal…
    let fraud = truth.structural_nodes();
    let honest = truth.normal_nodes();
    let fraud_deg = degree_stats(&g, Some(&fraud));
    let honest_deg = degree_stats(&g, Some(&honest));
    println!(
        "degree means: fraud {:.1} vs honest {:.1} — no exploitable degree gap (Fig. 9b)",
        fraud_deg.mean, honest_deg.mean
    );
    // …but their profiles are mutually diverse:
    println!(
        "profile variance: fraud {:.0} vs honest {:.1} (paper: 425.0 vs 11.95)",
        attribute_variance(&g, &fraud),
        attribute_variance(&g, &honest)
    );

    // VGOD: the neighbour-variance model sees that a fraud ring is a dense
    // cluster of mutually-unrelated profiles.
    let mut cfg = VgodConfig::fast();
    cfg.arm.row_normalize = true; // the paper's Weibo preprocessing
    cfg.vbm.lr = 0.01;
    let mut model = Vgod::new(cfg);
    let scores = model.fit_score(&g);
    let mask = truth.outlier_mask();

    println!("\n== detection ==");
    println!("VGOD AUC            = {:.4}", auc(&scores.combined, &mask));
    println!(
        "  variance channel  = {:.4}",
        auc(scores.structural.as_ref().unwrap(), &mask)
    );
    println!(
        "  reconstruction ch = {:.4}",
        auc(scores.contextual.as_ref().unwrap(), &mask)
    );

    // Precision of the alarm list an analyst would actually read.
    let k = fraud.len();
    let mut ranked: Vec<usize> = (0..g.num_nodes()).collect();
    ranked.sort_by(|&a, &b| scores.combined[b].total_cmp(&scores.combined[a]));
    let hits = ranked.iter().take(k).filter(|&&n| mask[n]).count();
    println!(
        "precision@{k}: {:.2} ({hits}/{k} of the top-{k} alarms are real fraud)",
        hits as f32 / k as f32
    );
}
