//! # vgod-suite
//!
//! Facade crate for the `vgod-rs` workspace: a from-scratch Rust
//! reproduction of *"Unsupervised Graph Outlier Detection: Problem Revisit,
//! New Insight, and Superior Method"* (ICDE 2023), including the VGOD
//! framework, every baseline the paper compares against, and all of the
//! substrates (tensor library, autodiff engine, GNN layers, synthetic
//! datasets, outlier-injection machinery) those systems depend on.
//!
//! This crate simply re-exports the public API of every workspace member so
//! that downstream users can depend on a single crate:
//!
//! ```
//! use vgod_suite::prelude::*;
//!
//! // Build a tiny community-structured graph, inject outliers, detect them.
//! let mut rng = seeded_rng(7);
//! let graph = vgod_suite::datasets::replica(Dataset::CoraLike, Scale::Tiny, &mut rng);
//! ```

#![warn(missing_docs)]

pub use vgod as core;
pub use vgod_autograd as autograd;
pub use vgod_baselines as baselines;
pub use vgod_datasets as datasets;
pub use vgod_eval as eval;
pub use vgod_gnn as gnn;
pub use vgod_graph as graph;
pub use vgod_inject as inject;
pub use vgod_nn as nn;
pub use vgod_serve as serve;
pub use vgod_tensor as tensor;

/// Everything most applications need, in one import.
pub mod prelude {
    pub use vgod::{
        Arm, ArmConfig, CombineStrategy, GnnBackbone, MiniBatchConfig, Vbm, VbmConfig, Vgod,
        VgodConfig,
    };
    pub use vgod_baselines::{
        AnomalyDae, Cola, Conad, Deg, DegNorm, Dominant, Done, L2Norm, Radar, RandomDetector,
    };
    pub use vgod_datasets::{replica, Dataset, Scale};
    pub use vgod_eval::{
        auc, auc_gap, auc_subset, average_precision, mean_std_normalize, precision_at_k,
        recall_at_k, OutlierDetector,
    };
    pub use vgod_graph::{load_graph, save_graph, seeded_rng, AttributedGraph};
    pub use vgod_inject::{
        inject_community_replacement, inject_contextual, inject_standard, inject_structural,
        inject_structural_groups, ContextualParams, DistanceMetric, GroundTruth, OutlierKind,
        StructuralParams,
    };
    pub use vgod_tensor::{Csr, Matrix};
}
