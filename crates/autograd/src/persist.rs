//! Shared plumbing for plain-text model checkpoints.
//!
//! A checkpoint is a `# vgod-<kind> v<N>` magic line, a header line of
//! `key value` pairs, and the parameter store in
//! [`crate::ParamStore::write_text`] format. Reconstruction replays the
//! model's deterministic constructor (which fixes the parameter insertion
//! order) and then overwrites every value with the checkpoint's. These
//! helpers are shared by every detector's `save`/`load` pair and by the
//! serving model registry.

use std::collections::BTreeMap;

/// Serialise `key value` pairs on one line.
pub fn header_line(pairs: &[(&str, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{k} {v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse a header line into a key → value map.
///
/// Rejects odd token counts and duplicate keys — a duplicated key would
/// otherwise silently keep the last value, hiding a corrupted or
/// hand-mangled checkpoint.
pub fn parse_header(line: &str) -> Result<BTreeMap<String, String>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if !tokens.len().is_multiple_of(2) {
        return Err(format!("malformed header: {line:?}"));
    }
    let mut map = BTreeMap::new();
    for pair in tokens.chunks(2) {
        if map
            .insert(pair[0].to_string(), pair[1].to_string())
            .is_some()
        {
            return Err(format!("duplicate header key {:?}: {line:?}", pair[0]));
        }
    }
    Ok(map)
}

/// Typed lookup in a parsed header.
pub fn header_get<T: std::str::FromStr>(
    map: &BTreeMap<String, String>,
    key: &str,
) -> Result<T, String> {
    map.get(key)
        .ok_or_else(|| format!("missing header field {key:?}"))?
        .parse()
        .map_err(|_| format!("bad header field {key:?}"))
}

/// Read one line and check it against the expected magic string; the error
/// names the expectation so mismatched checkpoint kinds are diagnosable.
pub fn expect_magic(input: &mut impl std::io::BufRead, expected: &str) -> Result<(), String> {
    let mut magic = String::new();
    input.read_line(&mut magic).map_err(|e| e.to_string())?;
    if magic.trim() != expected {
        return Err(format!("not a {expected:?} checkpoint: {magic:?}"));
    }
    Ok(())
}

/// Read the header line following the magic and parse it.
pub fn read_header(input: &mut impl std::io::BufRead) -> Result<BTreeMap<String, String>, String> {
    let mut header = String::new();
    input.read_line(&mut header).map_err(|e| e.to_string())?;
    parse_header(header.trim())
}

/// Copy every parameter value from `src` into `dst`, validating that both
/// stores have identical layouts.
pub fn copy_store_values(
    dst: &mut crate::ParamStore,
    src: &crate::ParamStore,
) -> Result<(), String> {
    if dst.len() != src.len() {
        return Err(format!(
            "checkpoint has {} parameters, model expects {}",
            src.len(),
            dst.len()
        ));
    }
    let shapes: Vec<_> = src.iter().map(|(_, p)| p.value.clone()).collect();
    for ((id, p), value) in dst.iter_mut().zip(shapes) {
        if p.value.shape() != value.shape() {
            return Err(format!(
                "checkpoint parameter {id:?} has shape {:?}, model expects {:?}",
                value.shape(),
                p.value.shape()
            ));
        }
        p.value = value;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    #[test]
    fn header_roundtrip() {
        let line = header_line(&[("hidden", "64".into()), ("lr", "0.005".into())]);
        let map = parse_header(&line).unwrap();
        assert_eq!(header_get::<usize>(&map, "hidden").unwrap(), 64);
        assert_eq!(header_get::<f32>(&map, "lr").unwrap(), 0.005);
        assert!(header_get::<usize>(&map, "missing").is_err());
        assert!(parse_header("three tokens here").is_err());
    }

    #[test]
    fn duplicate_header_keys_are_rejected() {
        let err = parse_header("hidden 64 hidden 32").unwrap_err();
        assert!(err.contains("duplicate header key"), "{err}");
        // A repeated value under distinct keys is fine.
        assert!(parse_header("a 1 b 1").is_ok());
    }

    #[test]
    fn magic_and_header_readers() {
        let data = b"# vgod-test v1\nhidden 8 seed 3\n";
        let mut r = &data[..];
        expect_magic(&mut r, "# vgod-test v1").unwrap();
        let map = read_header(&mut r).unwrap();
        assert_eq!(header_get::<u64>(&map, "seed").unwrap(), 3);
        assert!(expect_magic(&mut b"# other v1\n".as_slice(), "# vgod-test v1").is_err());
    }

    #[test]
    fn copy_validates_layout() {
        let mut a = crate::ParamStore::new();
        a.insert(Matrix::zeros(2, 2));
        let mut b = crate::ParamStore::new();
        b.insert(Matrix::filled(2, 2, 5.0));
        copy_store_values(&mut a, &b).unwrap();
        let (id, p) = a.iter().next().unwrap();
        assert_eq!(p.value.as_slice(), &[5.0; 4]);
        let _ = id;

        let mut c = crate::ParamStore::new();
        c.insert(Matrix::zeros(1, 3));
        assert!(copy_store_values(&mut a, &c).is_err());
        let empty = crate::ParamStore::new();
        assert!(copy_store_values(&mut a, &empty).is_err());
    }
}
