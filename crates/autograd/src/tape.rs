//! The autodiff tape and differentiable `Var` handles.

use std::cell::RefCell;
use std::rc::Rc;

use vgod_tensor::{Csr, Matrix};

use crate::{ParamId, ParamStore};

/// Epsilon added to row norms in [`Var::l2_normalize_rows`].
const ROW_NORM_EPS: f32 = 1e-6;

/// The recorded operation behind each tape node.
enum Op {
    /// Leaf value (constant input or parameter copy).
    Leaf,
    MatMul(usize, usize),
    MatMulTn(usize, usize),
    MatMulNt(usize, usize),
    SpMm {
        mat: Rc<Csr>,
        x: usize,
    },
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddRowBroadcast {
        x: usize,
        row: usize,
    },
    MulColBroadcast {
        x: usize,
        col: usize,
    },
    Scale(usize, f32),
    Relu(usize),
    LeakyRelu(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    Exp(usize),
    RowL2Norm {
        x: usize,
        divisors: Matrix,
    },
    SumAll(usize),
    MeanAll(usize),
    RowSum(usize),
    Gather {
        x: usize,
        idx: Rc<Vec<u32>>,
    },
    SegmentSoftmax {
        logits: usize,
        seg: Rc<Vec<u32>>,
    },
    EdgeAggregate {
        alpha: usize,
        h: usize,
        src: Rc<Vec<u32>>,
        dst: Rc<Vec<u32>>,
    },
    HCat(usize, usize),
}

struct Node {
    value: Matrix,
    op: Op,
    /// If this leaf mirrors a trainable parameter: the owning store's
    /// identity and the parameter's id within it.
    param: Option<(u64, ParamId)>,
}

/// The recycled storage behind a [`Tape`]: recorded nodes plus the gradient
/// scratch table reused by [`Var::backward_into`].
#[derive(Default)]
struct TapeBuf {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

/// A recording of a forward computation, shared by all the [`Var`]s created
/// on it.
///
/// Cheap to clone (reference-counted). A tape lives for one forward/backward
/// step at a time: build the loss, call [`Var::backward_into`], then either
/// drop the tape or — in an epoch loop — call [`Tape::reset`] and record the
/// next step into the same storage. Resetting keeps the node and gradient
/// slot vectors, and (inside a `vgod_tensor::arena::scope`) returns the
/// value/gradient matrices to the buffer arena for reuse, so steady-state
/// epochs allocate nothing new.
#[derive(Clone)]
pub struct Tape {
    inner: Rc<RefCell<TapeBuf>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Self {
            inner: Rc::new(RefCell::new(TapeBuf::default())),
        }
    }

    /// Clear the recording while keeping the allocated node and gradient
    /// slots for the next step.
    ///
    /// This invalidates every [`Var`] previously created on this tape — drop
    /// them all before resetting (indices held by surviving `Var`s would
    /// silently refer to the next recording's nodes).
    pub fn reset(&self) {
        let mut buf = self.inner.borrow_mut();
        buf.nodes.clear();
        buf.grads.clear();
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().nodes.is_empty()
    }

    fn push(&self, value: Matrix, op: Op, param: Option<(u64, ParamId)>) -> Var {
        let mut buf = self.inner.borrow_mut();
        buf.nodes.push(Node { value, op, param });
        Var {
            tape: self.clone(),
            idx: buf.nodes.len() - 1,
        }
    }

    /// Record a constant (non-trainable) leaf.
    pub fn constant(&self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, None)
    }

    /// Record a leaf holding the current value of parameter `id`, so that
    /// [`Var::backward_into`] can route gradients back to the store.
    pub fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        self.push(
            store.value(id).clone(),
            Op::Leaf,
            Some((store.store_id(), id)),
        )
    }

    fn value_of(&self, idx: usize) -> Matrix {
        self.inner.borrow().nodes[idx].value.clone()
    }

    fn shape_of(&self, idx: usize) -> (usize, usize) {
        self.inner.borrow().nodes[idx].value.shape()
    }
}

/// A differentiable handle to one node on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    idx: usize,
}

impl Var {
    /// The tape this variable lives on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// The node index on the tape (stable identifier within one tape).
    pub fn index(&self) -> usize {
        self.idx
    }

    /// A clone of the forward value.
    pub fn value(&self) -> Matrix {
        self.tape.value_of(self.idx)
    }

    /// `(rows, cols)` of the forward value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.shape_of(self.idx)
    }

    fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "variables come from different tapes"
        );
    }

    fn unary(&self, f: impl FnOnce(&Matrix) -> Matrix, op: impl FnOnce(usize) -> Op) -> Var {
        let value = f(&self.tape.inner.borrow().nodes[self.idx].value);
        self.tape.push(value, op(self.idx), None)
    }

    fn binary(
        &self,
        other: &Var,
        f: impl FnOnce(&Matrix, &Matrix) -> Matrix,
        op: impl FnOnce(usize, usize) -> Op,
    ) -> Var {
        self.same_tape(other);
        let value = {
            let nodes = &self.tape.inner.borrow().nodes;
            f(&nodes[self.idx].value, &nodes[other.idx].value)
        };
        self.tape.push(value, op(self.idx, other.idx), None)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Dense product `self · other`.
    pub fn matmul(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.matmul(b), Op::MatMul)
    }

    /// Transposed-left product `selfᵀ · other`.
    pub fn matmul_tn(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.matmul_tn(b), Op::MatMulTn)
    }

    /// Transposed-right product `self · otherᵀ`.
    pub fn matmul_nt(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.matmul_nt(b), Op::MatMulNt)
    }

    /// Sparse message passing `mat · self` (the sparse matrix is constant;
    /// gradients flow only to `self`).
    pub fn spmm(&self, mat: &Rc<Csr>) -> Var {
        let value = mat.spmm(&self.tape.inner.borrow().nodes[self.idx].value);
        self.tape.push(
            value,
            Op::SpMm {
                mat: Rc::clone(mat),
                x: self.idx,
            },
            None,
        )
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.add(b), Op::Add)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.sub(b), Op::Sub)
    }

    /// Hadamard product.
    pub fn mul(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.mul(b), Op::Mul)
    }

    /// Elementwise square (`self ∘ self`).
    pub fn square(&self) -> Var {
        self.mul(self)
    }

    /// Scalar product `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Var {
        self.unary(|a| a.scale(alpha), |x| Op::Scale(x, alpha))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Add a `1 × d` row vector to every row (bias addition).
    pub fn add_row_broadcast(&self, row: &Var) -> Var {
        self.binary(
            row,
            |a, b| a.add_row_broadcast(b),
            |x, r| Op::AddRowBroadcast { x, row: r },
        )
    }

    /// Multiply row `r` of `self` by element `r` of an `n × 1` column vector.
    pub fn mul_col_broadcast(&self, col: &Var) -> Var {
        self.binary(
            col,
            |a, b| a.mul_col_broadcast(b),
            |x, c| Op::MulColBroadcast { x, col: c },
        )
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.unary(|a| a.map(|v| v.max(0.0)), Op::Relu)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        self.unary(
            |a| a.map(|v| if v > 0.0 { v } else { slope * v }),
            |x| Op::LeakyRelu(x, slope),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        self.unary(|a| a.map(|v| 1.0 / (1.0 + (-v).exp())), Op::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        self.unary(|a| a.map(f32::tanh), Op::Tanh)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        self.unary(|a| a.map(f32::exp), Op::Exp)
    }

    // ------------------------------------------------------------------
    // Normalisation & reductions
    // ------------------------------------------------------------------

    /// L2-normalise every row (Eq. 6 of the VGOD paper).
    pub fn l2_normalize_rows(&self) -> Var {
        let (value, divisors) = {
            let nodes = &self.tape.inner.borrow().nodes;
            nodes[self.idx].value.l2_normalize_rows(ROW_NORM_EPS)
        };
        self.tape.push(
            value,
            Op::RowL2Norm {
                x: self.idx,
                divisors,
            },
            None,
        )
    }

    /// Sum of all elements, as a `1 × 1` scalar.
    pub fn sum_all(&self) -> Var {
        self.unary(|a| Matrix::filled(1, 1, a.sum()), Op::SumAll)
    }

    /// Mean of all elements, as a `1 × 1` scalar.
    pub fn mean_all(&self) -> Var {
        self.unary(|a| Matrix::filled(1, 1, a.mean()), Op::MeanAll)
    }

    /// Per-row sums, as an `n × 1` column vector.
    pub fn row_sum(&self) -> Var {
        self.unary(|a| a.row_sums(), Op::RowSum)
    }

    // ------------------------------------------------------------------
    // Graph / edge operations
    // ------------------------------------------------------------------

    /// Gather rows by index: `out[e, :] = self[idx[e], :]`.
    pub fn gather_rows(&self, idx: &Rc<Vec<u32>>) -> Var {
        let value = self.tape.inner.borrow().nodes[self.idx]
            .value
            .gather_rows(idx);
        self.tape.push(
            value,
            Op::Gather {
                x: self.idx,
                idx: Rc::clone(idx),
            },
            None,
        )
    }

    /// Softmax of an `m × 1` score vector within segments.
    ///
    /// `seg[e]` assigns element `e` to a segment (for GAT: the destination
    /// node of edge `e`); the softmax is computed independently inside each
    /// segment, with the usual max-subtraction for stability.
    pub fn segment_softmax(&self, seg: &Rc<Vec<u32>>) -> Var {
        let value = {
            let nodes = &self.tape.inner.borrow().nodes;
            segment_softmax_forward(&nodes[self.idx].value, seg)
        };
        self.tape.push(
            value,
            Op::SegmentSoftmax {
                logits: self.idx,
                seg: Rc::clone(seg),
            },
            None,
        )
    }

    /// Weighted scatter-add over edges — the core GAT aggregation:
    /// `out[dst[e], :] += alpha[e] * h[src[e], :]`, with `self` being the
    /// `m × 1` edge weights `alpha` and `h` the `n × d` node features.
    ///
    /// Gradients flow to both the edge weights and the node features.
    pub fn edge_aggregate(
        &self,
        h: &Var,
        src: &Rc<Vec<u32>>,
        dst: &Rc<Vec<u32>>,
        n_out: usize,
    ) -> Var {
        self.same_tape(h);
        assert_eq!(
            src.len(),
            dst.len(),
            "edge_aggregate: src/dst length mismatch"
        );
        let value = {
            let nodes = &self.tape.inner.borrow().nodes;
            let alpha = &nodes[self.idx].value;
            let feats = &nodes[h.idx].value;
            assert_eq!(
                alpha.shape(),
                (src.len(), 1),
                "edge_aggregate: alpha must be m×1"
            );
            edge_aggregate_forward(alpha, feats, src, dst, n_out)
        };
        self.tape.push(
            value,
            Op::EdgeAggregate {
                alpha: self.idx,
                h: h.idx,
                src: Rc::clone(src),
                dst: Rc::clone(dst),
            },
            None,
        )
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Var) -> Var {
        self.binary(other, |a, b| a.hcat(b), Op::HCat)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from this scalar node and return the
    /// full gradient table.
    ///
    /// # Panics
    /// Panics if `self` is not `1 × 1`.
    pub fn backward(&self) -> Gradients {
        let nodes = &self.tape.inner.borrow().nodes;
        assert_eq!(
            nodes[self.idx].value.shape(),
            (1, 1),
            "backward must start from a scalar (1×1) loss"
        );
        let mut grads: Vec<Option<Matrix>> = (0..nodes.len()).map(|_| None).collect();
        grads[self.idx] = Some(Matrix::filled(1, 1, 1.0));
        run_backward(nodes, self.idx, &mut grads);
        Gradients { grads }
    }

    /// Run backward and accumulate parameter gradients into `store`.
    ///
    /// Does *not* zero existing gradients first — call
    /// [`ParamStore::zero_grads`] before the forward pass (or let the
    /// optimizer in `vgod-nn` do it).
    ///
    /// Unlike [`Var::backward`], this runs inside the tape's recycled
    /// gradient scratch table: intermediate gradient matrices are released
    /// back to the buffer arena as soon as the parameter gradients have been
    /// routed, so epoch loops using [`Tape::reset`] reach a steady state
    /// with no new allocations.
    pub fn backward_into(&self, store: &mut ParamStore) {
        let mut buf = self.tape.inner.borrow_mut();
        let TapeBuf { nodes, grads } = &mut *buf;
        assert_eq!(
            nodes[self.idx].value.shape(),
            (1, 1),
            "backward must start from a scalar (1×1) loss"
        );
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        grads[self.idx] = Some(Matrix::filled(1, 1, 1.0));
        run_backward(nodes, self.idx, grads);
        for (i, node) in nodes.iter().enumerate() {
            if let (Some((sid, pid)), Some(g)) = (node.param, grads[i].as_ref()) {
                // Only leaves created from *this* store receive gradients —
                // multi-store graphs (e.g. GANs) stay correctly separated.
                if sid == store.store_id() {
                    store.accumulate_grad(pid, g);
                }
            }
        }
        // Drop the gradient matrices now (into the arena when engaged); the
        // slot vector itself is retained for the next step.
        for g in grads.iter_mut() {
            *g = None;
        }
    }
}

/// Gradient table produced by [`Var::backward`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// The gradient of the loss with respect to `var`, if it participated in
    /// the computation.
    pub fn wrt(&self, var: &Var) -> Option<&Matrix> {
        self.grads.get(var.idx).and_then(|g| g.as_ref())
    }
}

/// Reverse sweep shared by [`Var::backward`] and [`Var::backward_into`]:
/// propagate from `from` down to the leaves, leaving each node's gradient in
/// its `grads` slot.
fn run_backward(nodes: &[Node], from: usize, grads: &mut [Option<Matrix>]) {
    for i in (0..=from).rev() {
        let Some(g) = grads[i].take() else { continue };
        backpropagate(nodes, i, &g, grads);
        grads[i] = Some(g);
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, g: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

/// Propagate `g` (gradient at node `i`) to the inputs of node `i`.
fn backpropagate(nodes: &[Node], i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
    match &nodes[i].op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            accumulate(grads, *a, g.matmul_nt(bv));
            accumulate(grads, *b, av.matmul_tn(g));
        }
        Op::MatMulTn(a, b) => {
            // C = AᵀB, A: k×m, B: k×n, C: m×n.
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            accumulate(grads, *a, bv.matmul_nt(g)); // dA = B Gᵀ (k×m)
            accumulate(grads, *b, av.matmul(g)); // dB = A G (k×n)
        }
        Op::MatMulNt(a, b) => {
            // C = ABᵀ, A: m×k, B: n×k, C: m×n.
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            accumulate(grads, *a, g.matmul(bv)); // dA = G B (m×k)
            accumulate(grads, *b, g.matmul_tn(av)); // dB = Gᵀ A (n×k)
        }
        Op::SpMm { mat, x } => {
            accumulate(grads, *x, mat.spmm_t(g));
        }
        Op::Add(a, b) => {
            accumulate(grads, *a, g.clone());
            accumulate(grads, *b, g.clone());
        }
        Op::Sub(a, b) => {
            accumulate(grads, *a, g.clone());
            accumulate(grads, *b, g.scale(-1.0));
        }
        Op::Mul(a, b) => {
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            accumulate(grads, *a, g.mul(bv));
            accumulate(grads, *b, g.mul(av));
        }
        Op::AddRowBroadcast { x, row } => {
            accumulate(grads, *x, g.clone());
            accumulate(grads, *row, g.col_sums());
        }
        Op::MulColBroadcast { x, col } => {
            let (xv, cv) = (&nodes[*x].value, &nodes[*col].value);
            accumulate(grads, *x, g.mul_col_broadcast(cv));
            // d col[r] = Σ_c g[r,c] * x[r,c]
            accumulate(grads, *col, g.mul(xv).row_sums());
        }
        Op::Scale(x, alpha) => {
            accumulate(grads, *x, g.scale(*alpha));
        }
        Op::Relu(x) => {
            let xv = &nodes[*x].value;
            let dx = g.zip_map(xv, |gv, v| if v <= 0.0 { 0.0 } else { gv });
            accumulate(grads, *x, dx);
        }
        Op::LeakyRelu(x, slope) => {
            let xv = &nodes[*x].value;
            let slope = *slope;
            let dx = g.zip_map(xv, move |gv, v| if v <= 0.0 { slope * gv } else { gv });
            accumulate(grads, *x, dx);
        }
        Op::Sigmoid(x) => {
            // Fused: one pass instead of a map followed by a mul.
            let yv = &nodes[i].value;
            let dx = g.zip_map(yv, |gv, y| gv * (y * (1.0 - y)));
            accumulate(grads, *x, dx);
        }
        Op::Tanh(x) => {
            let yv = &nodes[i].value;
            let dx = g.zip_map(yv, |gv, y| gv * (1.0 - y * y));
            accumulate(grads, *x, dx);
        }
        Op::Exp(x) => {
            accumulate(grads, *x, g.mul(&nodes[i].value));
        }
        Op::RowL2Norm { x, divisors } => {
            // y = x / n with n = ‖x‖ + eps; dx = g/n − (g·y) x / (‖x‖ n²).
            let xv = &nodes[*x].value;
            let yv = &nodes[i].value;
            let mut dx = Matrix::zeros(xv.rows(), xv.cols());
            dx.par_rows_mut(|r, drow| {
                let n = divisors.as_slice()[r];
                let raw_norm = (n - ROW_NORM_EPS).max(1e-12);
                let dot: f32 = g
                    .row(r)
                    .iter()
                    .zip(yv.row(r))
                    .map(|(&gv, &yvv)| gv * yvv)
                    .sum();
                let coef = dot / (raw_norm * n);
                for ((d, &gv), &xvv) in drow.iter_mut().zip(g.row(r)).zip(xv.row(r)) {
                    *d = gv / n - coef * xvv;
                }
            });
            accumulate(grads, *x, dx);
        }
        Op::SumAll(x) => {
            let (r, c) = nodes[*x].value.shape();
            accumulate(grads, *x, Matrix::filled(r, c, g.as_slice()[0]));
        }
        Op::MeanAll(x) => {
            let (r, c) = nodes[*x].value.shape();
            let scale = if r * c == 0 {
                0.0
            } else {
                g.as_slice()[0] / (r * c) as f32
            };
            accumulate(grads, *x, Matrix::filled(r, c, scale));
        }
        Op::RowSum(x) => {
            let (r, c) = nodes[*x].value.shape();
            let mut dx = Matrix::zeros(r, c);
            let gsl = g.as_slice();
            dx.par_rows_mut(|row, drow| {
                let gv = gsl[row];
                for d in drow {
                    *d = gv;
                }
            });
            accumulate(grads, *x, dx);
        }
        Op::Gather { x, idx } => {
            let (r, c) = nodes[*x].value.shape();
            let mut dx = Matrix::zeros(r, c);
            dx.scatter_add_rows(idx, g);
            accumulate(grads, *x, dx);
        }
        Op::SegmentSoftmax { logits, seg } => {
            // dl_e = α_e (g_e − Σ_{e' in seg(e)} α_{e'} g_{e'}).
            let alpha = &nodes[i].value;
            let m = alpha.rows();
            let n_seg = seg.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
            let mut seg_dot = vec![0.0f32; n_seg];
            for e in 0..m {
                seg_dot[seg[e] as usize] += alpha.as_slice()[e] * g.as_slice()[e];
            }
            let mut dl = Matrix::zeros(m, 1);
            for e in 0..m {
                let a = alpha.as_slice()[e];
                dl.as_mut_slice()[e] = a * (g.as_slice()[e] - seg_dot[seg[e] as usize]);
            }
            accumulate(grads, *logits, dl);
        }
        Op::EdgeAggregate { alpha, h, src, dst } => {
            let alpha_v = &nodes[*alpha].value;
            let h_v = &nodes[*h].value;
            let m = src.len();
            // Plain slices: the Rc handles are not Sync, their contents are.
            let (src, dst): (&[u32], &[u32]) = (src, dst);
            // d_alpha[e] = ⟨g[dst[e]], h[src[e]]⟩ is edge-disjoint: parallel.
            let mut d_alpha = Matrix::zeros(m, 1);
            d_alpha.par_rows_mut(|e, out| {
                let (s, d) = (src[e] as usize, dst[e] as usize);
                out[0] = g
                    .row(d)
                    .iter()
                    .zip(h_v.row(s))
                    .map(|(&gv, &hv)| gv * hv)
                    .sum();
            });
            // d_h[src[e]] += alpha[e] * g[dst[e]] scatters to shared rows:
            // stays sequential (not row-disjoint).
            let mut d_h = Matrix::zeros(h_v.rows(), h_v.cols());
            for e in 0..m {
                let (s, d) = (src[e] as usize, dst[e] as usize);
                let g_row = g.row(d);
                let a = alpha_v.as_slice()[e];
                let cols = d_h.cols();
                let dst_row = &mut d_h.as_mut_slice()[s * cols..(s + 1) * cols];
                for (o, &gv) in dst_row.iter_mut().zip(g_row) {
                    *o += a * gv;
                }
            }
            accumulate(grads, *alpha, d_alpha);
            accumulate(grads, *h, d_h);
        }
        Op::HCat(a, b) => {
            let (ra, ca) = nodes[*a].value.shape();
            let (_, cb) = nodes[*b].value.shape();
            let mut da = Matrix::zeros(ra, ca);
            let mut db = Matrix::zeros(ra, cb);
            for r in 0..ra {
                da.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                db.row_mut(r).copy_from_slice(&g.row(r)[ca..ca + cb]);
            }
            accumulate(grads, *a, da);
            accumulate(grads, *b, db);
        }
    }
}

fn segment_softmax_forward(logits: &Matrix, seg: &[u32]) -> Matrix {
    assert_eq!(
        logits.cols(),
        1,
        "segment_softmax expects an m×1 score vector"
    );
    assert_eq!(
        logits.rows(),
        seg.len(),
        "segment_softmax: scores/segments length mismatch"
    );
    let m = logits.rows();
    let n_seg = seg.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
    let mut seg_max = vec![f32::NEG_INFINITY; n_seg];
    for (&s, &l) in seg.iter().zip(logits.as_slice()) {
        let s = s as usize;
        seg_max[s] = seg_max[s].max(l);
    }
    let mut out = Matrix::zeros(m, 1);
    let mut seg_sum = vec![0.0f32; n_seg];
    for e in 0..m {
        let v = (logits.as_slice()[e] - seg_max[seg[e] as usize]).exp();
        out.as_mut_slice()[e] = v;
        seg_sum[seg[e] as usize] += v;
    }
    for (v, &s) in out.as_mut_slice().iter_mut().zip(seg.iter()) {
        *v /= seg_sum[s as usize].max(f32::MIN_POSITIVE);
    }
    out
}

fn edge_aggregate_forward(
    alpha: &Matrix,
    h: &Matrix,
    src: &[u32],
    dst: &[u32],
    n_out: usize,
) -> Matrix {
    let mut out = Matrix::zeros(n_out, h.cols());
    for e in 0..src.len() {
        let a = alpha.as_slice()[e];
        let src_row = h.row(src[e] as usize);
        let cols = out.cols();
        let d = dst[e] as usize;
        let dst_row = &mut out.as_mut_slice()[d * cols..(d + 1) * cols];
        for (o, &v) in dst_row.iter_mut().zip(src_row) {
            *o += a * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_tensor_ops() {
        let tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        assert_eq!(a.matmul(&b).value(), a.value());
        assert_eq!(a.add(&b).value(), a.value().add(&b.value()));
        assert_eq!(a.sum_all().value().as_slice(), &[10.0]);
        assert_eq!(a.mean_all().value().as_slice(), &[2.5]);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = sum((2x)^2) = 4 * sum(x^2); dloss/dx = 8x.
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, -2.0]]));
        let loss = x.scale(2.0).square().sum_all();
        let grads = loss.backward();
        let gx = grads.wrt(&x).unwrap();
        assert!(gx.approx_eq(&Matrix::from_rows(&[&[8.0, -16.0]]), 1e-5));
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // loss = sum(x) + sum(x) → grad = 2.
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[3.0]]));
        let s = x.sum_all();
        let loss = s.add(&s);
        let grads = loss.backward();
        assert_eq!(grads.wrt(&x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn params_receive_gradients() {
        let mut store = ParamStore::new();
        let w = store.insert(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[3.0, 4.0]]));
        let wv = tape.param(&store, w);
        // loss = x · w = 3*1 + 4*2 = 11; dloss/dw = xᵀ.
        let loss = x.matmul(&wv).sum_all();
        assert_eq!(loss.value().as_slice(), &[11.0]);
        loss.backward_into(&mut store);
        assert!(store
            .grad(w)
            .approx_eq(&Matrix::from_rows(&[&[3.0], &[4.0]]), 1e-6));
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let tape = Tape::new();
        let logits = tape.constant(Matrix::column_vector(&[1.0, 2.0, 3.0, -1.0, 0.5]));
        let seg = Rc::new(vec![0u32, 0, 1, 1, 1]);
        let alpha = logits.segment_softmax(&seg).value();
        let s0 = alpha.as_slice()[0] + alpha.as_slice()[1];
        let s1 = alpha.as_slice()[2] + alpha.as_slice()[3] + alpha.as_slice()[4];
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        // Larger logit ⇒ larger weight within a segment.
        assert!(alpha.as_slice()[1] > alpha.as_slice()[0]);
        assert!(alpha.as_slice()[2] > alpha.as_slice()[4]);
    }

    #[test]
    fn edge_aggregate_matches_manual() {
        let tape = Tape::new();
        let h = tape.constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        let alpha = tape.constant(Matrix::column_vector(&[0.5, 2.0]));
        let src = Rc::new(vec![0u32, 2]);
        let dst = Rc::new(vec![1u32, 1]);
        let out = alpha.edge_aggregate(&h, &src, &dst, 3).value();
        // out[1] = 0.5*h[0] + 2*h[2] = [0.5+2, 0+2].
        assert!(out.row(0).iter().all(|&v| v == 0.0));
        assert_eq!(out.row(1), &[2.5, 2.0]);
        assert!(out.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn spmm_gradient_is_transpose_product() {
        let csr =
            Rc::new(Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]).unwrap());
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let loss = x.spmm(&csr).sum_all();
        let grads = loss.backward();
        // d/dx = Aᵀ · 1 = column sums of A = [1, 5].
        assert!(grads
            .wrt(&x)
            .unwrap()
            .approx_eq(&Matrix::from_rows(&[&[1.0], &[5.0]]), 1e-6));
    }

    #[test]
    fn reset_reuses_storage_and_keeps_gradients_exact() {
        let mut store = ParamStore::new();
        let w = store.insert(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let tape = Tape::new();
        let mut grads_seen = Vec::new();
        for _ in 0..3 {
            let x = tape.constant(Matrix::from_rows(&[&[3.0, 4.0]]));
            let wv = tape.param(&store, w);
            let loss = x.matmul(&wv).sum_all();
            loss.backward_into(&mut store);
            grads_seen.push(store.grad(w).clone());
            store.zero_grads();
            drop((x, wv, loss));
            tape.reset();
            assert!(tape.is_empty());
        }
        assert!(grads_seen.iter().all(|g| g == &grads_seen[0]));
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::zeros(2, 2));
        let _ = x.backward();
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn mixing_tapes_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.constant(Matrix::zeros(1, 1));
        let b = t2.constant(Matrix::zeros(1, 1));
        let _ = a.add(&b);
    }
}
