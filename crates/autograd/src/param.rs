//! Trainable-parameter storage shared between tapes and optimizers.

use vgod_tensor::Matrix;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of the parameter (stable for the store's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A single trainable parameter: its value and accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated by the last backward pass (zeroed by
    /// [`ParamStore::zero_grads`], typically once per optimizer step).
    pub grad: Matrix,
}

/// Storage for every trainable parameter of a model.
///
/// A `ParamStore` outlives the per-step [`crate::Tape`]: each forward pass
/// copies parameter values onto a fresh tape via [`crate::Tape::param`], and
/// [`crate::Var::backward_into`] accumulates the resulting gradients back
/// here, where an optimizer (`vgod-nn`) consumes them.
///
/// Every store carries a unique identity so that models using *several*
/// stores on one tape (e.g. a GAN's generator and discriminator) can route
/// gradients selectively: `backward_into(store)` only touches leaves
/// created from that store. (Clones share the identity — a clone is a
/// snapshot of the same logical parameter set.)
#[derive(Clone, Debug)]
pub struct ParamStore {
    id: u64,
    params: Vec<Param>,
}

static STORE_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// An empty store with a fresh identity.
    pub fn new() -> Self {
        Self {
            id: STORE_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            params: Vec::new(),
        }
    }

    /// The store's unique identity (shared by clones).
    pub fn store_id(&self) -> u64 {
        self.id
    }

    /// Register a new parameter with the given initial value.
    pub fn insert(&mut self, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param { value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value of a parameter (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Accumulate `g` into the parameter's gradient.
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zero every gradient (call before each backward pass / optimizer step).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Iterate over `(id, param)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterate mutably over `(id, param)` pairs (used by optimizers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Param)> {
        self.params
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p))
    }

    /// Serialise every parameter value as plain text (one `param r c`
    /// header line followed by one whitespace-separated row per line).
    /// Gradients are not persisted.
    pub fn write_text(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "params {}", self.params.len())?;
        for p in &self.params {
            writeln!(out, "param {} {}", p.value.rows(), p.value.cols())?;
            for r in 0..p.value.rows() {
                let row: Vec<String> = p.value.row(r).iter().map(|v| v.to_string()).collect();
                writeln!(out, "{}", row.join(" "))?;
            }
        }
        Ok(())
    }

    /// Read a store written by [`ParamStore::write_text`].
    pub fn read_text(input: &mut impl std::io::BufRead) -> Result<Self, String> {
        let mut next_line = || -> Result<String, String> {
            let mut line = String::new();
            let n = input.read_line(&mut line).map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("unexpected end of parameter data".to_string());
            }
            Ok(line.trim_end().to_string())
        };
        let header = next_line()?;
        let count: usize = header
            .strip_prefix("params ")
            .ok_or_else(|| format!("bad store header: {header:?}"))?
            .trim()
            .parse()
            .map_err(|e| format!("bad parameter count: {e}"))?;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let header = next_line()?;
            let dims: Vec<&str> = header.split_whitespace().collect();
            let (rows, cols) = match dims.as_slice() {
                ["param", r, c] => (
                    r.parse::<usize>().map_err(|e| format!("bad rows: {e}"))?,
                    c.parse::<usize>().map_err(|e| format!("bad cols: {e}"))?,
                ),
                _ => return Err(format!("bad param header: {header:?}")),
            };
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                let line = next_line()?;
                let values: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
                let values = values.map_err(|e| format!("bad value: {e}"))?;
                if values.len() != cols {
                    return Err(format!(
                        "row {r}: expected {cols} values, got {}",
                        values.len()
                    ));
                }
                m.row_mut(r).copy_from_slice(&values);
            }
            store.insert(m);
        }
        Ok(store)
    }

    /// Global L2 norm of all gradients (useful for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_access() {
        let mut s = ParamStore::new();
        let a = s.insert(Matrix::filled(2, 3, 1.0));
        let b = s.insert(Matrix::filled(1, 1, -2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 7);
        assert_eq!(s.value(a).shape(), (2, 3));
        assert_eq!(s.value(b).as_slice(), &[-2.0]);
        assert!(s.grad(a).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn text_roundtrip_preserves_values() {
        let mut s = ParamStore::new();
        s.insert(Matrix::from_rows(&[&[1.5, -2.25], &[0.0, 1e-7]]));
        s.insert(Matrix::filled(1, 3, std::f32::consts::PI));
        let mut buf = Vec::new();
        s.write_text(&mut buf).unwrap();
        let back = ParamStore::read_text(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        for (id, p) in s.iter() {
            assert_eq!(back.value(id), &p.value);
        }
    }

    #[test]
    fn read_text_rejects_malformed() {
        for bad in [
            "",
            "params x\n",
            "params 1\nparam 2 2\n1 2\n",   // missing row
            "params 1\nparam 1 2\n1 2 3\n", // too many values
            "params 1\nnotparam 1 1\n0\n",
        ] {
            assert!(
                ParamStore::read_text(&mut bad.as_bytes()).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut s = ParamStore::new();
        let a = s.insert(Matrix::zeros(1, 2));
        s.accumulate_grad(a, &Matrix::row_vector(&[1.0, 2.0]));
        s.accumulate_grad(a, &Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(s.grad(a).as_slice(), &[2.0, 4.0]);
        assert!((s.grad_norm() - 20.0f32.sqrt()).abs() < 1e-6);
        s.zero_grads();
        assert_eq!(s.grad(a).as_slice(), &[0.0, 0.0]);
    }
}
