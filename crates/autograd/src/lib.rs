//! # vgod-autograd
//!
//! A tape-based reverse-mode automatic-differentiation engine over
//! [`vgod_tensor::Matrix`] values.
//!
//! The engine is eager: every operation computes its forward value
//! immediately and records a node on a shared [`Tape`]. Calling
//! [`Var::backward`] on a scalar (`1 × 1`) loss walks the tape in reverse,
//! accumulating gradients for every node; [`Var::backward_into`] additionally
//! deposits the gradients of trainable parameters into a [`ParamStore`] so an
//! optimizer can step them.
//!
//! The op set is exactly what graph neural networks need: dense GEMM in all
//! three transpose flavours, sparse message passing (`spmm`), elementwise
//! arithmetic and activations, row broadcasts, reductions, row
//! L2-normalisation, row gathering, per-segment softmax over edge scores and
//! the weighted scatter-add (`edge_aggregate`) that together form a GAT
//! attention head.
//!
//! ```
//! use vgod_autograd::{ParamStore, Tape};
//! use vgod_tensor::Matrix;
//!
//! let mut store = ParamStore::new();
//! let w = store.insert(Matrix::from_rows(&[&[0.5]]));
//!
//! let tape = Tape::new();
//! let x = tape.constant(Matrix::from_rows(&[&[2.0]]));
//! let wv = tape.param(&store, w);
//! let loss = x.matmul(&wv).sum_all(); // loss = 2 * w
//! loss.backward_into(&mut store);
//! assert_eq!(store.grad(w).as_slice(), &[2.0]);
//! ```
//!
//! Every operation's gradient is validated against central finite
//! differences in this crate's test suite (see `tests/grad_check.rs`).

#![warn(missing_docs)]

mod param;
pub mod persist;
mod tape;

pub use param::{Param, ParamId, ParamStore};
pub use tape::{Gradients, Tape, Var};
