//! Tape-mechanics tests beyond per-op gradient checks: DAG fan-out,
//! repeated backward passes, gradient accumulation across steps, and
//! interaction with the parameter store.

use std::rc::Rc;

use vgod_autograd::{ParamStore, Tape};
use vgod_tensor::{Csr, Matrix};

#[test]
fn diamond_dag_accumulates_through_both_paths() {
    // loss = sum(relu(x) + sigmoid(x)) — x fans out into two paths that
    // rejoin; its gradient must be the sum of both branch gradients.
    let tape = Tape::new();
    let x = tape.constant(Matrix::from_rows(&[&[0.5, -0.5]]));
    let a = x.relu();
    let b = x.sigmoid();
    let loss = a.add(&b).sum_all();
    let g = loss.backward();
    let gx = g.wrt(&x).unwrap();
    // d/dx [relu(x) + σ(x)] at 0.5: 1 + σ(0.5)(1−σ(0.5)) ≈ 1.2350.
    let s = 1.0 / (1.0 + (-0.5f32).exp());
    assert!((gx.as_slice()[0] - (1.0 + s * (1.0 - s))).abs() < 1e-4);
    // At −0.5 the relu path is dead: σ'(−0.5) only.
    let s = 1.0 / (1.0 + 0.5f32.exp());
    assert!((gx.as_slice()[1] - s * (1.0 - s)).abs() < 1e-4);
}

#[test]
fn backward_can_run_from_multiple_losses_on_one_tape() {
    let tape = Tape::new();
    let x = tape.constant(Matrix::from_rows(&[&[2.0]]));
    let l1 = x.scale(3.0).sum_all();
    let l2 = x.square().sum_all();
    let g1 = l1.backward();
    let g2 = l2.backward();
    assert_eq!(g1.wrt(&x).unwrap().as_slice(), &[3.0]);
    assert_eq!(g2.wrt(&x).unwrap().as_slice(), &[4.0]);
}

#[test]
fn param_gradients_accumulate_across_backward_calls() {
    let mut store = ParamStore::new();
    let w = store.insert(Matrix::filled(1, 1, 1.0));
    for _ in 0..3 {
        let tape = Tape::new();
        let wv = tape.param(&store, w);
        wv.scale(2.0).sum_all().backward_into(&mut store);
    }
    // Each pass contributes d(2w)/dw = 2 without zeroing in between.
    assert_eq!(store.grad(w).as_slice(), &[6.0]);
    store.zero_grads();
    assert_eq!(store.grad(w).as_slice(), &[0.0]);
}

#[test]
fn same_param_used_twice_in_one_graph_accumulates() {
    let mut store = ParamStore::new();
    let w = store.insert(Matrix::filled(1, 1, 3.0));
    let tape = Tape::new();
    let w1 = tape.param(&store, w);
    let w2 = tape.param(&store, w);
    // loss = w * w (via two separate leaves of the same parameter).
    let loss = w1.mul(&w2).sum_all();
    loss.backward_into(&mut store);
    // d(w²)/dw = 2w = 6, assembled from the two leaves (3 + 3).
    assert_eq!(store.grad(w).as_slice(), &[6.0]);
}

#[test]
fn unreached_nodes_get_no_gradient() {
    let tape = Tape::new();
    let x = tape.constant(Matrix::filled(1, 1, 1.0));
    let unused = tape.constant(Matrix::filled(1, 1, 5.0));
    let loss = x.scale(2.0).sum_all();
    let g = loss.backward();
    assert!(g.wrt(&x).is_some());
    assert!(
        g.wrt(&unused).is_none(),
        "disconnected nodes must not receive gradients"
    );
}

#[test]
fn tape_length_tracks_recorded_ops() {
    let tape = Tape::new();
    assert!(tape.is_empty());
    let x = tape.constant(Matrix::zeros(2, 2));
    assert_eq!(tape.len(), 1);
    let _ = x.relu().sum_all();
    assert_eq!(tape.len(), 3);
}

#[test]
fn long_chain_remains_stable() {
    // 100 chained tanh ops: gradients should flow (vanishing but finite).
    let tape = Tape::new();
    let x = tape.constant(Matrix::filled(1, 4, 0.3));
    let mut h = x.clone();
    for _ in 0..100 {
        h = h.tanh();
    }
    let loss = h.sum_all();
    let g = loss.backward();
    let gx = g.wrt(&x).unwrap();
    assert!(gx.as_slice().iter().all(|v| v.is_finite()));
    assert!(gx.max_abs() < 1.0, "tanh chain gradient should shrink");
}

#[test]
fn mixed_sparse_dense_pipeline_gradient_is_finite() {
    let csr = Rc::new(
        Csr::from_edges(5, 5, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)])
            .unwrap()
            .row_normalized(),
    );
    let mut store = ParamStore::new();
    let mut rng_vals = 0.37f32;
    let w = store.insert(Matrix::from_fn(3, 4, |_, _| {
        rng_vals = (rng_vals * 7.13).fract() - 0.5;
        rng_vals
    }));
    let tape = Tape::new();
    let x = tape.constant(Matrix::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 0.4));
    let wv = tape.param(&store, w);
    let loss = x
        .matmul(&wv)
        .l2_normalize_rows()
        .spmm(&csr)
        .leaky_relu(0.1)
        .square()
        .mean_all();
    loss.backward_into(&mut store);
    assert!(store.grad(w).as_slice().iter().all(|v| v.is_finite()));
    assert!(store.grad_norm() > 0.0);
}

#[test]
fn multi_store_gradients_do_not_cross_contaminate() {
    // Two stores with same-index parameters participating in one loss
    // (the GAN layout): backward_into must route each leaf's gradient to
    // its own store only.
    let mut store_a = ParamStore::new();
    let a = store_a.insert(Matrix::filled(1, 1, 2.0));
    let mut store_b = ParamStore::new();
    let b = store_b.insert(Matrix::filled(1, 1, 5.0));
    assert_ne!(store_a.store_id(), store_b.store_id());

    let tape = Tape::new();
    let av = tape.param(&store_a, a);
    let bv = tape.param(&store_b, b);
    let loss = av.mul(&bv).sum_all(); // d/da = b = 5, d/db = a = 2
    loss.backward_into(&mut store_a);
    loss.backward_into(&mut store_b);
    assert_eq!(store_a.grad(a).as_slice(), &[5.0]);
    assert_eq!(store_b.grad(b).as_slice(), &[2.0]);
}

#[test]
fn gradients_table_is_isolated_per_backward() {
    // Calling backward twice yields identical (not doubled) tables.
    let tape = Tape::new();
    let x = tape.constant(Matrix::filled(1, 1, 2.0));
    let loss = x.square().sum_all();
    let a = loss.backward();
    let b = loss.backward();
    assert_eq!(a.wrt(&x).unwrap().as_slice(), b.wrt(&x).unwrap().as_slice());
}
