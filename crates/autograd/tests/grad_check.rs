//! Numerical gradient checking for every differentiable operation.
//!
//! Each test builds a scalar loss from an input matrix, computes the
//! analytic gradient with the tape, and compares it element-by-element with
//! central finite differences `(f(x+h) − f(x−h)) / 2h`.

use std::rc::Rc;

use vgod_autograd::{Tape, Var};
use vgod_tensor::{Csr, Matrix};

const H: f32 = 1e-3;

/// Compare analytic and numeric gradients of `f` with respect to `x0`.
///
/// `f` must be a pure function of its input (it is re-run many times).
fn check_grad(x0: &Matrix, tol: f32, f: impl Fn(&Tape, &Var) -> Var) {
    let tape = Tape::new();
    let x = tape.constant(x0.clone());
    let loss = f(&tape, &x);
    assert_eq!(loss.shape(), (1, 1), "loss must be scalar");
    let grads = loss.backward();
    let analytic = grads
        .wrt(&x)
        .expect("input should receive a gradient")
        .clone();

    let eval = |m: &Matrix| -> f32 {
        let t = Tape::new();
        let v = t.constant(m.clone());
        f(&t, &v).value().as_slice()[0]
    };

    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.as_mut_slice()[i] += H;
        let mut minus = x0.clone();
        minus.as_mut_slice()[i] -= H;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * H);
        let a = analytic.as_slice()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        assert!(
            (a - numeric).abs() / denom <= tol,
            "grad mismatch at element {i}: analytic {a}, numeric {numeric}"
        );
    }
}

fn test_input(rows: usize, cols: usize) -> Matrix {
    // Deterministic, avoids zeros (ReLU kinks) and tiny rows (norm kinks).
    Matrix::from_fn(rows, cols, |r, c| {
        let v = ((r * 7 + c * 3 + 1) % 11) as f32 * 0.37 - 1.9;
        if v.abs() < 0.15 {
            v + 0.3
        } else {
            v
        }
    })
}

#[test]
fn grad_matmul_left() {
    let b = test_input(3, 4);
    check_grad(&test_input(2, 3), 1e-2, move |t, x| {
        let bv = t.constant(b.clone());
        x.matmul(&bv).square().sum_all()
    });
}

#[test]
fn grad_matmul_right() {
    let a = test_input(2, 3);
    check_grad(&test_input(3, 4), 1e-2, move |t, x| {
        let av = t.constant(a.clone());
        av.matmul(x).square().sum_all()
    });
}

#[test]
fn grad_matmul_tn() {
    let b = test_input(4, 2);
    check_grad(&test_input(4, 3), 1e-2, move |t, x| {
        let bv = t.constant(b.clone());
        x.matmul_tn(&bv).square().sum_all()
    });
}

#[test]
fn grad_matmul_nt() {
    let b = test_input(5, 3);
    check_grad(&test_input(2, 3), 1e-2, move |t, x| {
        let bv = t.constant(b.clone());
        x.matmul_nt(&bv).square().sum_all()
    });
}

#[test]
fn grad_spmm() {
    let csr = Rc::new(
        Csr::from_triplets(
            3,
            3,
            &[
                (0, 1, 1.5),
                (1, 0, -0.5),
                (1, 2, 2.0),
                (2, 2, 1.0),
                (2, 0, 0.7),
            ],
        )
        .unwrap(),
    );
    check_grad(&test_input(3, 2), 1e-2, move |_, x| {
        x.spmm(&csr).square().sum_all()
    });
}

#[test]
fn grad_add_sub_mul() {
    let other = test_input(3, 3);
    check_grad(&test_input(3, 3), 1e-2, move |t, x| {
        let o = t.constant(other.clone());
        x.add(&o).mul(&x.sub(&o)).sum_all()
    });
}

#[test]
fn grad_square_of_shared_input() {
    check_grad(&test_input(2, 2), 1e-2, |_, x| x.square().sum_all());
}

#[test]
fn grad_scale_neg() {
    check_grad(&test_input(2, 3), 1e-2, |_, x| {
        x.scale(2.5).neg().square().sum_all()
    });
}

#[test]
fn grad_add_row_broadcast_base() {
    let row = Matrix::row_vector(&[0.3, -0.8, 1.2]);
    check_grad(&test_input(4, 3), 1e-2, move |t, x| {
        let r = t.constant(row.clone());
        x.add_row_broadcast(&r).square().sum_all()
    });
}

#[test]
fn grad_add_row_broadcast_bias() {
    let base = test_input(4, 3);
    check_grad(&Matrix::row_vector(&[0.3, -0.8, 1.2]), 1e-2, move |t, x| {
        let b = t.constant(base.clone());
        b.add_row_broadcast(x).square().sum_all()
    });
}

#[test]
fn grad_mul_col_broadcast_both_sides() {
    let col = Matrix::column_vector(&[0.5, -1.5, 2.0]);
    check_grad(&test_input(3, 2), 1e-2, move |t, x| {
        let c = t.constant(col.clone());
        x.mul_col_broadcast(&c).square().sum_all()
    });
    let base = test_input(3, 2);
    check_grad(
        &Matrix::column_vector(&[0.5, -1.5, 2.0]),
        1e-2,
        move |t, x| {
            let b = t.constant(base.clone());
            b.mul_col_broadcast(x).square().sum_all()
        },
    );
}

#[test]
fn grad_relu() {
    check_grad(&test_input(3, 3), 1e-2, |_, x| x.relu().square().sum_all());
}

#[test]
fn grad_leaky_relu() {
    check_grad(&test_input(3, 3), 1e-2, |_, x| {
        x.leaky_relu(0.2).square().sum_all()
    });
}

#[test]
fn grad_sigmoid() {
    check_grad(&test_input(3, 3), 1e-2, |_, x| {
        x.sigmoid().square().sum_all()
    });
}

#[test]
fn grad_tanh() {
    check_grad(&test_input(3, 3), 1e-2, |_, x| x.tanh().square().sum_all());
}

#[test]
fn grad_exp() {
    check_grad(&test_input(2, 3), 1e-2, |_, x| x.exp().sum_all());
}

#[test]
fn grad_l2_normalize_rows() {
    // Weighted sum so the gradient is non-trivial (plain sum of a normalised
    // row has near-zero radial component). The weights must differ from the
    // input: at w = x the map x ↦ (x·w)/‖x‖ sits at a stationary point.
    let w = test_input(3, 4).map(|v| 0.6 * v + 0.9);
    check_grad(&test_input(3, 4), 2e-2, move |t, x| {
        let wv = t.constant(w.clone());
        x.l2_normalize_rows().mul(&wv).sum_all()
    });
}

#[test]
fn grad_row_sum() {
    check_grad(&test_input(4, 3), 1e-2, |_, x| {
        x.row_sum().square().sum_all()
    });
}

#[test]
fn grad_mean_all() {
    check_grad(&test_input(3, 5), 1e-2, |_, x| x.square().mean_all());
}

#[test]
fn grad_gather_rows() {
    let idx = Rc::new(vec![2u32, 0, 2, 1]);
    check_grad(&test_input(3, 2), 1e-2, move |_, x| {
        x.gather_rows(&idx).square().sum_all()
    });
}

#[test]
fn grad_segment_softmax() {
    let seg = Rc::new(vec![0u32, 0, 1, 1, 1]);
    let w = Matrix::column_vector(&[1.0, -2.0, 0.5, 3.0, -1.0]);
    check_grad(
        &Matrix::column_vector(&[0.2, -0.4, 1.1, 0.9, -0.7]),
        2e-2,
        move |t, x| {
            let wv = t.constant(w.clone());
            x.segment_softmax(&seg).mul(&wv).sum_all()
        },
    );
}

#[test]
fn grad_edge_aggregate_wrt_alpha() {
    let h = test_input(3, 2);
    let src = Rc::new(vec![0u32, 1, 2, 0]);
    let dst = Rc::new(vec![1u32, 2, 0, 2]);
    check_grad(
        &Matrix::column_vector(&[0.5, -1.0, 2.0, 0.3]),
        1e-2,
        move |t, x| {
            let hv = t.constant(h.clone());
            x.edge_aggregate(&hv, &src, &dst, 3).square().sum_all()
        },
    );
}

#[test]
fn grad_edge_aggregate_wrt_features() {
    let alpha = Matrix::column_vector(&[0.5, -1.0, 2.0, 0.3]);
    let src = Rc::new(vec![0u32, 1, 2, 0]);
    let dst = Rc::new(vec![1u32, 2, 0, 2]);
    check_grad(&test_input(3, 2), 1e-2, move |t, x| {
        let av = t.constant(alpha.clone());
        av.edge_aggregate(x, &src, &dst, 3).square().sum_all()
    });
}

#[test]
fn grad_hcat() {
    let other = test_input(3, 2);
    check_grad(&test_input(3, 4), 1e-2, move |t, x| {
        let o = t.constant(other.clone());
        x.hcat(&o).square().sum_all()
    });
}

#[test]
fn grad_composite_gnn_like_expression() {
    // A realistic composite: spmm → linear → leaky-relu → normalise → variance-ish.
    let csr = Rc::new(
        Csr::from_edges(4, 4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
            .unwrap()
            .row_normalized(),
    );
    let w = test_input(3, 2);
    check_grad(&test_input(4, 3), 2e-2, move |t, x| {
        let wv = t.constant(w.clone());
        let h = x.matmul(&wv).leaky_relu(0.1).l2_normalize_rows();
        let mean = h.spmm(&csr);
        let mean_sq = h.square().spmm(&csr);
        let var = mean_sq.sub(&mean.square());
        var.row_sum().sum_all()
    });
}
