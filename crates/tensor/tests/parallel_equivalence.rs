//! Property tests: every parallelized kernel produces the same result on the
//! worker pool as on the sequential path, and the dispatched SIMD path
//! agrees with the forced-scalar path within the documented contract.
//!
//! Row-disjoint kernels (GEMM, spmm, maps, zips, broadcasts, row reductions,
//! gather, transpose) run the *same* per-row arithmetic under any banding, so
//! they must match **bit-for-bit**. Merge-class kernels (`spmm_t`, `col_sums`,
//! `sum` / `frobenius_norm`, …) combine per-band partials and are only equal
//! up to f32 rounding — see DESIGN.md § Threading model.
//!
//! Across ISAs (scalar vs AVX2) the elementwise kernels, `fused_adam`, `sum`
//! and `sum_sq` are bitwise identical; the FMA kernels (GEMM, SpMM) agree
//! only within float tolerance — see DESIGN.md § SIMD kernel dispatch.
//!
//! The container running CI may expose a single CPU, so each test pins the
//! pool to 4 workers up front; `force_sequential` then toggles the baseline
//! path without disturbing the cached thread count.

use std::sync::Mutex;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vgod_tensor::{simd, threading, Csr, Matrix};

/// `force_sequential` and `simd::force_scalar` are process-global, so no two
/// A/B toggles may interleave across test threads.
static SEQ_LOCK: Mutex<()> = Mutex::new(());

/// Restores the parallel path even if the measured closure panics.
struct SeqGuard;

impl Drop for SeqGuard {
    fn drop(&mut self) {
        threading::force_sequential(false);
    }
}

/// Restores the dispatched SIMD path even if the measured closure panics.
struct SimdGuard;

impl Drop for SimdGuard {
    fn drop(&mut self) {
        simd::force_scalar(false);
    }
}

/// Run `f` once on the sequential path and once on the pooled path.
fn seq_then_par<T>(f: impl Fn() -> T) -> (T, T) {
    let _lock = SEQ_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = threading::set_num_threads(4);
    let _guard = SeqGuard;
    threading::force_sequential(true);
    let seq = f();
    threading::force_sequential(false);
    let par = f();
    (seq, par)
}

/// Run `f` once with the scalar kernels forced and once dispatched (AVX2
/// where the host supports it; otherwise both legs are scalar and the
/// comparison is trivially exact).
fn scalar_then_simd<T>(f: impl Fn() -> T) -> (T, T) {
    let _lock = SEQ_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = SimdGuard;
    simd::force_scalar(true);
    let scalar = f();
    simd::force_scalar(false);
    let dispatched = f();
    (scalar, dispatched)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

/// A random sparse matrix with ~`deg` entries per row.
fn random_csr(rows: usize, cols: usize, deg: usize, rng: &mut StdRng) -> Csr {
    let mut triplets = Vec::new();
    for r in 0..rows {
        for _ in 0..deg {
            let c = rng.gen_range(0..cols as u32);
            triplets.push((r as u32, c, rng.gen_range(0.1f32..1.0)));
        }
    }
    Csr::from_triplets(rows, cols, &triplets).unwrap()
}

fn assert_exact(seq: &Matrix, par: &Matrix) {
    assert_eq!(seq.shape(), par.shape());
    assert_eq!(
        seq.as_slice(),
        par.as_slice(),
        "row-disjoint kernel must be bit-identical across paths"
    );
}

fn assert_close(seq: &[f32], par: &[f32], tol: f32) {
    assert_eq!(seq.len(), par.len());
    for (i, (&a, &b)) in seq.iter().zip(par).enumerate() {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs()),
            "merge-class kernel diverged at {i}: seq {a} vs par {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// GEMM trio — above `GEMM_FLOP_THRESHOLD` (8e6 flops), bit-exact.
    #[test]
    fn gemm_trio_matches(seed in 0u64..1000, m in 210usize..250, k in 210usize..250, n in 210usize..250) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let (s, p) = seq_then_par(|| a.matmul(&b));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.transpose().matmul_tn(&b));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.matmul_nt(&b.transpose()));
        assert_exact(&s, &p);
    }

    /// spmm scatters into disjoint output rows — bit-exact.
    #[test]
    fn spmm_matches(seed in 0u64..1000, n in 1800usize..2200, d in 48usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_csr(n, n, 12, &mut rng);
        let h = random_matrix(n, d, &mut rng);
        let (s, p) = seq_then_par(|| adj.spmm(&h));
        assert_exact(&s, &p);
    }

    /// spmm_t merges per-band partial outputs — equal up to f32 rounding.
    #[test]
    fn spmm_t_partial_merge_matches(seed in 0u64..1000, n in 1800usize..2200, d in 48usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_csr(n, n, 12, &mut rng);
        let h = random_matrix(n, d, &mut rng);
        let (s, p) = seq_then_par(|| adj.spmm_t(&h));
        assert_eq!(s.shape(), p.shape());
        assert_close(s.as_slice(), p.as_slice(), 1e-4);
    }

    /// Elementwise family — row-disjoint, bit-exact.
    #[test]
    fn elementwise_kernels_match(seed in 0u64..1000, r in 380usize..430, c in 380usize..430) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let b = random_matrix(r, c, &mut rng);
        let (s, p) = seq_then_par(|| a.map(|v| v.tanh()));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.zip_map(&b, |x, y| x * y + 0.5 * y));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| {
            let mut out = a.clone();
            out.map_inplace(|v| v * 2.0 - 1.0);
            out.zip_apply(&b, |x, y| *x += 0.25 * y);
            out
        });
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.scale(3.5));
        assert_exact(&s, &p);
    }

    /// Fused 4-way zip (the Adam update) — row-disjoint, bit-exact.
    #[test]
    fn zip_apply3_matches(seed in 0u64..1000, r in 380usize..430, c in 380usize..430) {
        let mut rng = StdRng::seed_from_u64(seed);
        let val = random_matrix(r, c, &mut rng);
        let m0 = random_matrix(r, c, &mut rng);
        let v0 = random_matrix(r, c, &mut rng);
        let g = random_matrix(r, c, &mut rng);
        let (s, p) = seq_then_par(|| {
            let mut value = val.clone();
            let mut m = m0.clone();
            let mut v = v0.clone();
            value.zip_apply3(&mut m, &mut v, &g, |val, mv, vv, gv| {
                *mv = 0.9 * *mv + 0.1 * gv;
                *vv = 0.999 * *vv + 0.001 * gv * gv;
                *val -= 0.01 * *mv / (vv.abs().sqrt() + 1e-8);
            });
            (value, m, v)
        });
        assert_exact(&s.0, &p.0);
        assert_exact(&s.1, &p.1);
        assert_exact(&s.2, &p.2);
    }

    /// Broadcasts and row-indexed kernels — row-disjoint, bit-exact.
    #[test]
    fn broadcast_and_row_kernels_match(seed in 0u64..1000, r in 380usize..430, c in 380usize..430) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let row = random_matrix(1, c, &mut rng);
        let col = random_matrix(r, 1, &mut rng);
        let (s, p) = seq_then_par(|| a.add_row_broadcast(&row));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.mul_row_broadcast(&row));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.mul_col_broadcast(&col));
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| {
            let mut out = a.clone();
            out.par_rows_mut(|i, vals| {
                for v in vals {
                    *v += i as f32;
                }
            });
            out
        });
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.l2_normalize_rows(1e-8));
        assert_exact(&s.0, &p.0);
        assert_exact(&s.1, &p.1);
        let (s, p) = seq_then_par(|| a.div_rows_by(&col.map(|v| v.abs() + 0.5)));
        assert_exact(&s, &p);
    }

    /// Row reductions write disjoint outputs — bit-exact.
    #[test]
    fn row_reductions_match(seed in 0u64..1000, r in 380usize..430, c in 380usize..430) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let (s, p) = seq_then_par(|| a.row_sums());
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.row_sq_norms());
        assert_exact(&s, &p);
    }

    /// Full reductions and col_sums merge per-band partials — f32 rounding.
    #[test]
    fn merge_class_reductions_match(seed in 0u64..1000, r in 380usize..430, c in 380usize..430) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let (s, p) = seq_then_par(|| a.col_sums());
        assert_close(s.as_slice(), p.as_slice(), 1e-4);
        let (s, p) = seq_then_par(|| a.sum());
        assert_close(&[s], &[p], 1e-3);
        let (s, p) = seq_then_par(|| a.frobenius_norm());
        assert_close(&[s], &[p], 1e-4);
        // max_abs is order-independent: exact across paths.
        let (s, p) = seq_then_par(|| a.max_abs());
        assert_eq!(s, p);
    }

    /// Transpose and gather parallelize over output rows — bit-exact.
    #[test]
    fn transpose_and_gather_match(seed in 0u64..1000, r in 380usize..430, c in 380usize..430) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let idx: Vec<u32> = (0..r * 2).map(|_| rng.gen_range(0..r as u32)).collect();
        let (s, p) = seq_then_par(|| a.transpose());
        assert_exact(&s, &p);
        let (s, p) = seq_then_par(|| a.gather_rows(&idx));
        assert_exact(&s, &p);
    }
}

// ---------------------------------------------------------------------------
// Scalar vs dispatched SIMD: one property per dispatched kernel family.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// GEMM trio across ISAs — FMA class, equal within float tolerance.
    #[test]
    fn simd_gemm_trio_close(seed in 0u64..1000, m in 30usize..90, k in 30usize..90, n in 30usize..90) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let (s, d) = scalar_then_simd(|| a.matmul(&b));
        assert_close(s.as_slice(), d.as_slice(), 1e-4);
        let (s, d) = scalar_then_simd(|| a.transpose().matmul_tn(&b));
        assert_close(s.as_slice(), d.as_slice(), 1e-4);
        let (s, d) = scalar_then_simd(|| a.matmul_nt(&b.transpose()));
        assert_close(s.as_slice(), d.as_slice(), 1e-4);
    }

    /// Narrow outputs (n < 8) take the shared scalar kernel on both ISAs —
    /// bit-exact by construction.
    #[test]
    fn simd_narrow_gemm_exact(seed in 0u64..1000, m in 20usize..60, k in 20usize..60, n in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let (s, d) = scalar_then_simd(|| a.matmul(&b));
        assert_exact(&s, &d);
    }

    /// SpMM and its transpose across ISAs — FMA class, float tolerance.
    #[test]
    fn simd_spmm_close(seed in 0u64..1000, n in 150usize..300, d in 9usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_csr(n, n, 8, &mut rng);
        let h = random_matrix(n, d, &mut rng);
        let (s, p) = scalar_then_simd(|| adj.spmm(&h));
        assert_close(s.as_slice(), p.as_slice(), 1e-4);
        let (s, p) = scalar_then_simd(|| adj.spmm_t(&h));
        assert_close(s.as_slice(), p.as_slice(), 1e-4);
    }

    /// Elementwise kernels across ISAs — plain IEEE ops, bit-exact.
    #[test]
    fn simd_elementwise_exact(seed in 0u64..1000, r in 20usize..80, c in 20usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let b = random_matrix(r, c, &mut rng);
        let (s, d) = scalar_then_simd(|| a.add(&b));
        assert_exact(&s, &d);
        let (s, d) = scalar_then_simd(|| a.sub(&b));
        assert_exact(&s, &d);
        let (s, d) = scalar_then_simd(|| a.mul(&b));
        assert_exact(&s, &d);
        let (s, d) = scalar_then_simd(|| a.scale(1.7));
        assert_exact(&s, &d);
        let (s, d) = scalar_then_simd(|| {
            let mut out = a.clone();
            out.add_assign(&b);
            out.add_scaled(-0.3, &b);
            out.scale_inplace(0.8);
            out
        });
        assert_exact(&s, &d);
    }

    /// Lane-structured reductions across ISAs — same 8-lane grouping and
    /// reduction tree on both paths, bit-exact.
    #[test]
    fn simd_reductions_exact(seed in 0u64..1000, r in 20usize..80, c in 20usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(r, c, &mut rng);
        let (s, d) = scalar_then_simd(|| a.sum());
        assert_eq!(s.to_bits(), d.to_bits());
        let (s, d) = scalar_then_simd(|| a.frobenius_norm());
        assert_eq!(s.to_bits(), d.to_bits());
        let (s, d) = scalar_then_simd(|| a.row_sums());
        assert_exact(&s, &d);
        let (s, d) = scalar_then_simd(|| a.row_sq_norms());
        assert_exact(&s, &d);
        let (s, d) = scalar_then_simd(|| a.col_sums());
        assert_exact(&s, &d);
    }

    /// Fused Adam across ISAs — no FMA contraction in either path, bit-exact.
    #[test]
    fn simd_fused_adam_exact(seed in 0u64..1000, r in 20usize..80, c in 20usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p0 = random_matrix(r, c, &mut rng);
        let m0 = random_matrix(r, c, &mut rng);
        let v0 = random_matrix(r, c, &mut rng).map(|v| v.abs());
        let g = random_matrix(r, c, &mut rng);
        let step = vgod_tensor::AdamStep {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bias1: 0.1,
            bias2: 0.001,
        };
        let (s, d) = scalar_then_simd(|| {
            let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
            p.fused_adam_step(&mut m, &mut v, &g, &step);
            (p, m, v)
        });
        assert_exact(&s.0, &d.0);
        assert_exact(&s.1, &d.1);
        assert_exact(&s.2, &d.2);
    }
}
