//! Runtime CPU-feature dispatch for the SIMD micro-kernels.
//!
//! The instruction set used by the kernels in [`crate::kernels`] is resolved
//! **once** per process, the first time any kernel runs:
//!
//! 1. `VGOD_SIMD=scalar` forces the portable 8-wide-unrolled scalar
//!    fallback everywhere (useful on hosts whose AVX2 support is flaky, and
//!    in CI to keep the fallback path green).
//! 2. `VGOD_SIMD=native` (or the variable unset) probes the CPU: on
//!    `x86_64` with AVX2 + FMA the hand-written `std::arch` kernels are
//!    selected; everything else gets the scalar fallback.
//!
//! [`force_scalar`] additionally routes every kernel through the scalar
//! fallback at runtime without touching the cached decision — the same
//! pattern as `threading::force_sequential`, used by the A/B benchmarks
//! (`benches/micro_kernels.rs` → `BENCH_simd.json`) and the
//! scalar-vs-SIMD equivalence proptests.
//!
//! The determinism contract (see `DESIGN.md` § SIMD micro-kernels): within
//! one ISA path every kernel fixes its accumulation order, so results are
//! bit-identical across thread counts, warm/cold arena state and repeated
//! runs. *Across* ISA paths (scalar vs AVX2) results agree only within
//! float tolerance — the FMA kernels skip the intermediate rounding of the
//! scalar multiply-then-add sequence.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Instruction-set back end the kernels dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Portable 8-wide-unrolled scalar kernels (autovectorised by LLVM).
    Scalar,
    /// Hand-written AVX2 + FMA kernels (`x86_64` only).
    Avx2,
}

impl Isa {
    /// Stable lower-case name, as recorded in benchmark JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }
}

static DETECTED: OnceLock<Isa> = OnceLock::new();
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn detect() -> Isa {
    match std::env::var("VGOD_SIMD").as_deref() {
        Ok("scalar") => return Isa::Scalar,
        Ok("native") | Err(_) => {}
        Ok(other) => {
            eprintln!("vgod-tensor: ignoring unknown VGOD_SIMD value {other:?} (expected `scalar` or `native`)");
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2;
        }
    }
    Isa::Scalar
}

/// The ISA the dispatched kernels are currently using.
///
/// Resolved once per process from `VGOD_SIMD` / CPUID (see module docs);
/// [`force_scalar`] temporarily overrides it to [`Isa::Scalar`].
#[inline]
pub fn active_isa() -> Isa {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return Isa::Scalar;
    }
    *DETECTED.get_or_init(detect)
}

/// The ISA detection result, ignoring any [`force_scalar`] override.
pub fn detected_isa() -> Isa {
    *DETECTED.get_or_init(detect)
}

/// Route every kernel through the portable scalar fallback while `on` is
/// set, regardless of the detected ISA. Intended for benchmarks (scalar
/// baselines) and equivalence tests; not a synchronisation point — kernels
/// already running are unaffected.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_overrides_detection() {
        force_scalar(true);
        assert_eq!(active_isa(), Isa::Scalar);
        force_scalar(false);
        // Whatever the host supports, the answer must be stable.
        assert_eq!(active_isa(), active_isa());
        assert!(!Isa::Avx2.name().is_empty() && !Isa::Scalar.name().is_empty());
    }
}
