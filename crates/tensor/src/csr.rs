//! Compressed-sparse-row matrices for graph message passing.

use crate::kernels;
use crate::parallel::{
    for_each_row_band, for_each_row_chunk, row_chunks, threads_for, SPMM_WORK_THRESHOLD,
};
use crate::{Matrix, TensorError};

/// A sparse matrix in compressed-sparse-row format.
///
/// In this workspace a `Csr` is almost always a (possibly normalised)
/// adjacency matrix: `spmm` with a dense feature matrix is the message-
/// passing primitive that GCN/GIN layers and the MeanConv/MinusConv layers
/// of the VGOD paper are built from.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    /// `indptr[r]..indptr[r+1]` is the slice of `indices`/`values` for row `r`.
    indptr: Vec<usize>,
    /// Column index of each stored entry, sorted within each row.
    indices: Vec<u32>,
    /// Value of each stored entry.
    values: Vec<f32>,
}

impl Csr {
    /// Build from `(row, col, value)` triplets. Duplicate coordinates are
    /// summed. Fails if any coordinate is out of bounds.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(u32, u32, f32)],
    ) -> Result<Self, TensorError> {
        for &(r, c, _) in triplets {
            if r as usize >= n_rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: r as usize,
                    bound: n_rows,
                });
            }
            if c as usize >= n_cols {
                return Err(TensorError::IndexOutOfBounds {
                    index: c as usize,
                    bound: n_cols,
                });
            }
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; n_rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Merge duplicates within the current row.
                if last_c == c && indptr[r as usize + 1] == indices.len() {
                    *values
                        .last_mut()
                        .expect("values non-empty when indices non-empty") += v;
                    continue;
                }
            }
            // Close out any skipped rows.
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Make indptr cumulative (rows with no entries inherit the previous offset).
        for r in 1..=n_rows {
            if indptr[r] < indptr[r - 1] {
                indptr[r] = indptr[r - 1];
            }
        }
        Ok(Self {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        })
    }

    /// Build a binary (all-ones) sparse matrix from `(row, col)` edges.
    pub fn from_edges(
        n_rows: usize,
        n_cols: usize,
        edges: &[(u32, u32)],
    ) -> Result<Self, TensorError> {
        let triplets: Vec<(u32, u32, f32)> = edges.iter().map(|&(r, c)| (r, c, 1.0)).collect();
        Self::from_triplets(n_rows, n_cols, &triplets)
    }

    /// Build directly from raw CSR arrays (used by normalisation routines).
    ///
    /// # Panics
    /// Debug-asserts the CSR invariants.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), n_rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        debug_assert!(indices.iter().all(|&c| (c as usize) < n_cols));
        Self {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f32] {
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Iterate over `(row, col, value)` of every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            self.row_indices(r)
                .iter()
                .zip(self.row_values(r))
                .map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Sparse × dense product `self · dense` (`r×c · c×d → r×d`).
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.n_cols,
            dense.rows(),
            "spmm: inner dimension mismatch {}x{} · {:?}",
            self.n_rows,
            self.n_cols,
            dense.shape()
        );
        let d = dense.cols();
        let mut out = Matrix::zeros(self.n_rows, d);
        let threads = threads_for(self.nnz() * d, SPMM_WORK_THRESHOLD);
        // Oversplit (inside for_each_row_band): row cost is proportional to
        // row nnz, which is uneven on real graphs; the pool's claim counter
        // balances the bands.
        let (indptr, indices, values) = (&self.indptr, &self.indices, &self.values);
        let dense_data = dense.as_slice();
        for_each_row_band(out.as_mut_slice(), d, self.n_rows, threads, |s, e, band| {
            kernels::spmm_rows(band, s, e, indptr, indices, values, dense_data, d);
        });
        out
    }

    /// Transposed sparse × dense product `selfᵀ · dense` (`c×r · r×d → c×d`).
    ///
    /// Used by the autograd backward pass of `spmm` — a training hot path.
    /// Unlike [`Csr::spmm`] the scatter here is *not* row-disjoint (many
    /// input rows write the same output row), so the parallel path gives
    /// each input-row band its own `c × d` partial output and merges the
    /// partials in band order afterwards. Deterministic for a fixed thread
    /// count, but a merge-class kernel: only approximately equal to the
    /// sequential accumulation order under f32 rounding (DESIGN.md
    /// § Threading model). Partial buffers cost `threads · c · d` floats,
    /// bounded by the thread cap.
    pub fn spmm_t(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.n_rows,
            dense.rows(),
            "spmm_t: inner dimension mismatch ({}x{})ᵀ · {:?}",
            self.n_rows,
            self.n_cols,
            dense.shape()
        );
        let d = dense.cols();
        let out_len = self.n_cols * d;
        let threads = threads_for(self.nnz() * d, SPMM_WORK_THRESHOLD).min(self.n_rows.max(1));
        if threads <= 1 {
            let mut out = Matrix::zeros(self.n_cols, d);
            self.scatter_rows_into(0, self.n_rows, dense, out.as_mut_slice());
            return out;
        }
        let row_ranges = row_chunks(self.n_rows, threads);
        let mut partials = vec![0.0f32; row_ranges.len() * out_len];
        let unit: Vec<(usize, usize)> = (0..row_ranges.len()).map(|i| (i, i + 1)).collect();
        for_each_row_chunk(&mut partials, out_len, &unit, |b, _, buf| {
            let (rs, re) = row_ranges[b];
            self.scatter_rows_into(rs, re, dense, buf);
        });
        let mut out = Matrix::zeros(self.n_cols, d);
        let out_data = out.as_mut_slice();
        let partials_ref = &partials;
        let merge_threads = threads_for(out_len, SPMM_WORK_THRESHOLD);
        for_each_row_band(out_data, 1, out_len, merge_threads, |s, e, band| {
            for b in 0..row_ranges.len() {
                kernels::add_inplace(band, &partials_ref[b * out_len + s..b * out_len + e]);
            }
        });
        out
    }

    /// Scatter input rows `rs..re` of `selfᵀ · dense` into `out`
    /// (a `n_cols × dense.cols()` row-major buffer).
    fn scatter_rows_into(&self, rs: usize, re: usize, dense: &Matrix, out: &mut [f32]) {
        let d = dense.cols();
        kernels::scatter_rows(
            out,
            rs,
            re,
            &self.indptr,
            &self.indices,
            &self.values,
            dense.as_slice(),
            d,
        );
    }

    /// Explicit transpose as a new CSR matrix.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.n_rows {
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                let pos = cursor[c as usize];
                indices[pos] = r as u32;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
            values,
        }
    }

    /// Row-normalise to mean aggregation: `D⁻¹ · self`, where `D` is the
    /// diagonal of row sums of absolute values of stored entries (rows with
    /// no entries are left zero).
    ///
    /// For a binary adjacency matrix this turns `spmm` into neighbour-mean
    /// aggregation — the MeanConv layer of the VGOD paper (Eq. 7).
    pub fn row_normalized(&self) -> Csr {
        let mut out = self.clone();
        for r in 0..out.n_rows {
            let (s, e) = (out.indptr[r], out.indptr[r + 1]);
            let deg: f32 = out.values[s..e].iter().map(|v| v.abs()).sum();
            if deg > 0.0 {
                let inv = 1.0 / deg;
                for v in &mut out.values[s..e] {
                    *v *= inv;
                }
            }
        }
        out
    }

    /// GCN symmetric normalisation `D^{-1/2} (A + I) D^{-1/2}` (Kipf &
    /// Welling), treating `self` as the adjacency matrix `A`. Requires a
    /// square matrix.
    pub fn gcn_normalized(&self) -> Csr {
        assert_eq!(
            self.n_rows, self.n_cols,
            "gcn_normalized requires a square matrix"
        );
        let with_loops = self.with_self_loops(1.0);
        let mut deg = vec![0.0f32; with_loops.n_rows];
        for (r, d) in deg.iter_mut().enumerate() {
            *d = with_loops.row_values(r).iter().sum();
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = with_loops;
        for r in 0..out.n_rows {
            let (s, e) = (out.indptr[r], out.indptr[r + 1]);
            for k in s..e {
                let c = out.indices[k] as usize;
                out.values[k] *= inv_sqrt[r] * inv_sqrt[c];
            }
        }
        out
    }

    /// Return a copy with `weight` added on the diagonal (self-loop edges).
    /// Requires a square matrix. Existing diagonal entries are incremented.
    pub fn with_self_loops(&self, weight: f32) -> Csr {
        assert_eq!(
            self.n_rows, self.n_cols,
            "with_self_loops requires a square matrix"
        );
        let mut triplets: Vec<(u32, u32, f32)> = self.iter().collect();
        triplets.extend((0..self.n_rows as u32).map(|i| (i, i, weight)));
        Csr::from_triplets(self.n_rows, self.n_cols, &triplets)
            .expect("self-loop triplets are in bounds by construction")
    }

    /// Densify (for tests and tiny examples only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n_rows, self.n_cols);
        for (r, c, v) in self.iter() {
            out[(r as usize, c as usize)] += v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [[0,1,0],[2,0,3],[0,0,4]]
        Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0), (2, 2, 4.0)]).unwrap()
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense(), Matrix::from_rows(&[&[3.5, 0.0], &[0.0, 1.0]]));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        assert!(Csr::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(Csr::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn spmm_matches_dense_product() {
        let s = example();
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let got = s.spmm(&d);
        let expect = s.to_dense().matmul(&d);
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn spmm_t_matches_transposed_product() {
        let s = example();
        let d = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let got = s.spmm_t(&d);
        let expect = s.to_dense().transpose().matmul(&d);
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn large_spmm_t_parallel_path_matches_serial() {
        let _ = crate::pool::set_num_threads(4);
        // Cross the work threshold so the partial-merge parallel path runs.
        let n = 900;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|r| (0..8u32).map(move |k| (r, (r * 37 + k * 131) % n as u32)))
            .collect();
        let s = Csr::from_edges(n, n, &edges).unwrap();
        let d = Matrix::from_fn(n, 600, |r, c| ((r * 13 + c * 7) % 23) as f32 * 0.1 - 1.0);
        assert!(
            s.nnz() * d.cols() >= SPMM_WORK_THRESHOLD,
            "test must cross the threshold"
        );
        let fast = s.spmm_t(&d);
        let reference = s.transpose().spmm(&d);
        assert!(fast.approx_eq(&reference, 1e-3));
    }

    #[test]
    fn transpose_roundtrip() {
        let s = example();
        assert_eq!(s.transpose().transpose(), s);
        assert!(s
            .transpose()
            .to_dense()
            .approx_eq(&s.to_dense().transpose(), 1e-6));
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let s = example().row_normalized();
        for r in 0..s.n_rows() {
            let sum: f32 = s.row_values(r).iter().sum();
            if s.row_nnz(r) > 0 {
                assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
            }
        }
    }

    #[test]
    fn empty_rows_are_preserved() {
        let s = Csr::from_triplets(4, 4, &[(0, 1, 1.0), (3, 0, 1.0)]).unwrap();
        assert_eq!(s.row_nnz(1), 0);
        assert_eq!(s.row_nnz(2), 0);
        let d = Matrix::filled(4, 2, 1.0);
        let out = s.spmm(&d);
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn gcn_normalization_matches_formula() {
        // Path graph 0-1-2.
        let a = Csr::from_edges(3, 3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let norm = a.gcn_normalized();
        // With self loops degrees are [2,3,2]; check the (0,1) entry = 1/sqrt(2*3).
        let dense = norm.to_dense();
        assert!((dense[(0, 1)] - 1.0 / 6.0f32.sqrt()).abs() < 1e-6);
        assert!((dense[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((dense[(1, 1)] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn self_loops_increment_diagonal() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let b = a.with_self_loops(2.0);
        assert_eq!(b.to_dense(), Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn triplet_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
            proptest::collection::vec((0..n as u32, 0..n as u32, -5.0f32..5.0), 0..(n * n).min(40))
        }

        proptest! {
            #[test]
            fn spmm_always_matches_dense(n in 1usize..8, d in 1usize..5, t in triplet_strategy(7)) {
                let t: Vec<_> = t.into_iter().filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n).collect();
                let s = Csr::from_triplets(n, n, &t).unwrap();
                let x = Matrix::from_fn(n, d, |r, c| (r as f32 - 1.0) * (c as f32 + 0.5));
                let got = s.spmm(&x);
                let expect = s.to_dense().matmul(&x);
                prop_assert!(got.approx_eq(&expect, 1e-3));
            }

            #[test]
            fn indptr_is_monotone(n in 1usize..8, t in triplet_strategy(7)) {
                let t: Vec<_> = t.into_iter().filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n).collect();
                let s = Csr::from_triplets(n, n, &t).unwrap();
                for r in 0..n {
                    prop_assert!(s.indptr[r] <= s.indptr[r + 1]);
                    // Column indices sorted within each row.
                    let idx = s.row_indices(r);
                    prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
                }
            }

            #[test]
            fn transpose_preserves_nnz(n in 1usize..8, t in triplet_strategy(7)) {
                let t: Vec<_> = t.into_iter().filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n).collect();
                let s = Csr::from_triplets(n, n, &t).unwrap();
                prop_assert_eq!(s.transpose().nnz(), s.nnz());
            }
        }
    }
}
