//! Dense row-major `f32` matrix.

use crate::kernels;
use crate::parallel::{
    for_each_chunk3, for_each_row_band, for_each_row_chunk, row_chunks, threads_for,
    ELEMWISE_THRESHOLD, GEMM_FLOP_THRESHOLD,
};
use crate::{AdamStep, TensorError};

/// Thread count for a streaming elementwise kernel over `len` elements.
fn elem_threads(len: usize) -> usize {
    threads_for(len, ELEMWISE_THRESHOLD)
}

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the workhorse value type of the whole workspace: node
/// attribute matrices, hidden representations, weights and gradients are all
/// `Matrix` values. A vector is represented as an `n × 1` (column) or
/// `1 × d` (row) matrix.
///
/// Storage is allocated through the thread-local [`crate::arena`]: inside an
/// [`crate::arena::scope`], dropped matrices donate their buffers to a free
/// list and new matrices of the same size reuse them. Recycled buffers are
/// always fully overwritten before reuse, so results never depend on whether
/// a buffer was fresh or recycled.
#[derive(PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: crate::arena::alloc_copy(&self.data),
        }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        crate::arena::release(std::mem::take(&mut self.data));
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// An all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: crate::arena::alloc_zeroed(rows * cols),
        }
    }

    /// A matrix of the given shape with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: crate::arena::alloc_filled(rows * cols, value),
        }
    }

    /// Build from a flat row-major buffer. Fails if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from row slices (all rows must have equal length).
    ///
    /// # Panics
    /// Panics if rows have differing lengths. Intended for tests and small
    /// literals; use [`Matrix::from_vec`] for data paths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build element-by-element from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 × d` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An `n × 1` column vector.
    pub fn column_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // Shape & access
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major mutable view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat row-major buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Banded elementwise combination through a dispatched SIMD kernel.
    fn zip_kernel(
        &self,
        other: &Matrix,
        op: &str,
        kernel: fn(&mut [f32], &[f32], &[f32]),
    ) -> Matrix {
        self.assert_same_shape(other, op);
        let mut data = crate::arena::alloc_zeroed(self.data.len());
        let (a, b) = (&self.data, &other.data);
        for_each_row_band(
            &mut data,
            1,
            a.len(),
            elem_threads(a.len()),
            |s, e, band| {
                kernel(band, &a[s..e], &b[s..e]);
            },
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_kernel(other, "add", kernels::zip_add)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_kernel(other, "sub", kernels::zip_sub)
    }

    /// Hadamard (elementwise) product `self ∘ other`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip_kernel(other, "mul", kernels::zip_mul)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        let b = &other.data;
        for_each_row_band(
            &mut self.data,
            1,
            b.len(),
            elem_threads(b.len()),
            |s, e, band| {
                kernels::add_inplace(band, &b[s..e]);
            },
        );
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        self.assert_same_shape(other, "add_scaled");
        let b = &other.data;
        for_each_row_band(
            &mut self.data,
            1,
            b.len(),
            elem_threads(b.len()),
            |s, e, band| {
                kernels::axpy(band, alpha, &b[s..e]);
            },
        );
    }

    /// Scalar product `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let mut data = crate::arena::alloc_zeroed(self.data.len());
        let src = &self.data;
        for_each_row_band(
            &mut data,
            1,
            src.len(),
            elem_threads(src.len()),
            |s, e, band| {
                kernels::scale(band, &src[s..e], alpha);
            },
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scalar product.
    pub fn scale_inplace(&mut self, alpha: f32) {
        let len = self.data.len();
        for_each_row_band(&mut self.data, 1, len, elem_threads(len), |_, _, band| {
            kernels::scale_inplace(band, alpha);
        });
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Apply `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut data = crate::arena::alloc_zeroed(self.data.len());
        let src = &self.data;
        for_each_row_band(
            &mut data,
            1,
            src.len(),
            elem_threads(src.len()),
            |s, e, band| {
                for (d, &v) in band.iter_mut().zip(&src[s..e]) {
                    *d = f(v);
                }
            },
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let len = self.data.len();
        for_each_row_band(&mut self.data, 1, len, elem_threads(len), |_, _, band| {
            for v in band.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Combine with `other` elementwise into a new matrix:
    /// `out[i] = f(self[i], other[i])`.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        let mut data = crate::arena::alloc_zeroed(self.data.len());
        let (a, b) = (&self.data, &other.data);
        for_each_row_band(
            &mut data,
            1,
            a.len(),
            elem_threads(a.len()),
            |s, e, band| {
                for ((d, &x), &y) in band.iter_mut().zip(&a[s..e]).zip(&b[s..e]) {
                    *d = f(x, y);
                }
            },
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Update every element in place from the matching element of `other`:
    /// `f(&mut self[i], other[i])`.
    pub fn zip_apply(&mut self, other: &Matrix, f: impl Fn(&mut f32, f32) + Sync) {
        self.assert_same_shape(other, "zip_apply");
        let b = &other.data;
        for_each_row_band(
            &mut self.data,
            1,
            b.len(),
            elem_threads(b.len()),
            |s, e, band| {
                for (a, &y) in band.iter_mut().zip(&b[s..e]) {
                    f(a, y);
                }
            },
        );
    }

    /// Fused elementwise update over three mutable matrices and one source:
    /// `f(&mut self[i], &mut b[i], &mut c[i], src[i])` for every element, in
    /// one memory pass. This is the shape of an optimizer step (parameter +
    /// first/second moment buffers updated from the gradient); fusing the
    /// pass matters because these kernels are purely memory-bound.
    pub fn zip_apply3(
        &mut self,
        b: &mut Matrix,
        c: &mut Matrix,
        src: &Matrix,
        f: impl Fn(&mut f32, &mut f32, &mut f32, f32) + Sync,
    ) {
        self.assert_same_shape(b, "zip_apply3");
        self.assert_same_shape(c, "zip_apply3");
        self.assert_same_shape(src, "zip_apply3");
        let len = self.data.len();
        let g = &src.data;
        for_each_chunk3(
            &mut self.data,
            &mut b.data,
            &mut c.data,
            elem_threads(len),
            |s, ca, cb, cc| {
                for (((a, bb), cv), &gv) in ca
                    .iter_mut()
                    .zip(cb.iter_mut())
                    .zip(cc.iter_mut())
                    .zip(&g[s..])
                {
                    f(a, bb, cv, gv);
                }
            },
        );
    }

    /// Fused Adam update through the dispatched SIMD kernel: `self` is the
    /// parameter, `m`/`v` the first/second moment buffers, `g` the gradient.
    /// One memory pass over all four buffers; bitwise identical across ISA
    /// paths (the kernel deliberately avoids FMA contraction).
    pub fn fused_adam_step(&mut self, m: &mut Matrix, v: &mut Matrix, g: &Matrix, step: &AdamStep) {
        self.assert_same_shape(m, "fused_adam_step");
        self.assert_same_shape(v, "fused_adam_step");
        self.assert_same_shape(g, "fused_adam_step");
        let len = self.data.len();
        let grad = &g.data;
        let step = *step;
        for_each_chunk3(
            &mut self.data,
            &mut m.data,
            &mut v.data,
            elem_threads(len),
            |s, cp, cm, cv| {
                kernels::fused_adam(cp, cm, cv, &grad[s..s + cp.len()], &step);
            },
        );
    }

    /// Run `f` over every row (with its row index), rows distributed across
    /// the worker pool when the matrix is large enough.
    pub fn par_rows_mut(&mut self, f: impl Fn(usize, &mut [f32]) + Sync) {
        let threads = threads_for(self.data.len(), ELEMWISE_THRESHOLD);
        let (rows, cols) = (self.rows, self.cols);
        for_each_row_band(&mut self.data, cols, rows, threads, |s, e, band| {
            for (local, r) in (s..e).enumerate() {
                f(r, &mut band[local * cols..(local + 1) * cols]);
            }
        });
    }

    // ------------------------------------------------------------------
    // Broadcasts
    // ------------------------------------------------------------------

    /// Add a `1 × cols` row vector to every row (bias addition).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(
            row.rows, 1,
            "add_row_broadcast: rhs must be a 1×d row vector"
        );
        assert_eq!(row.cols, self.cols, "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        let src = &row.data;
        out.par_rows_mut(|_, dst| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        });
        out
    }

    /// Multiply every row elementwise by a `1 × cols` row vector.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(
            row.rows, 1,
            "mul_row_broadcast: rhs must be a 1×d row vector"
        );
        assert_eq!(row.cols, self.cols, "mul_row_broadcast: column mismatch");
        let mut out = self.clone();
        let src = &row.data;
        out.par_rows_mut(|_, dst| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d *= s;
            }
        });
        out
    }

    /// Multiply every element of row `r` by `col[r]`, where `col` is `n × 1`.
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(
            col.cols, 1,
            "mul_col_broadcast: rhs must be an n×1 column vector"
        );
        assert_eq!(col.rows, self.rows, "mul_col_broadcast: row mismatch");
        let mut out = self.clone();
        let scales = &col.data;
        out.par_rows_mut(|r, dst| {
            let s = scales[r];
            for d in dst {
                *d *= s;
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Fold the flat data in parallel: `fold` reduces one contiguous chunk,
    /// `merge` combines the per-chunk partials (in chunk order, starting
    /// from `init`). The merge order is deterministic for a fixed thread
    /// count, but grouping differs from the sequential fold, so results are
    /// only approximately equal to sequential under f32 rounding (see
    /// DESIGN.md § Threading model).
    fn fold_elem_chunks(
        &self,
        init: f32,
        fold: impl Fn(&[f32]) -> f32 + Sync,
        merge: impl Fn(f32, f32) -> f32,
    ) -> f32 {
        let threads = elem_threads(self.data.len());
        if threads <= 1 {
            return merge(init, fold(&self.data));
        }
        let ranges = row_chunks(self.data.len(), threads);
        let mut partials = vec![0.0f32; ranges.len()];
        let src = &self.data;
        let unit: Vec<(usize, usize)> = (0..ranges.len()).map(|i| (i, i + 1)).collect();
        for_each_row_chunk(&mut partials, 1, &unit, |b, _, buf| {
            let (s, e) = ranges[b];
            buf[0] = fold(&src[s..e]);
        });
        partials.into_iter().fold(init, merge)
    }

    /// Sum of all elements (8-lane kernel, fixed reduction tree).
    pub fn sum(&self) -> f32 {
        self.fold_elem_chunks(0.0, kernels::sum, |a, b| a + b)
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Per-row sums as an `n × 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        let threads = threads_for(self.data.len(), ELEMWISE_THRESHOLD);
        let src = &self.data;
        let (rows, cols) = (self.rows, self.cols);
        for_each_row_band(&mut out.data, 1, rows, threads, |s, e, band| {
            for (local, r) in (s..e).enumerate() {
                band[local] = kernels::sum(&src[r * cols..(r + 1) * cols]);
            }
        });
        out
    }

    /// Per-row means as an `n × 1` column vector.
    pub fn row_means(&self) -> Matrix {
        let mut out = self.row_sums();
        if self.cols > 0 {
            out.scale_inplace(1.0 / self.cols as f32);
        }
        out
    }

    /// Per-column sums as a `1 × d` row vector.
    ///
    /// Columns are a merge-class reduction (every row touches every output
    /// element): row bands accumulate into per-band partial rows, merged in
    /// band order afterwards. Deterministic, but only approximately equal to
    /// the sequential accumulation order under f32 rounding.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        let threads = threads_for(self.data.len(), ELEMWISE_THRESHOLD).min(self.rows.max(1));
        if threads <= 1 {
            for r in 0..self.rows {
                kernels::add_inplace(&mut out.data, self.row(r));
            }
            return out;
        }
        let row_ranges = row_chunks(self.rows, threads);
        let mut partials = vec![0.0f32; row_ranges.len() * self.cols];
        let src = &self.data;
        let cols = self.cols;
        let unit: Vec<(usize, usize)> = (0..row_ranges.len()).map(|i| (i, i + 1)).collect();
        for_each_row_chunk(&mut partials, cols, &unit, |b, _, buf| {
            let (rs, re) = row_ranges[b];
            for r in rs..re {
                kernels::add_inplace(buf, &src[r * cols..(r + 1) * cols]);
            }
        });
        for band in partials.chunks_exact(cols.max(1)) {
            kernels::add_inplace(&mut out.data, band);
        }
        out
    }

    /// Squared L2 norm of each row, as an `n × 1` column vector.
    pub fn row_sq_norms(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        let threads = threads_for(self.data.len(), ELEMWISE_THRESHOLD);
        let src = &self.data;
        let (rows, cols) = (self.rows, self.cols);
        for_each_row_band(&mut out.data, 1, rows, threads, |s, e, band| {
            for (local, r) in (s..e).enumerate() {
                band[local] = kernels::sum_sq(&src[r * cols..(r + 1) * cols]);
            }
        });
        out
    }

    /// L2 norm of each row, as an `n × 1` column vector.
    pub fn row_norms(&self) -> Matrix {
        let mut out = self.row_sq_norms();
        out.map_inplace(f32::sqrt);
        out
    }

    /// Frobenius norm of the whole matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.fold_elem_chunks(0.0, kernels::sum_sq, |a, b| a + b)
            .sqrt()
    }

    /// Largest absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.fold_elem_chunks(
            0.0,
            |chunk| chunk.iter().fold(0.0f32, |m, v| m.max(v.abs())),
            f32::max,
        )
    }

    // ------------------------------------------------------------------
    // Row normalisation
    // ------------------------------------------------------------------

    /// L2-normalise every row: `h_i = ĥ_i / (‖ĥ_i‖₂ + eps)`.
    ///
    /// Returns the normalised matrix together with the per-row divisors
    /// (`‖ĥ_i‖₂ + eps`, as an `n × 1` vector) — the autograd layer needs the
    /// divisors to compute the backward pass.
    pub fn l2_normalize_rows(&self, eps: f32) -> (Matrix, Matrix) {
        let mut norms = self.row_norms();
        norms.map_inplace(move |v| v + eps);
        let mut out = self.clone();
        let divisors = &norms.data;
        out.par_rows_mut(|r, row| {
            let inv = 1.0 / divisors[r];
            for v in row {
                *v *= inv;
            }
        });
        (out, norms)
    }

    /// Divide every element of row `r` by `row_sums[r]` (for mean
    /// aggregation); rows with zero divisor are left unchanged.
    pub fn div_rows_by(&self, divisors: &Matrix) -> Matrix {
        assert_eq!(divisors.cols, 1, "div_rows_by: divisors must be n×1");
        assert_eq!(divisors.rows, self.rows, "div_rows_by: row mismatch");
        let mut out = self.clone();
        let divs = &divisors.data;
        out.par_rows_mut(|r, row| {
            let d = divs[r];
            if d != 0.0 {
                let inv = 1.0 / d;
                for v in row {
                    *v *= inv;
                }
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // GEMM
    // ------------------------------------------------------------------

    /// Dense matrix product `self · other` (`m×k · k×n → m×n`).
    ///
    /// B is packed once into `NR`-wide column panels (arena-recycled
    /// buffer); row bands then run the register-tiled, cache-blocked
    /// micro-kernel against the shared read-only panels.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul: inner dimension mismatch {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let threads = threads_for(m * k * n, GEMM_FLOP_THRESHOLD);
        let mut bp = crate::arena::alloc_zeroed(kernels::packed_len(k, n));
        kernels::pack_b(&mut bp, &other.data, k, n);
        let a = &self.data;
        let bp_ref = &bp;
        for_each_row_band(&mut out.data, n, m, threads, |s, e, band| {
            kernels::gemm_nn(band, &a[s * k..e * k], bp_ref, e - s, k, n);
        });
        crate::arena::release(bp);
        out
    }

    /// Transposed-left product `selfᵀ · other` (`(k×m)ᵀ · k×n → m×n`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn: leading dimension mismatch {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        // Transpose A once (an exact, parallel elementwise copy) and reuse
        // the packed NN micro-kernel: a k×m transpose is cheap next to the
        // m·k·n product, and it keeps a single GEMM accumulation order for
        // both flavours.
        self.transpose().matmul(other)
    }

    /// Transposed-right product `self · otherᵀ` (`m×k · (n×k)ᵀ → m×n`).
    ///
    /// Both operands are already row-major over `k`, so this runs the
    /// dot-product micro-kernel directly — no packing needed.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt: trailing dimension mismatch {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        let threads = threads_for(m * k * n, GEMM_FLOP_THRESHOLD);
        let a = &self.data;
        let b = &other.data;
        for_each_row_band(&mut out.data, n, m, threads, |s, e, band| {
            kernels::gemm_nt(band, &a[s * k..e * k], b, e - s, k, n);
        });
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let (rows, cols) = (self.rows, self.cols);
        let src = &self.data;
        // Parallel over *output* rows (= input columns): each band gathers
        // its columns from the source, which is only read.
        let threads = threads_for(src.len(), ELEMWISE_THRESHOLD);
        for_each_row_band(&mut out.data, rows, cols, threads, |s, e, band| {
            for (local, c) in (s..e).enumerate() {
                let out_row = &mut band[local * rows..(local + 1) * rows];
                for (r, o) in out_row.iter_mut().enumerate() {
                    *o = src[r * cols + c];
                }
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Row gather / scatter & concatenation
    // ------------------------------------------------------------------

    /// Gather rows by index: `out[e, :] = self[idx[e], :]`.
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        let cols = self.cols;
        let src = &self.data;
        let rows = self.rows;
        let threads = threads_for(idx.len() * cols, ELEMWISE_THRESHOLD);
        for_each_row_band(&mut out.data, cols, idx.len(), threads, |s, e, band| {
            for (local, &i) in idx[s..e].iter().enumerate() {
                let i = i as usize;
                debug_assert!(i < rows, "gather_rows index out of bounds");
                band[local * cols..(local + 1) * cols]
                    .copy_from_slice(&src[i * cols..(i + 1) * cols]);
            }
        });
        out
    }

    /// Scatter-add rows: `self[idx[e], :] += src[e, :]`.
    pub fn scatter_add_rows(&mut self, idx: &[u32], src: &Matrix) {
        assert_eq!(
            idx.len(),
            src.rows,
            "scatter_add_rows: index/source mismatch"
        );
        assert_eq!(self.cols, src.cols, "scatter_add_rows: column mismatch");
        for (e, &i) in idx.iter().enumerate() {
            let i = i as usize;
            debug_assert!(i < self.rows, "scatter_add_rows index out of bounds");
            let cols = self.cols;
            let dst = &mut self.data[i * cols..(i + 1) * cols];
            for (d, s) in dst.iter_mut().zip(src.row(e)) {
                *d += s;
            }
        }
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat: column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    // ------------------------------------------------------------------
    // Test helpers
    // ------------------------------------------------------------------

    /// Whether every element differs from `other`'s by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol || (a - b).abs() <= tol * a.abs().max(b.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.25);
        let expect = naive_matmul(&a.transpose(), &b);
        assert!(a.matmul_tn(&b).approx_eq(&expect, 1e-5));
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.7);
        let b = Matrix::from_fn(6, 3, |r, c| (r * c) as f32 * 0.1 + 1.0);
        let expect = naive_matmul(&a, &b.transpose());
        assert!(a.matmul_nt(&b).approx_eq(&expect, 1e-5));
    }

    #[test]
    fn large_matmul_parallel_path_matches_naive() {
        let _ = crate::pool::set_num_threads(4);
        // Big enough to cross GEMM_FLOP_THRESHOLD (200*200*200 = 8e6).
        let a = Matrix::from_fn(200, 200, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(200, 200, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let got = a.matmul(&b);
        let expect = naive_matmul(&a, &b);
        assert!(got.approx_eq(&expect, 1e-3));
    }

    #[test]
    fn zip_apply3_fused_update_matches_separate_passes() {
        let mut p = Matrix::from_fn(10, 8, |r, c| (r + c) as f32 * 0.1);
        let mut m = Matrix::filled(10, 8, 0.5);
        let mut v = Matrix::filled(10, 8, 0.25);
        let g = Matrix::from_fn(10, 8, |r, c| (r as f32 - c as f32) * 0.2);
        let (expect_p, expect_m, expect_v) = {
            let mut m2 = m.clone();
            let mut v2 = v.clone();
            let mut p2 = p.clone();
            m2.scale_inplace(0.9);
            m2.add_scaled(0.1, &g);
            let g_sq = g.mul(&g);
            v2.scale_inplace(0.99);
            v2.add_scaled(0.01, &g_sq);
            let step = m2.zip_map(&v2, |mv, vv| mv / (vv.sqrt() + 1e-8));
            p2.add_scaled(-0.05, &step);
            (p2, m2, v2)
        };
        p.zip_apply3(&mut m, &mut v, &g, |pv, mv, vv, gv| {
            *mv = 0.9 * *mv + 0.1 * gv;
            *vv = 0.99 * *vv + 0.01 * gv * gv;
            *pv -= 0.05 * *mv / (vv.sqrt() + 1e-8);
        });
        assert!(p.approx_eq(&expect_p, 1e-6));
        assert!(m.approx_eq(&expect_m, 1e-6));
        assert!(v.approx_eq(&expect_v, 1e-6));
    }

    #[test]
    fn par_rows_mut_sees_global_row_indices() {
        let _ = crate::pool::set_num_threads(4);
        let mut a = Matrix::zeros(400, 350); // 140k elements: above ELEMWISE_THRESHOLD
        a.par_rows_mut(|r, row| {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 350 + c) as f32;
            }
        });
        for (i, v) in a.as_slice().iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn fused_adam_step_matches_zip_apply3_closure() {
        let (lr, beta1, beta2, eps) = (0.05f32, 0.9f32, 0.99f32, 1e-8f32);
        let (bias1, bias2) = (1.0 - beta1 * beta1, 1.0 - beta2 * beta2);
        let mut p = Matrix::from_fn(17, 9, |r, c| (r + c) as f32 * 0.1 - 1.0);
        let mut m = Matrix::from_fn(17, 9, |r, c| (r as f32 - c as f32) * 0.05);
        let mut v = Matrix::from_fn(17, 9, |r, c| ((r * c) % 7) as f32 * 0.02);
        let g = Matrix::from_fn(17, 9, |r, c| ((r * 3 + c * 5) % 11) as f32 * 0.3 - 1.5);
        let (mut p2, mut m2, mut v2) = (p.clone(), m.clone(), v.clone());
        p2.zip_apply3(&mut m2, &mut v2, &g, |pv, mv, vv, gv| {
            *mv = beta1 * *mv + (1.0 - beta1) * gv;
            *vv = beta2 * *vv + (1.0 - beta2) * gv * gv;
            let m_hat = *mv / bias1;
            let v_hat = *vv / bias2;
            *pv -= lr * m_hat / (v_hat.sqrt() + eps);
        });
        let step = AdamStep {
            lr,
            beta1,
            beta2,
            eps,
            bias1,
            bias2,
        };
        let mut legs = Vec::new();
        for forced in [true, false] {
            let (mut pk, mut mk, mut vk) = (p.clone(), m.clone(), v.clone());
            crate::simd::force_scalar(forced);
            pk.fused_adam_step(&mut mk, &mut vk, &g, &step);
            crate::simd::force_scalar(false);
            // The moment recurrences share the closure's operation order
            // exactly; the parameter update folds the bias-correction
            // divisions into reciprocal multiplies, so it only agrees with
            // the closure to a few ulp.
            assert_eq!(mk.as_slice(), m2.as_slice(), "forced={forced}");
            assert_eq!(vk.as_slice(), v2.as_slice(), "forced={forced}");
            for (i, (a, b)) in pk.as_slice().iter().zip(p2.as_slice()).enumerate() {
                let tol = 1e-5 * b.abs().max(1.0);
                assert!((a - b).abs() <= tol, "forced={forced} elem {i}: {a} vs {b}");
            }
            legs.push(pk);
        }
        // …but the scalar and dispatched kernels must agree bitwise.
        assert_eq!(legs[0].as_slice(), legs[1].as_slice());
        p.fused_adam_step(&mut m, &mut v, &g, &step);
        assert_eq!(p.as_slice(), legs[1].as_slice());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[1.0, -1.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[1.5, -1.5], &[4.0, 3.0]]));
        assert_eq!(a.sub(&b), Matrix::from_rows(&[&[0.5, -2.5], &[2.0, 5.0]]));
        assert_eq!(a.mul(&b), Matrix::from_rows(&[&[0.5, -1.0], &[3.0, -4.0]]));
        assert_eq!(
            a.scale(2.0),
            Matrix::from_rows(&[&[2.0, -4.0], &[6.0, 8.0]])
        );
    }

    #[test]
    fn broadcasts() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(
            a.add_row_broadcast(&row),
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
        assert_eq!(
            a.mul_row_broadcast(&row),
            Matrix::from_rows(&[&[10.0, 40.0], &[30.0, 80.0]])
        );
        let col = Matrix::column_vector(&[2.0, 0.5]);
        assert_eq!(
            a.mul_col_broadcast(&col),
            Matrix::from_rows(&[&[2.0, 4.0], &[1.5, 2.0]])
        );
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.row_sums(), Matrix::column_vector(&[3.0, 7.0]));
        assert_eq!(a.col_sums(), Matrix::row_vector(&[4.0, 6.0]));
        assert_eq!(a.row_sq_norms(), Matrix::column_vector(&[5.0, 25.0]));
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l2_row_normalisation_yields_unit_rows() {
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[1.0, 0.0]]);
        let (n, norms) = a.l2_normalize_rows(1e-8);
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero row stays (near) zero instead of dividing by zero.
        assert!(n.row(1).iter().all(|v| v.abs() < 1e-6));
        assert!((norms.as_slice()[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let idx = [2u32, 0, 2];
        let g = a.gather_rows(&idx);
        assert_eq!(
            g,
            Matrix::from_rows(&[&[5.0, 6.0], &[1.0, 2.0], &[5.0, 6.0]])
        );
        let mut out = Matrix::zeros(3, 2);
        out.scatter_add_rows(&idx, &g);
        // Row 2 receives itself twice, row 0 once, row 1 nothing.
        assert_eq!(
            out,
            Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 0.0], &[10.0, 12.0]])
        );
    }

    #[test]
    fn concatenation() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.hcat(&b), Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(
            a.vcat(&b),
            Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]])
        );
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
            (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
                proptest::collection::vec(-10.0f32..10.0, r * c)
                    .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
            })
        }

        proptest! {
            #[test]
            fn matmul_matches_naive(
                m in 1usize..6, k in 1usize..6, n in 1usize..6,
                seed in 0u64..1000
            ) {
                let a = Matrix::from_fn(m, k, |r, c| ((seed as usize + r * 13 + c * 7) % 17) as f32 - 8.0);
                let b = Matrix::from_fn(k, n, |r, c| ((seed as usize + r * 5 + c * 11) % 19) as f32 - 9.0);
                let got = a.matmul(&b);
                let expect = naive_matmul(&a, &b);
                prop_assert!(got.approx_eq(&expect, 1e-4));
            }

            #[test]
            fn add_commutes(a in small_matrix(5)) {
                let b = a.map(|v| v * 0.5 - 1.0);
                prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
            }

            #[test]
            fn transpose_respects_matmul(m in 1usize..5, k in 1usize..5, n in 1usize..5) {
                let a = Matrix::from_fn(m, k, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5));
                let b = Matrix::from_fn(k, n, |r, c| (r as f32 - 2.0) * (c as f32 + 0.5));
                // (AB)ᵀ = BᵀAᵀ
                let lhs = a.matmul(&b).transpose();
                let rhs = b.transpose().matmul(&a.transpose());
                prop_assert!(lhs.approx_eq(&rhs, 1e-4));
            }

            #[test]
            fn row_norms_match_manual(a in small_matrix(6)) {
                let norms = a.row_norms();
                for r in 0..a.rows() {
                    let manual: f32 = a.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                    prop_assert!((norms.as_slice()[r] - manual).abs() < 1e-4);
                }
            }

            #[test]
            fn normalized_rows_are_unit_or_zero(a in small_matrix(6)) {
                let (n, _) = a.l2_normalize_rows(1e-12);
                for r in 0..n.rows() {
                    let norm: f32 = n.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                    prop_assert!(norm < 1.0 + 1e-4);
                    let orig: f32 = a.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                    if orig > 1e-3 {
                        prop_assert!((norm - 1.0).abs() < 1e-3);
                    }
                }
            }
        }
    }
}
