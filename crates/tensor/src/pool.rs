//! Persistent worker pool behind every parallel kernel in this crate.
//!
//! The first parallel kernel invocation lazily spins up a set of detached
//! worker threads that live for the rest of the process; each subsequent
//! kernel call only pushes one small job handle per helper onto a shared
//! queue. This replaces the per-call `crossbeam::scope` thread spawning the
//! crate started with — at paper scale (tens of thousands of kernel calls
//! per training run) the per-call spawn/join tax dominated the win from
//! parallelism for all but the largest products.
//!
//! ## Execution model (work-stealing-lite)
//!
//! A job is a list of `n_chunks` independent chunk indices plus a task
//! closure. Chunk indices are claimed with an atomic counter, so faster
//! workers automatically take more chunks (cheap dynamic load balancing
//! without per-worker deques). The *calling* thread participates: it claims
//! chunks like any worker, then blocks on a condvar until the last chunk
//! completes. Nested `run_chunks` calls from inside a task are safe — the
//! inner caller also participates, so progress never depends on free
//! workers.
//!
//! ## Thread-count configuration
//!
//! The worker count is resolved once and cached in a [`OnceLock`]:
//!  1. [`set_num_threads`] (first caller wins, e.g. from `VgodConfig`),
//!  2. else the `VGOD_NUM_THREADS` environment variable,
//!  3. else `std::thread::available_parallelism()`, capped at 8 (the kernels
//!     are memory-bound well before that on typical hardware).
//!
//! `VGOD_NUM_THREADS=1` (or [`set_num_threads(1)`](set_num_threads)) forces
//! every kernel down its sequential path — useful when debugging, or to get
//! bit-exact parity with single-threaded runs for the merge-class kernels
//! (see `DESIGN.md` § Threading model). [`force_sequential`] toggles the
//! same behaviour at runtime without touching the cached configuration
//! (used by the kernel benchmarks to measure sequential baselines).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on auto-detected worker threads (explicit configuration may
/// exceed it).
const AUTO_THREAD_CAP: usize = 8;

static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();
static FORCE_SEQUENTIAL: AtomicBool = AtomicBool::new(false);

/// Error returned by [`set_num_threads`] once the pool size is fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadCountAlreadySet {
    /// The thread count that is already in effect.
    pub current: usize,
}

impl std::fmt::Display for ThreadCountAlreadySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vgod-tensor thread count already resolved to {}",
            self.current
        )
    }
}

impl std::error::Error for ThreadCountAlreadySet {}

/// Fix the worker-thread count before the first parallel kernel runs.
///
/// Returns `Err` (with the count in effect) if the count was already
/// resolved — by an earlier call, by the `VGOD_NUM_THREADS` environment
/// variable being read, or by a kernel having already run. `n` is clamped to
/// at least 1.
pub fn set_num_threads(n: usize) -> Result<(), ThreadCountAlreadySet> {
    let n = n.max(1);
    let mut accepted = false;
    let current = *CONFIGURED_THREADS.get_or_init(|| {
        accepted = true;
        n
    });
    if accepted || current == n {
        Ok(())
    } else {
        Err(ThreadCountAlreadySet { current })
    }
}

/// The number of threads parallel kernels will use (1 = sequential).
///
/// Resolved once and cached; see the module docs for the precedence order.
pub fn num_threads() -> usize {
    if FORCE_SEQUENTIAL.load(Ordering::Relaxed) {
        return 1;
    }
    *CONFIGURED_THREADS.get_or_init(|| {
        match std::env::var("VGOD_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(AUTO_THREAD_CAP),
        }
    })
}

/// Route every kernel through its sequential path while `on` is set,
/// regardless of the configured thread count. Intended for benchmarks
/// (sequential baselines) and debugging; not a synchronisation point —
/// kernels already running are unaffected.
pub fn force_sequential(on: bool) {
    FORCE_SEQUENTIAL.store(on, Ordering::Relaxed);
}

/// One parallel region. Workers (and the caller) claim chunk indices from
/// `next` until exhausted; the last completed chunk flips `done`.
struct Job {
    /// Lifetime-erased pointer to the caller's task closure.
    ///
    /// Safety contract: only dereferenced for a successfully claimed chunk
    /// index (`next.fetch_add() < n_chunks`), and every claimed chunk bumps
    /// `completed` only *after* the call returns. `run_chunks` blocks until
    /// `completed == n_chunks`, so the pointee outlives every dereference.
    task: *const (dyn Fn(usize) + Sync),
    n_chunks: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// Safety: `task` is only used under the contract documented on the field;
// all other fields are Sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    job_available: Condvar,
    spawned_workers: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        job_available: Condvar::new(),
        spawned_workers: Mutex::new(0),
    })
}

impl Pool {
    fn ensure_workers(&'static self, target: usize) {
        let mut count = self
            .spawned_workers
            .lock()
            .expect("worker bookkeeping poisoned");
        while *count < target {
            std::thread::Builder::new()
                .name(format!("vgod-worker-{count}"))
                .spawn(move || worker_loop(self))
                .expect("failed to spawn vgod-tensor worker thread");
            *count += 1;
        }
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut queue = pool.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = pool.job_available.wait(queue).expect("job queue poisoned");
            }
        };
        execute(&job);
    }
}

/// Claim-and-run chunks of `job` until none remain.
fn execute(job: &Job) {
    loop {
        let index = job.next.fetch_add(1, Ordering::Relaxed);
        if index >= job.n_chunks {
            return;
        }
        // Safety: see the contract on `Job::task` — `index` was claimed.
        let task = unsafe { &*job.task };
        if catch_unwind(AssertUnwindSafe(|| task(index))).is_err() {
            job.panicked.store(true, Ordering::Release);
        }
        if job.completed.fetch_add(1, Ordering::AcqRel) + 1 == job.n_chunks {
            let mut done = job.done.lock().expect("job completion flag poisoned");
            *done = true;
            job.done_cv.notify_all();
        }
    }
}

/// Run `task(0..n_chunks)` across the worker pool, blocking until every
/// chunk has completed. Chunks must be independent; each index is executed
/// exactly once. Runs inline when the pool is sequential or there is only
/// one chunk.
///
/// # Panics
/// Re-panics (with a generic message) if any chunk panicked; the remaining
/// chunks still run so the pool stays consistent.
pub(crate) fn run_chunks(n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    run_with_threads(n_chunks, num_threads(), task);
}

/// Run `task(0..n_tasks)` on the shared worker pool with an explicit
/// concurrency cap (counting the calling thread, which participates).
///
/// `max_threads == 0` defers to the pool's configured thread count
/// ([`num_threads`], so `force_sequential` and `VGOD_NUM_THREADS` apply);
/// any other value is used as-is — callers like the out-of-core batch
/// scorer may run *more* concurrent tasks than the kernel thread count,
/// since their tasks are I/O-heavy rather than purely compute-bound.
/// Tasks must be independent; each index runs exactly once, and nested
/// parallel kernels inside a task are safe (the inner caller participates).
///
/// # Panics
/// Re-panics if any task panicked; the remaining tasks still run.
pub fn run_indexed(n_tasks: usize, max_threads: usize, task: &(dyn Fn(usize) + Sync)) {
    let threads = if max_threads == 0 {
        num_threads()
    } else {
        max_threads
    };
    run_with_threads(n_tasks, threads, task);
}

fn run_with_threads(n_chunks: usize, threads: usize, task: &(dyn Fn(usize) + Sync)) {
    let threads = threads.min(n_chunks);
    if threads <= 1 {
        for index in 0..n_chunks {
            task(index);
        }
        return;
    }
    let pool = pool();
    pool.ensure_workers(threads - 1);

    // Safety: the Job holds this pointer only until `completed == n_chunks`,
    // and this function does not return before then (see Job::task).
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
    };
    let job = Arc::new(Job {
        task: task_static as *const _,
        n_chunks,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });

    {
        let mut queue = pool.queue.lock().expect("job queue poisoned");
        for _ in 0..threads - 1 {
            queue.push_back(Arc::clone(&job));
        }
    }
    pool.job_available.notify_all();

    // The caller works too, then waits for stragglers.
    execute(&job);
    let mut done = job.done.lock().expect("job completion flag poisoned");
    while !*done {
        done = job
            .done_cv
            .wait(done)
            .expect("job completion flag poisoned");
    }
    drop(done);
    if job.panicked.load(Ordering::Acquire) {
        panic!("vgod-tensor worker task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests must not depend on the machine's core count: pin the global
    /// thread count to 4 (first test to run wins; all call the same value).
    pub(crate) fn pin_test_threads() {
        let _ = set_num_threads(4);
    }

    #[test]
    fn run_chunks_executes_every_index_exactly_once() {
        pin_test_threads();
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_chunks(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_chunks_handles_zero_and_one_chunk() {
        pin_test_threads();
        run_chunks(0, &|_| panic!("no chunks to run"));
        let flag = AtomicUsize::new(0);
        run_chunks(1, &|i| {
            assert_eq!(i, 0);
            flag.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_is_reusable_across_many_small_jobs() {
        pin_test_threads();
        for round in 0..200 {
            let total = AtomicUsize::new(0);
            run_chunks(7, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 28, "round {round}");
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        pin_test_threads();
        let result = std::panic::catch_unwind(|| {
            run_chunks(8, &|i| {
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        });
        assert!(result.is_err(), "panic in a chunk must reach the caller");
        // The pool must still be usable afterwards.
        let total = AtomicUsize::new(0);
        run_chunks(5, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn run_indexed_honours_explicit_caps() {
        pin_test_threads();
        // Cap 1: strictly sequential, still every index exactly once.
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(32, 1, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // A cap above the configured pool size spawns the extra workers.
        let total = AtomicUsize::new(0);
        run_indexed(100, 16, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4950);
        // Cap 0 defers to the configured thread count; zero tasks is a no-op.
        run_indexed(0, 0, &|_| panic!("no tasks to run"));
        let flag = AtomicUsize::new(0);
        run_indexed(3, 0, &|_| {
            flag.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(flag.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_run_chunks_completes() {
        pin_test_threads();
        let total = AtomicUsize::new(0);
        run_chunks(4, &|_| {
            run_chunks(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn force_sequential_reports_one_thread() {
        pin_test_threads();
        force_sequential(true);
        assert_eq!(num_threads(), 1);
        force_sequential(false);
        assert!(num_threads() >= 1);
    }
}
