//! # vgod-tensor
//!
//! Dense row-major `f32` matrices and CSR sparse matrices — the numeric
//! substrate underneath the `vgod-rs` workspace.
//!
//! The crate deliberately implements only the kernels the VGOD paper's
//! models need (dense GEMM in its three transpose flavours, elementwise
//! arithmetic, row broadcasts, reductions, row L2-normalisation, and sparse
//! × dense products for message passing), but implements them carefully:
//! large matrix products are split into row bands executed on a persistent
//! worker pool (see [`threading`]), the band bodies run dispatched SIMD
//! micro-kernels (AVX2+FMA with a portable unrolled fallback, see [`simd`]),
//! and every public operation validates its shape preconditions.
//!
//! ```
//! use vgod_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![warn(missing_docs)]

pub mod arena;
mod csr;
mod kernels;
mod matrix;
mod parallel;
mod pool;
pub mod simd;

pub use csr::Csr;
pub use kernels::AdamStep;
pub use matrix::Matrix;

/// Thread-pool configuration for the parallel kernels, plus the shared
/// indexed-task dispatcher ([`threading::run_indexed`]) other crates use to
/// fan independent work units (e.g. out-of-core score batches) across the
/// same persistent pool.
pub mod threading {
    pub use crate::pool::{
        force_sequential, num_threads, run_indexed, set_num_threads, ThreadCountAlreadySet,
    };
}

/// Error type for fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Data length does not match the requested shape.
    ShapeMismatch {
        /// Expected number of elements (`rows * cols`).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An edge endpoint or column index is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds ({bound})")
            }
        }
    }
}

impl std::error::Error for TensorError {}
