//! Work partitioning helpers for the parallel kernels.
//!
//! Kernels in this crate are embarrassingly row-parallel: the output rows of
//! a GEMM or SpMM are independent. We split the output row range into
//! contiguous bands and run the bands on the persistent worker pool in
//! [`crate::pool`]. Uneven kernels (SpMM with skewed degree distributions)
//! oversplit into more bands than threads so the pool's chunk-claiming
//! counter can balance the load dynamically.
//!
//! Each kernel class has its own threshold below which the sequential loop
//! wins — dispatching to the pool costs on the order of a few microseconds,
//! which differs by orders of magnitude relative to a GEMM FLOP, an SpMM
//! multiply-add through an index indirection, and a streaming elementwise
//! visit.

use crate::pool::{num_threads, run_chunks};

/// Minimum scalar multiply-adds (`m * k * n`) before a dense GEMM engages
/// the pool. Calibrated against the dispatched SIMD micro-kernels: the
/// vectorised GEMM retires multiply-adds several times faster than the old
/// scalar loop, so the pool's dispatch overhead only amortises at a
/// correspondingly larger problem.
pub(crate) const GEMM_FLOP_THRESHOLD: usize = 8_000_000;

/// Minimum work units (`nnz * dense_cols`) before a sparse × dense product
/// engages the pool. Lower than the GEMM threshold: each SpMM work unit
/// carries an index indirection and a gathered row read, so it costs several
/// times a GEMM FLOP even vectorised.
pub(crate) const SPMM_WORK_THRESHOLD: usize = 1_000_000;

/// Minimum element count before streaming elementwise kernels (maps, zips,
/// broadcasts, reductions) engage the pool. These touch each element once
/// and are memory-bound; the vectorised kernels halve the per-element cost,
/// doubling the dispatch-overhead amortisation point.
pub(crate) const ELEMWISE_THRESHOLD: usize = 131_072;

/// Bands per thread for row-parallel kernels with potentially uneven row
/// cost. More bands than threads lets the pool's claim counter rebalance.
pub(crate) const OVERSPLIT: usize = 4;

/// Threads to use for a kernel of class-specific `work` against `threshold`.
pub(crate) fn threads_for(work: usize, threshold: usize) -> usize {
    if work >= threshold {
        num_threads()
    } else {
        1
    }
}

/// Split `rows` output rows into at most `threads` contiguous chunks of
/// near-equal size. Returns `(start, end)` half-open ranges; never empty
/// chunks.
pub(crate) fn row_chunks(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(rows.max(1));
    let base = rows / threads;
    let rem = rows % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Run `body` over each chunk of `out`, where chunk `i` covers output rows
/// `ranges[i]` and receives the corresponding mutable slice of `out`
/// (rows × `row_len` elements). Runs inline when only one chunk; otherwise
/// the bands are executed on the persistent worker pool.
pub(crate) fn for_each_row_chunk<F>(
    out: &mut [f32],
    row_len: usize,
    ranges: &[(usize, usize)],
    body: F,
) where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    if ranges.len() <= 1 {
        if let Some(&(s, e)) = ranges.first() {
            body(s, e, &mut out[s * row_len..e * row_len]);
        }
        return;
    }
    // Pre-slice the output into disjoint row bands on the caller's thread;
    // store the band pointers as addresses so the task closure stays Sync.
    let mut bands: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut consumed = 0;
    for &(s, e) in ranges {
        let (band, tail) = rest.split_at_mut((e - s) * row_len);
        debug_assert_eq!(s * row_len, consumed);
        consumed += band.len();
        bands.push((s, e, band.as_mut_ptr() as usize, band.len()));
        rest = tail;
    }
    run_chunks(bands.len(), &|i| {
        let (s, e, addr, len) = bands[i];
        // Safety: band `i` is a disjoint sub-slice of `out` (constructed via
        // `split_at_mut` above) and the pool runs each index exactly once.
        let band = unsafe { std::slice::from_raw_parts_mut(addr as *mut f32, len) };
        body(s, e, band);
    });
}

/// Split `rows` into bands for a row-parallel kernel on `threads` threads,
/// oversplitting (see [`OVERSPLIT`]) when actually parallel so the pool can
/// load-balance uneven rows.
pub(crate) fn band_ranges(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    row_chunks(rows, if threads > 1 { threads * OVERSPLIT } else { 1 })
}

/// Row-parallel kernel driver: run `body` over row bands of `out`
/// (`rows × row_len`), oversplit across the pool when `threads > 1`. When
/// `threads_for` resolved to a single thread the body runs inline on the
/// whole output — no range vector, no band bookkeeping, no pool dispatch.
pub(crate) fn for_each_row_band<F>(
    out: &mut [f32],
    row_len: usize,
    rows: usize,
    threads: usize,
    body: F,
) where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    if threads <= 1 || rows <= 1 {
        body(0, rows, out);
        return;
    }
    let ranges = band_ranges(rows, threads);
    for_each_row_chunk(out, row_len, &ranges, body);
}

/// Run `body` over matching chunks of three equal-length slices (fused
/// elementwise updates, e.g. optimizer steps touching parameter, first and
/// second moment buffers in one pass). Runs inline on the whole slices when
/// `threads <= 1`; otherwise chunk `i` covers `row_chunks(len, threads)[i]`
/// and `body` receives the chunk start offset and the three sub-slices.
pub(crate) fn for_each_chunk3<F>(
    a: &mut [f32],
    b: &mut [f32],
    c: &mut [f32],
    threads: usize,
    body: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32], &mut [f32]) + Sync,
{
    assert_eq!(a.len(), b.len(), "for_each_chunk3: length mismatch");
    assert_eq!(a.len(), c.len(), "for_each_chunk3: length mismatch");
    if threads <= 1 || a.len() <= 1 {
        body(0, a, b, c);
        return;
    }
    let ranges = row_chunks(a.len(), threads);
    // Addresses as usize so the task closure stays Sync; rebuilt per chunk.
    let (pa, pb, pc) = (
        a.as_mut_ptr() as usize,
        b.as_mut_ptr() as usize,
        c.as_mut_ptr() as usize,
    );
    run_chunks(ranges.len(), &|i| {
        let (s, e) = ranges[i];
        let len = e - s;
        // Safety: `ranges` are disjoint sub-ranges of each slice and the
        // pool runs each chunk index exactly once, so no two tasks alias.
        let (sa, sb, sc) = unsafe {
            (
                std::slice::from_raw_parts_mut((pa as *mut f32).add(s), len),
                std::slice::from_raw_parts_mut((pb as *mut f32).add(s), len),
                std::slice::from_raw_parts_mut((pc as *mut f32).add(s), len),
            )
        };
        body(s, sa, sb, sc);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pin_test_threads() {
        let _ = crate::pool::set_num_threads(4);
    }

    #[test]
    fn chunks_cover_range_without_overlap() {
        for rows in [0usize, 1, 2, 7, 8, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let chunks = row_chunks(rows, threads);
                let mut next = 0;
                for (s, e) in &chunks {
                    assert_eq!(*s, next);
                    assert!(e > s);
                    next = *e;
                }
                assert_eq!(next, rows, "chunks must end exactly at `rows`");
                let total: usize = chunks.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, rows);
            }
        }
    }

    #[test]
    fn chunked_execution_touches_every_row_once() {
        pin_test_threads();
        let rows = 37;
        let cols = 5;
        let mut out = vec![0.0f32; rows * cols];
        let ranges = row_chunks(rows, 4);
        for_each_row_chunk(&mut out, cols, &ranges, |s, e, band| {
            for (local, r) in (s..e).enumerate() {
                for c in 0..cols {
                    band[local * cols + c] += (r * cols + c) as f32;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut out = vec![0.0f32; 6];
        for_each_row_chunk(&mut out, 3, &[(0, 2)], |_, _, band| {
            for v in band.iter_mut() {
                *v = 1.0;
            }
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn row_band_sequential_path_gets_whole_output() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let mut out = vec![0.0f32; 12];
        for_each_row_band(&mut out, 3, 4, 1, |s, e, band| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!((s, e), (0, 4));
            assert_eq!(band.len(), 12);
            for v in band.iter_mut() {
                *v = 1.0;
            }
        });
        // One inline call, no banding, no pool dispatch.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn oversplit_banding_matches_sequential_fill() {
        pin_test_threads();
        let rows = 101;
        let cols = 3;
        let mut out = vec![0.0f32; rows * cols];
        let ranges = row_chunks(rows, 4 * OVERSPLIT);
        for_each_row_chunk(&mut out, cols, &ranges, |s, _e, band| {
            for (offset, v) in band.iter_mut().enumerate() {
                *v = (s * cols + offset) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn chunk3_updates_all_slices_consistently() {
        pin_test_threads();
        let n = 1000;
        let mut a = vec![1.0f32; n];
        let mut b = vec![2.0f32; n];
        let mut c = vec![3.0f32; n];
        for_each_chunk3(&mut a, &mut b, &mut c, 4, |s, ca, cb, cc| {
            for i in 0..ca.len() {
                ca[i] += (s + i) as f32;
                cb[i] *= 2.0;
                cc[i] = ca[i] + cb[i];
            }
        });
        for i in 0..n {
            assert_eq!(a[i], 1.0 + i as f32);
            assert_eq!(b[i], 4.0);
            assert_eq!(c[i], a[i] + 4.0);
        }
    }

    #[test]
    fn threads_for_respects_threshold() {
        pin_test_threads();
        assert_eq!(threads_for(GEMM_FLOP_THRESHOLD - 1, GEMM_FLOP_THRESHOLD), 1);
        assert!(threads_for(GEMM_FLOP_THRESHOLD, GEMM_FLOP_THRESHOLD) >= 1);
    }
}
