//! Work partitioning helpers for the parallel kernels.
//!
//! Kernels in this crate are embarrassingly row-parallel: the output rows of
//! a GEMM or SpMM are independent. We split the output row range into chunks
//! and run each chunk on a `crossbeam::scope` thread. Spawning threads per
//! call is cheap relative to the kernels we parallelise (we only engage the
//! parallel path above a FLOP threshold).

/// Minimum number of scalar multiply-adds before a kernel bothers spawning
/// threads. Below this the sequential loop wins.
pub(crate) const PAR_FLOP_THRESHOLD: usize = 4_000_000;

/// Number of worker threads to use for parallel kernels.
///
/// Defaults to the number of available CPUs, capped at 8 — the kernels here
/// are memory-bound well before that on typical hardware.
pub(crate) fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Split `rows` output rows into at most `threads` contiguous chunks of
/// near-equal size. Returns `(start, end)` half-open ranges; never empty
/// chunks.
pub(crate) fn row_chunks(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(rows.max(1));
    let base = rows / threads;
    let rem = rows % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Run `body` over each chunk of `out`, where chunk `i` covers output rows
/// `ranges[i]` and receives the corresponding mutable slice of `out`
/// (rows × `row_len` elements). Runs sequentially when only one chunk.
pub(crate) fn for_each_row_chunk<F>(
    out: &mut [f32],
    row_len: usize,
    ranges: &[(usize, usize)],
    body: F,
) where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    if ranges.len() <= 1 {
        if let Some(&(s, e)) = ranges.first() {
            body(s, e, &mut out[s * row_len..e * row_len]);
        }
        return;
    }
    // Slice the output into disjoint row bands, one per chunk.
    let mut bands: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut consumed = 0;
    for &(s, e) in ranges {
        let (band, tail) = rest.split_at_mut((e - s) * row_len);
        debug_assert_eq!(s * row_len, consumed);
        consumed += band.len();
        bands.push((s, e, band));
        rest = tail;
    }
    crossbeam::scope(|scope| {
        for (s, e, band) in bands {
            let body = &body;
            scope.spawn(move |_| body(s, e, band));
        }
    })
    .expect("tensor worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_without_overlap() {
        for rows in [0usize, 1, 2, 7, 8, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let chunks = row_chunks(rows, threads);
                let mut next = 0;
                for (s, e) in &chunks {
                    assert_eq!(*s, next);
                    assert!(e > s);
                    next = *e;
                }
                assert_eq!(next, rows.min(next.max(rows)));
                let total: usize = chunks.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, rows);
            }
        }
    }

    #[test]
    fn chunked_execution_touches_every_row_once() {
        let rows = 37;
        let cols = 5;
        let mut out = vec![0.0f32; rows * cols];
        let ranges = row_chunks(rows, 4);
        for_each_row_chunk(&mut out, cols, &ranges, |s, e, band| {
            for (local, r) in (s..e).enumerate() {
                for c in 0..cols {
                    band[local * cols + c] += (r * cols + c) as f32;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut out = vec![0.0f32; 6];
        for_each_row_chunk(&mut out, 3, &[(0, 2)], |_, _, band| {
            for v in band.iter_mut() {
                *v = 1.0;
            }
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }
}
