//! Shape-keyed buffer arena for recycling `Matrix` storage.
//!
//! Training loops allocate and drop the same handful of buffer shapes every
//! epoch (activations, gradients, optimizer scratch). The arena intercepts
//! those allocations: inside an [`scope`] every buffer freed by a dropped
//! [`crate::Matrix`] is stashed on a thread-local free list keyed by its
//! capacity, and the next allocation of the same size pops it back instead
//! of going to the global allocator.
//!
//! Invariants:
//!
//! - Recycled buffers are always fully overwritten before they are handed
//!   out (zero-fill, constant-fill or copy), so arena reuse can never change
//!   numeric results — warm and cold runs are bit-identical.
//! - Outside a scope, allocation and release pass straight through to the
//!   global allocator; the free lists themselves survive scope exits (so a
//!   second training run starts warm) but are trimmed to a bounded size.
//! - The arena is strictly thread-local. Worker-pool threads never construct
//!   or drop matrices (outputs are allocated on the calling thread), so the
//!   training thread's free lists see all recycling traffic.

use std::cell::RefCell;
use std::collections::HashMap;

/// Counters describing arena traffic since the last [`reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers that had to come from the global allocator.
    pub fresh: u64,
    /// Buffers served from the free lists.
    pub reused: u64,
}

#[derive(Default)]
struct BufferArena {
    /// Free lists keyed by buffer capacity.
    free: HashMap<usize, Vec<Vec<f32>>>,
    /// Nesting depth of active [`scope`] calls; 0 = disengaged.
    depth: usize,
    stats: ArenaStats,
}

thread_local! {
    static ARENA: RefCell<BufferArena> = RefCell::new(BufferArena::default());
}

/// Per-size-class retention cap applied when the outermost scope exits.
/// While a scope is live the lists are unbounded (an epoch can keep dozens
/// of same-shaped buffers in flight); between scopes we keep enough to make
/// the next run warm without pinning a whole training run's worth of memory.
fn retain_cap() -> usize {
    8 * crate::pool::num_threads().max(1)
}

/// Run `f` with the thread-local buffer arena engaged.
///
/// While engaged, buffers released by dropped matrices are retained for
/// reuse instead of being returned to the global allocator. Scopes nest;
/// the free lists are trimmed when the outermost scope exits.
pub fn scope<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            ARENA.with(|a| {
                let mut a = a.borrow_mut();
                a.depth -= 1;
                if a.depth == 0 {
                    let cap = retain_cap();
                    for list in a.free.values_mut() {
                        list.truncate(cap);
                    }
                }
            });
        }
    }
    ARENA.with(|a| a.borrow_mut().depth += 1);
    let _guard = Guard;
    f()
}

/// Drop every retained buffer, returning the memory to the global allocator.
pub fn clear() {
    ARENA.with(|a| a.borrow_mut().free.clear());
}

/// Arena traffic counters since the last [`reset_stats`] on this thread.
pub fn stats() -> ArenaStats {
    ARENA.with(|a| a.borrow().stats)
}

/// Zero the arena traffic counters on this thread.
pub fn reset_stats() {
    ARENA.with(|a| a.borrow_mut().stats = ArenaStats::default());
}

fn take_recycled(len: usize) -> Option<Vec<f32>> {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.depth == 0 {
            a.stats.fresh += 1;
            return None;
        }
        match a.free.get_mut(&len).and_then(Vec::pop) {
            Some(v) => {
                a.stats.reused += 1;
                Some(v)
            }
            None => {
                a.stats.fresh += 1;
                None
            }
        }
    })
}

/// Allocate a buffer of `len` zeros, recycling arena storage when engaged.
pub fn alloc_zeroed(len: usize) -> Vec<f32> {
    match take_recycled(len) {
        Some(mut v) => {
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => vec![0.0; len],
    }
}

/// Allocate a buffer of `len` copies of `value`, recycling when engaged.
pub fn alloc_filled(len: usize, value: f32) -> Vec<f32> {
    match take_recycled(len) {
        Some(mut v) => {
            v.clear();
            v.resize(len, value);
            v
        }
        None => vec![value; len],
    }
}

/// Allocate a copy of `src`, recycling arena storage when engaged.
pub fn alloc_copy(src: &[f32]) -> Vec<f32> {
    match take_recycled(src.len()) {
        Some(mut v) => {
            v.clear();
            v.extend_from_slice(src);
            v
        }
        None => src.to_vec(),
    }
}

/// Return a buffer to the arena. Outside a scope (or for empty buffers)
/// this simply drops it.
pub fn release(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    // `try_with` so matrices dropped during thread teardown (after the
    // thread-local arena is destroyed) fall back to a plain drop.
    let _ = ARENA.try_with(|a| {
        let mut a = a.borrow_mut();
        if a.depth > 0 {
            a.free.entry(buf.capacity()).or_default().push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disengaged_is_pass_through() {
        clear();
        reset_stats();
        release(vec![1.0; 16]);
        let v = alloc_zeroed(16);
        assert_eq!(v, vec![0.0; 16]);
        // Nothing was stashed, so the alloc was fresh.
        assert_eq!(stats().reused, 0);
    }

    #[test]
    fn engaged_scope_recycles_and_overwrites() {
        clear();
        scope(|| {
            release(vec![7.0; 8]);
            reset_stats();
            let z = alloc_zeroed(8);
            assert_eq!(z, vec![0.0; 8], "recycled buffer must be re-zeroed");
            assert_eq!(
                stats(),
                ArenaStats {
                    fresh: 0,
                    reused: 1
                }
            );
            release(z);
            let f = alloc_filled(8, 3.5);
            assert_eq!(f, vec![3.5; 8]);
            release(f);
            let c = alloc_copy(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            assert_eq!(c[7], 8.0);
            assert_eq!(stats().reused, 3);
        });
        clear();
    }

    #[test]
    fn free_lists_survive_scope_exit() {
        clear();
        scope(|| release(vec![1.0; 32]));
        scope(|| {
            reset_stats();
            let _v = alloc_zeroed(32);
            assert_eq!(stats().reused, 1, "second scope should start warm");
        });
        clear();
    }
}
