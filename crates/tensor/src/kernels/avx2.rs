//! Hand-written AVX2 + FMA micro-kernels (`x86_64` only).
//!
//! # Safety
//!
//! Every function here is `unsafe` and carries
//! `#[target_feature(enable = "avx2,fma")]`: callers (the dispatch wrappers
//! in [`super`]) must only reach this module after
//! [`crate::simd::active_isa`] returned [`crate::simd::Isa::Avx2`], which
//! implies both features were detected at runtime. Raw-pointer arithmetic
//! stays within the bounds the safe wrappers validated.
//!
//! # Numerics
//!
//! - GEMM/SpMM kernels use `vfmadd`: per output element the accumulation
//!   order is identical to the scalar fallback (k-/neighbour-sequential),
//!   but each multiply-add rounds once instead of twice, so results agree
//!   with the scalar path only within float tolerance.
//! - Elementwise kernels, [`fused_adam`], [`sum`] and [`sum_sq`] avoid FMA
//!   on purpose: every operation is the same correctly-rounded IEEE op the
//!   scalar fallback performs on the same lane grouping, so those kernels
//!   are bitwise identical across ISAs.

use super::{scalar, AdamStep, KC, MR, NR};
use std::arch::x86_64::*;

/// Collapse one 8-lane register with the fixed pairwise tree mirrored by
/// [`scalar::hsum8`]: high half onto low half, then again, then the pair.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let q = _mm_add_ps(lo, hi);
    let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
    _mm_cvtss_f32(s)
}

/// Register-tiled GEMM over a packed B (see [`super::pack_b`]): MR×NR tiles
/// (4 rows × 16 columns = 8 `ymm` accumulators), cache-blocked over k in
/// [`KC`]-sized panels so the active B panel block stays L1-resident. The
/// k-blocks continue accumulation element-wise through `out` (load, fma,
/// store), so the per-element order stays strictly k-sequential.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn gemm_nn(out: &mut [f32], a: &[f32], bp: &[f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let nr = NR.min(n - j0);
        let panel = bp.as_ptr().add(p * k * NR);
        let mut kb = 0;
        while kb < k {
            let ke = (kb + KC).min(k);
            let first = kb == 0;
            let mut i = 0;
            if nr == NR {
                while i + MR <= m {
                    tile4(
                        out.as_mut_ptr().add(i * n + j0),
                        n,
                        a.as_ptr().add(i * k),
                        k,
                        panel,
                        kb,
                        ke,
                        first,
                    );
                    i += MR;
                }
                while i < m {
                    tile1(
                        out.as_mut_ptr().add(i * n + j0),
                        a.as_ptr().add(i * k),
                        panel,
                        kb,
                        ke,
                        first,
                    );
                    i += 1;
                }
            } else {
                // Edge panel: run the full-width tile against a padded
                // scratch buffer; padding lanes multiply packed zeros and
                // are discarded on copy-out.
                while i + MR <= m {
                    let mut scratch = [0.0f32; MR * NR];
                    if !first {
                        for r in 0..MR {
                            let o = (i + r) * n + j0;
                            scratch[r * NR..r * NR + nr].copy_from_slice(&out[o..o + nr]);
                        }
                    }
                    tile4(
                        scratch.as_mut_ptr(),
                        NR,
                        a.as_ptr().add(i * k),
                        k,
                        panel,
                        kb,
                        ke,
                        first,
                    );
                    for r in 0..MR {
                        let o = (i + r) * n + j0;
                        out[o..o + nr].copy_from_slice(&scratch[r * NR..r * NR + nr]);
                    }
                    i += MR;
                }
                while i < m {
                    let mut scratch = [0.0f32; NR];
                    if !first {
                        scratch[..nr].copy_from_slice(&out[i * n + j0..i * n + j0 + nr]);
                    }
                    tile1(
                        scratch.as_mut_ptr(),
                        a.as_ptr().add(i * k),
                        panel,
                        kb,
                        ke,
                        first,
                    );
                    out[i * n + j0..i * n + j0 + nr].copy_from_slice(&scratch[..nr]);
                    i += 1;
                }
            }
            kb = ke;
        }
    }
}

/// 4×16 register tile: 8 accumulators, 2 B loads and 4 A broadcasts per k
/// step. `dst` points at the tile's first element; rows advance by `stride`.
#[allow(clippy::too_many_arguments)]
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile4(
    dst: *mut f32,
    stride: usize,
    a: *const f32,
    lda: usize,
    panel: *const f32,
    kb: usize,
    ke: usize,
    first: bool,
) {
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    if !first {
        for (r, accr) in acc.iter_mut().enumerate() {
            accr[0] = _mm256_loadu_ps(dst.add(r * stride));
            accr[1] = _mm256_loadu_ps(dst.add(r * stride + 8));
        }
    }
    for kk in kb..ke {
        let b0 = _mm256_loadu_ps(panel.add(kk * NR));
        let b1 = _mm256_loadu_ps(panel.add(kk * NR + 8));
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(r * lda + kk));
            accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
            accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        _mm256_storeu_ps(dst.add(r * stride), accr[0]);
        _mm256_storeu_ps(dst.add(r * stride + 8), accr[1]);
    }
}

/// 1×16 remainder tile for the last `m % MR` rows.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile1(
    dst: *mut f32,
    a: *const f32,
    panel: *const f32,
    kb: usize,
    ke: usize,
    first: bool,
) {
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    if !first {
        acc0 = _mm256_loadu_ps(dst);
        acc1 = _mm256_loadu_ps(dst.add(8));
    }
    for kk in kb..ke {
        let av = _mm256_set1_ps(*a.add(kk));
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(panel.add(kk * NR)), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(panel.add(kk * NR + 8)), acc1);
    }
    _mm256_storeu_ps(dst, acc0);
    _mm256_storeu_ps(dst.add(8), acc1);
}

/// Dot-product GEMM for `matmul_nt`: 4 output columns share each A load,
/// 8-lane accumulators collapsed with the fixed [`hsum256`] tree plus a
/// sequential scalar tail (same structure as [`scalar::dot`]).
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn gemm_nt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = a.as_ptr().add(i * k);
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let quad = dot4(a_row, b.as_ptr().add(j * k), k);
            out_row[j..j + 4].copy_from_slice(&quad);
            j += 4;
        }
        while j < n {
            out_row[j] = dot1(a_row, b.as_ptr().add(j * k), k);
            j += 1;
        }
    }
}

#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot4(a: *const f32, b: *const f32, k: usize) -> [f32; 4] {
    let mut acc = [_mm256_setzero_ps(); 4];
    let chunks = k / 8;
    for c in 0..chunks {
        let av = _mm256_loadu_ps(a.add(c * 8));
        for (jj, accj) in acc.iter_mut().enumerate() {
            *accj = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.add(jj * k + c * 8)), *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for (jj, accj) in acc.iter().enumerate() {
        let mut tail = 0.0f32;
        for kk in chunks * 8..k {
            tail += *a.add(kk) * *b.add(jj * k + kk);
        }
        out[jj] = hsum256(*accj) + tail;
    }
    out
}

#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot1(a: *const f32, b: *const f32, k: usize) -> f32 {
    let mut acc = _mm256_setzero_ps();
    let chunks = k / 8;
    for c in 0..chunks {
        acc = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.add(c * 8)),
            _mm256_loadu_ps(b.add(c * 8)),
            acc,
        );
    }
    let mut tail = 0.0f32;
    for kk in chunks * 8..k {
        tail += *a.add(kk) * *b.add(kk);
    }
    hsum256(acc) + tail
}

/// CSR SpMM row kernel: up to 8 column-group accumulators (64 dense
/// columns) stay register-resident across the whole neighbour list, one
/// broadcast-FMA per neighbour per lane group. Neighbour order matches the
/// scalar kernel.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn spmm_rows(
    band: &mut [f32],
    s: usize,
    e: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    dense: &[f32],
    d: usize,
) {
    for (local, r) in (s..e).enumerate() {
        let out_row = &mut band[local * d..(local + 1) * d];
        let (rs, re) = (indptr[r], indptr[r + 1]);
        let cols = &indices[rs..re];
        let vals = &values[rs..re];
        let mut jb = 0;
        while jb + 64 <= d {
            let mut acc = [_mm256_setzero_ps(); 8];
            for (&c, &v) in cols.iter().zip(vals) {
                let src = dense.as_ptr().add(c as usize * d + jb);
                let vb = _mm256_set1_ps(v);
                for (u, accu) in acc.iter_mut().enumerate() {
                    *accu = _mm256_fmadd_ps(vb, _mm256_loadu_ps(src.add(u * 8)), *accu);
                }
            }
            for (u, accu) in acc.iter().enumerate() {
                _mm256_storeu_ps(out_row.as_mut_ptr().add(jb + u * 8), *accu);
            }
            jb += 64;
        }
        while jb + 8 <= d {
            let mut acc = _mm256_setzero_ps();
            for (&c, &v) in cols.iter().zip(vals) {
                let src = dense.as_ptr().add(c as usize * d + jb);
                acc = _mm256_fmadd_ps(_mm256_set1_ps(v), _mm256_loadu_ps(src), acc);
            }
            _mm256_storeu_ps(out_row.as_mut_ptr().add(jb), acc);
            jb += 8;
        }
        for j in jb..d {
            let mut acc = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * dense[c as usize * d + j];
            }
            out_row[j] = acc;
        }
    }
}

/// SpMM-T scatter for input rows `rs..re`: a broadcast-FMA axpy of each
/// dense source row into `out[col]`. Entry order matches the scalar kernel.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn scatter_rows(
    out: &mut [f32],
    rs: usize,
    re: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    dense: &[f32],
    d: usize,
) {
    let chunks = d / 8;
    for r in rs..re {
        let src = dense.as_ptr().add(r * d);
        let (ps, pe) = (indptr[r], indptr[r + 1]);
        for (&c, &v) in indices[ps..pe].iter().zip(&values[ps..pe]) {
            let dst = out.as_mut_ptr().add(c as usize * d);
            let vb = _mm256_set1_ps(v);
            for u in 0..chunks {
                let cur = _mm256_loadu_ps(dst.add(u * 8));
                let upd = _mm256_fmadd_ps(vb, _mm256_loadu_ps(src.add(u * 8)), cur);
                _mm256_storeu_ps(dst.add(u * 8), upd);
            }
            for jj in chunks * 8..d {
                *dst.add(jj) += v * *src.add(jj);
            }
        }
    }
}

#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn zip_add(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        let v = _mm256_add_ps(
            _mm256_loadu_ps(a.as_ptr().add(o)),
            _mm256_loadu_ps(b.as_ptr().add(o)),
        );
        _mm256_storeu_ps(dst.as_mut_ptr().add(o), v);
    }
    let t = chunks * 8;
    scalar::zip_add(&mut dst[t..], &a[t..], &b[t..]);
}

#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn zip_sub(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        let v = _mm256_sub_ps(
            _mm256_loadu_ps(a.as_ptr().add(o)),
            _mm256_loadu_ps(b.as_ptr().add(o)),
        );
        _mm256_storeu_ps(dst.as_mut_ptr().add(o), v);
    }
    let t = chunks * 8;
    scalar::zip_sub(&mut dst[t..], &a[t..], &b[t..]);
}

#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn zip_mul(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        let v = _mm256_mul_ps(
            _mm256_loadu_ps(a.as_ptr().add(o)),
            _mm256_loadu_ps(b.as_ptr().add(o)),
        );
        _mm256_storeu_ps(dst.as_mut_ptr().add(o), v);
    }
    let t = chunks * 8;
    scalar::zip_mul(&mut dst[t..], &a[t..], &b[t..]);
}

#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn add_inplace(dst: &mut [f32], src: &[f32]) {
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        let v = _mm256_add_ps(
            _mm256_loadu_ps(dst.as_ptr().add(o)),
            _mm256_loadu_ps(src.as_ptr().add(o)),
        );
        _mm256_storeu_ps(dst.as_mut_ptr().add(o), v);
    }
    let t = chunks * 8;
    scalar::add_inplace(&mut dst[t..], &src[t..]);
}

/// `dst += alpha * src`. Multiply-then-add (no FMA) so the result is
/// bitwise identical to the scalar fallback.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    let av = _mm256_set1_ps(alpha);
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        let prod = _mm256_mul_ps(av, _mm256_loadu_ps(src.as_ptr().add(o)));
        let v = _mm256_add_ps(_mm256_loadu_ps(dst.as_ptr().add(o)), prod);
        _mm256_storeu_ps(dst.as_mut_ptr().add(o), v);
    }
    let t = chunks * 8;
    scalar::axpy(&mut dst[t..], alpha, &src[t..]);
}

#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn scale(dst: &mut [f32], src: &[f32], alpha: f32) {
    let av = _mm256_set1_ps(alpha);
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        _mm256_storeu_ps(
            dst.as_mut_ptr().add(o),
            _mm256_mul_ps(av, _mm256_loadu_ps(src.as_ptr().add(o))),
        );
    }
    let t = chunks * 8;
    scalar::scale(&mut dst[t..], &src[t..], alpha);
}

#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn scale_inplace(dst: &mut [f32], alpha: f32) {
    let av = _mm256_set1_ps(alpha);
    let chunks = dst.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        _mm256_storeu_ps(
            dst.as_mut_ptr().add(o),
            _mm256_mul_ps(av, _mm256_loadu_ps(dst.as_ptr().add(o))),
        );
    }
    let t = chunks * 8;
    scalar::scale_inplace(&mut dst[t..], alpha);
}

/// 8-lane sum, bitwise identical to [`scalar::sum`] (same lane grouping,
/// plain adds, same reduction tree, same sequential tail).
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn sum(src: &[f32]) -> f32 {
    let mut acc = _mm256_setzero_ps();
    let chunks = src.len() / 8;
    for c in 0..chunks {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(src.as_ptr().add(c * 8)));
    }
    let mut tail = 0.0f32;
    for &x in &src[chunks * 8..] {
        tail += x;
    }
    hsum256(acc) + tail
}

/// 8-lane sum of squares, bitwise identical to [`scalar::sum_sq`].
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn sum_sq(src: &[f32]) -> f32 {
    let mut acc = _mm256_setzero_ps();
    let chunks = src.len() / 8;
    for c in 0..chunks {
        let v = _mm256_loadu_ps(src.as_ptr().add(c * 8));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(v, v));
    }
    let mut tail = 0.0f32;
    for &x in &src[chunks * 8..] {
        tail += x * x;
    }
    hsum256(acc) + tail
}

/// Vectorised fused Adam step. Mirrors [`scalar::fused_adam`] operation for
/// operation (mul/add/div/sqrt, no FMA) — all correctly-rounded IEEE ops,
/// so the two paths are bitwise identical.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn fused_adam(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    s: &AdamStep,
) {
    let b1 = _mm256_set1_ps(s.beta1);
    let omb1 = _mm256_set1_ps(1.0 - s.beta1);
    let b2 = _mm256_set1_ps(s.beta2);
    let omb2 = _mm256_set1_ps(1.0 - s.beta2);
    // Reciprocal folds computed in scalar f32 exactly as the scalar kernel
    // computes them, so both ISAs broadcast the identical constants.
    let c1 = _mm256_set1_ps(s.lr / s.bias1);
    let inv_b2 = _mm256_set1_ps(1.0 / s.bias2);
    let eps = _mm256_set1_ps(s.eps);
    let chunks = p.len() / 8;
    for c in 0..chunks {
        let o = c * 8;
        let gv = _mm256_loadu_ps(g.as_ptr().add(o));
        let mut mv = _mm256_loadu_ps(m.as_ptr().add(o));
        let mut vv = _mm256_loadu_ps(v.as_ptr().add(o));
        mv = _mm256_add_ps(_mm256_mul_ps(b1, mv), _mm256_mul_ps(omb1, gv));
        // Left-associative `((1-β₂)·g)·g`, matching the scalar kernel
        // bit-for-bit.
        vv = _mm256_add_ps(
            _mm256_mul_ps(b2, vv),
            _mm256_mul_ps(_mm256_mul_ps(omb2, gv), gv),
        );
        _mm256_storeu_ps(m.as_mut_ptr().add(o), mv);
        _mm256_storeu_ps(v.as_mut_ptr().add(o), vv);
        let denom = _mm256_add_ps(_mm256_sqrt_ps(_mm256_mul_ps(vv, inv_b2)), eps);
        let step = _mm256_div_ps(_mm256_mul_ps(c1, mv), denom);
        let pv = _mm256_sub_ps(_mm256_loadu_ps(p.as_ptr().add(o)), step);
        _mm256_storeu_ps(p.as_mut_ptr().add(o), pv);
    }
    let t = chunks * 8;
    scalar::fused_adam(&mut p[t..], &mut m[t..], &mut v[t..], &g[t..], s);
}
