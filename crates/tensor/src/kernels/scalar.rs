//! Portable scalar micro-kernels — the `VGOD_SIMD=scalar` fallback.
//!
//! These are written 8/16-wide-unrolled over fixed-size lane arrays so LLVM
//! can autovectorise them to whatever the build target offers (SSE2 on the
//! default `x86_64` baseline), while keeping the exact per-element
//! accumulation order pinned down:
//!
//! - GEMM and SpMM accumulate strictly k- / neighbour-sequentially per
//!   output element with separate multiply-then-add rounding — the same
//!   order the pre-kernel scalar loops used.
//! - Reductions ([`sum`], [`sum_sq`], [`dot`]) fold into 8 lanes
//!   (`lane = index % 8`) and collapse them with the fixed pairwise tree in
//!   [`hsum8`], which mirrors the AVX2 horizontal-add sequence exactly, so
//!   lane-structured reductions are bitwise identical across ISAs.
//! - Elementwise kernels and [`fused_adam`] are single correctly-rounded
//!   IEEE ops per element and therefore also bitwise identical across ISAs.

use super::{AdamStep, NR};

/// `out[i, j0..j0+nr] = Σ_k a[i, k] · panel[k, j]` for one packed B panel.
///
/// `out` is an `m × n` row-major band, `a` the matching `m × k` band of the
/// left operand, `bp` the full packed B (see [`super::pack_b`]). Each output
/// element accumulates k-sequentially (multiply, then add — no fused
/// rounding), matching the historical scalar GEMM bit-for-bit.
pub(crate) fn gemm_nn(out: &mut [f32], a: &[f32], bp: &[f32], m: usize, k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let nr = NR.min(n - j0);
        let panel = &bp[p * k * NR..(p + 1) * k * NR];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let mut tile = [0.0f32; NR];
            for (kk, &aik) in a_row.iter().enumerate() {
                let b_row = &panel[kk * NR..kk * NR + NR];
                for (t, &bv) in tile.iter_mut().zip(b_row) {
                    *t += aik * bv;
                }
            }
            out[i * n + j0..i * n + j0 + nr].copy_from_slice(&tile[..nr]);
        }
    }
}

/// GEMM for narrow outputs (`n < 8`, a single partially-filled panel):
/// identical accumulation order to [`gemm_nn`] but without the padded
/// lanes. Both ISA paths dispatch here — a 16-wide tile would spend most of
/// its lanes on padding.
pub(crate) fn gemm_narrow(out: &mut [f32], a: &[f32], bp: &[f32], m: usize, k: usize, n: usize) {
    debug_assert!(n < NR);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut tile = [0.0f32; NR];
        for (kk, &aik) in a_row.iter().enumerate() {
            for (t, &bv) in tile[..n].iter_mut().zip(&bp[kk * NR..kk * NR + n]) {
                *t += aik * bv;
            }
        }
        out_row.copy_from_slice(&tile[..n]);
    }
}

/// `out[i, j] = a_row_i · b_row_j` over contiguous k (both operands
/// row-major over k). Backs `matmul_nt`.
pub(crate) fn gemm_nt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in out[i * n..(i + 1) * n].iter_mut().enumerate() {
            *o = dot(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// 8-lane dot product with the fixed [`hsum8`] reduction tree.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let av = &a[c * 8..c * 8 + 8];
        let bv = &b[c * 8..c * 8 + 8];
        for ((l, &x), &y) in acc.iter_mut().zip(av).zip(bv) {
            *l += x * y;
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a[chunks * 8..].iter().zip(&b[chunks * 8..]) {
        tail += x * y;
    }
    hsum8(&acc) + tail
}

/// Collapse 8 accumulator lanes in the same pairwise order as the AVX2
/// horizontal reduction (fold high half onto low half twice, then the last
/// pair), so lane-structured reductions agree bitwise across ISAs.
pub(crate) fn hsum8(l: &[f32; 8]) -> f32 {
    let q = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
    let d = [q[0] + q[2], q[1] + q[3]];
    d[0] + d[1]
}

/// SpMM over output rows `s..e`: `band` holds those rows (pre-zeroed,
/// `(e-s) × d` row-major) and accumulates `value · dense[col]` in stored
/// (neighbour) order — identical to the historical CSR loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmm_rows(
    band: &mut [f32],
    s: usize,
    e: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    dense: &[f32],
    d: usize,
) {
    for (local, r) in (s..e).enumerate() {
        let out_row = &mut band[local * d..(local + 1) * d];
        let (rs, re) = (indptr[r], indptr[r + 1]);
        for (&c, &v) in indices[rs..re].iter().zip(&values[rs..re]) {
            let src = &dense[c as usize * d..(c as usize + 1) * d];
            for (o, &x) in out_row.iter_mut().zip(src) {
                *o += v * x;
            }
        }
    }
}

/// SpMM-T scatter: for input rows `rs..re`, `out[col] += value · dense[row]`
/// where `out` is the full `n_cols × d` accumulator buffer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scatter_rows(
    out: &mut [f32],
    rs: usize,
    re: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    dense: &[f32],
    d: usize,
) {
    for r in rs..re {
        let src = &dense[r * d..(r + 1) * d];
        let (ps, pe) = (indptr[r], indptr[r + 1]);
        for (&c, &v) in indices[ps..pe].iter().zip(&values[ps..pe]) {
            let dst = &mut out[c as usize * d..(c as usize + 1) * d];
            for (o, &x) in dst.iter_mut().zip(src) {
                *o += v * x;
            }
        }
    }
}

pub(crate) fn zip_add(dst: &mut [f32], a: &[f32], b: &[f32]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x + y;
    }
}

pub(crate) fn zip_sub(dst: &mut [f32], a: &[f32], b: &[f32]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x - y;
    }
}

pub(crate) fn zip_mul(dst: &mut [f32], a: &[f32], b: &[f32]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x * y;
    }
}

pub(crate) fn add_inplace(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst += alpha * src`, multiply-then-add per element (no fused rounding,
/// bitwise identical across ISAs).
pub(crate) fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

pub(crate) fn scale(dst: &mut [f32], src: &[f32], alpha: f32) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = alpha * s;
    }
}

pub(crate) fn scale_inplace(dst: &mut [f32], alpha: f32) {
    for d in dst.iter_mut() {
        *d *= alpha;
    }
}

/// 8-lane sum with the fixed [`hsum8`] reduction tree plus a sequential
/// tail. Bitwise identical across ISAs (plain adds only).
pub(crate) fn sum(src: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = src.len() / 8;
    for c in 0..chunks {
        for (l, &x) in acc.iter_mut().zip(&src[c * 8..c * 8 + 8]) {
            *l += x;
        }
    }
    let mut tail = 0.0f32;
    for &x in &src[chunks * 8..] {
        tail += x;
    }
    hsum8(&acc) + tail
}

/// 8-lane sum of squares (multiply then add — no fused rounding).
pub(crate) fn sum_sq(src: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = src.len() / 8;
    for c in 0..chunks {
        for (l, &x) in acc.iter_mut().zip(&src[c * 8..c * 8 + 8]) {
            *l += x * x;
        }
    }
    let mut tail = 0.0f32;
    for &x in &src[chunks * 8..] {
        tail += x * x;
    }
    hsum8(&acc) + tail
}

/// Fused Adam update over one chunk: parameter, first/second moment and
/// gradient in a single pass. Every operation is a correctly-rounded IEEE
/// op (no FMA), so the AVX2 version is bitwise identical.
pub(crate) fn fused_adam(p: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], s: &AdamStep) {
    // The bias-correction divisions are folded into one reciprocal multiply
    // each (`lr·m̂ = (lr/b₁)·m`, `v̂ = v·(1/b₂)`), leaving a single divide
    // plus a square root per element — the divider unit is the bottleneck.
    // This drifts from the historical three-division closure by a few ulp;
    // the AVX2 kernel computes the identical sequence, so the two ISAs stay
    // bitwise equal.
    let c1 = s.lr / s.bias1;
    let inv_b2 = 1.0 / s.bias2;
    for (((pv, mv), vv), &gv) in p.iter_mut().zip(m.iter_mut()).zip(v.iter_mut()).zip(g) {
        *mv = s.beta1 * *mv + (1.0 - s.beta1) * gv;
        // Left-associative `(1-β₂)·g·g`, matching the historical closure.
        *vv = s.beta2 * *vv + (1.0 - s.beta2) * gv * gv;
        let denom = (*vv * inv_b2).sqrt() + s.eps;
        *pv -= c1 * *mv / denom;
    }
}
