//! Dispatched SIMD micro-kernels behind the dense/sparse tensor ops.
//!
//! Every hot inner loop in [`crate::Matrix`] and [`crate::Csr`] routes
//! through the entry points in this module. Each entry point checks
//! [`crate::simd::active_isa`] (an atomic load plus a cached `OnceLock`
//! read) and forwards to either the hand-written AVX2+FMA kernels in
//! [`avx2`] or the portable unrolled fallback in [`scalar`]. The kernels
//! run *inside* worker-pool bands (`parallel::for_each_row_band`), so
//! vectorisation composes with threading.
//!
//! Determinism contract (enforced by `tests/parallel_equivalence.rs` and
//! the detector bit-identity tests):
//!
//! - Within one ISA path every kernel fixes its accumulation order
//!   (k-/neighbour-sequential for GEMM/SpMM, 8-lane + fixed pairwise tree
//!   for reductions), so results are bit-identical across thread counts,
//!   warm/cold arena state and repeated runs.
//! - Elementwise kernels, `fused_adam`, `sum` and `sum_sq` are bitwise
//!   identical *across* ISAs; the FMA kernels (GEMM, SpMM) agree across
//!   ISAs only within float tolerance.

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;

use crate::simd::active_isa;
#[cfg(target_arch = "x86_64")]
use crate::simd::Isa;

/// GEMM register-tile width (columns): one packed B panel.
pub(crate) const NR: usize = 16;
/// GEMM register-tile height (rows), AVX2 micro-kernel only.
#[cfg(target_arch = "x86_64")]
pub(crate) const MR: usize = 4;
/// k-block size for GEMM cache blocking: one `KC × NR` B panel block is
/// `KC·NR·4 B = 32 KiB`, sized to stay L1-resident while it is reused
/// across every row tile of a band.
pub(crate) const KC: usize = 512;

/// Hyperparameters of one fused Adam update (see [`crate::Matrix::fused_adam_step`]).
#[derive(Clone, Copy, Debug)]
pub struct AdamStep {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator stabiliser ε.
    pub eps: f32,
    /// First-moment bias correction `1 − β₁ᵗ`.
    pub bias1: f32,
    /// Second-moment bias correction `1 − β₂ᵗ`.
    pub bias2: f32,
}

/// Route one kernel invocation by the active ISA.
///
/// Safety of the AVX2 arm: `active_isa()` only returns [`Isa::Avx2`] after
/// runtime detection confirmed AVX2 and FMA support on this CPU.
macro_rules! dispatch {
    ($scalar:expr, $avx2:expr) => {
        match active_isa() {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { $avx2 },
            _ => $scalar,
        }
    };
}

/// Packed length of a `k × n` right-hand GEMM operand: whole `NR`-wide
/// column panels, each `k × NR`, zero-padded at the right edge.
pub(crate) fn packed_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Pack B (`k × n`, row-major) into `NR`-wide column panels:
/// `bp[p·k·NR + kk·NR + j] = b[kk·n + p·NR + j]`. Panels are contiguous
/// over k so the micro-kernel streams them linearly. `bp` must be zeroed
/// (edge-panel padding lanes are left untouched); the caller packs on its
/// own thread into an arena-recycled buffer before banding.
pub(crate) fn pack_b(bp: &mut [f32], b: &[f32], k: usize, n: usize) {
    debug_assert!(bp.len() >= packed_len(k, n));
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let nr = NR.min(n - j0);
        let panel = &mut bp[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            panel[kk * NR..kk * NR + nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
        }
    }
}

/// Band GEMM `out = a · B` against a packed B (`bp`): `out` is an
/// `m × n` row band, `a` the matching `m × k` rows of the left operand.
pub(crate) fn gemm_nn(out: &mut [f32], a: &[f32], bp: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    if n < 8 {
        // Narrow outputs would waste most of a 16-wide tile on padding.
        return scalar::gemm_narrow(out, a, bp, m, k, n);
    }
    dispatch!(
        scalar::gemm_nn(out, a, bp, m, k, n),
        avx2::gemm_nn(out, a, bp, m, k, n)
    )
}

/// Band GEMM `out = a · bᵀ` (dot-product form, no packing): `a` is `m × k`
/// band rows, `b` the full `n × k` right operand.
pub(crate) fn gemm_nt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    dispatch!(
        scalar::gemm_nt(out, a, b, m, k, n),
        avx2::gemm_nt(out, a, b, m, k, n)
    )
}

/// CSR SpMM over output rows `s..e` into the pre-zeroed band.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmm_rows(
    band: &mut [f32],
    s: usize,
    e: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    dense: &[f32],
    d: usize,
) {
    debug_assert_eq!(band.len(), (e - s) * d);
    dispatch!(
        scalar::spmm_rows(band, s, e, indptr, indices, values, dense, d),
        avx2::spmm_rows(band, s, e, indptr, indices, values, dense, d)
    )
}

/// CSR SpMM-T scatter of input rows `rs..re` into the full `n_cols × d`
/// accumulator `out`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scatter_rows(
    out: &mut [f32],
    rs: usize,
    re: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    dense: &[f32],
    d: usize,
) {
    dispatch!(
        scalar::scatter_rows(out, rs, re, indptr, indices, values, dense, d),
        avx2::scatter_rows(out, rs, re, indptr, indices, values, dense, d)
    )
}

/// `dst = a + b` elementwise.
pub(crate) fn zip_add(dst: &mut [f32], a: &[f32], b: &[f32]) {
    dispatch!(scalar::zip_add(dst, a, b), avx2::zip_add(dst, a, b))
}

/// `dst = a - b` elementwise.
pub(crate) fn zip_sub(dst: &mut [f32], a: &[f32], b: &[f32]) {
    dispatch!(scalar::zip_sub(dst, a, b), avx2::zip_sub(dst, a, b))
}

/// `dst = a ∘ b` elementwise.
pub(crate) fn zip_mul(dst: &mut [f32], a: &[f32], b: &[f32]) {
    dispatch!(scalar::zip_mul(dst, a, b), avx2::zip_mul(dst, a, b))
}

/// `dst += src` elementwise.
pub(crate) fn add_inplace(dst: &mut [f32], src: &[f32]) {
    dispatch!(scalar::add_inplace(dst, src), avx2::add_inplace(dst, src))
}

/// `dst += alpha · src` elementwise.
pub(crate) fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    dispatch!(scalar::axpy(dst, alpha, src), avx2::axpy(dst, alpha, src))
}

/// `dst = alpha · src` elementwise.
pub(crate) fn scale(dst: &mut [f32], src: &[f32], alpha: f32) {
    dispatch!(scalar::scale(dst, src, alpha), avx2::scale(dst, src, alpha))
}

/// `dst *= alpha` elementwise.
pub(crate) fn scale_inplace(dst: &mut [f32], alpha: f32) {
    dispatch!(
        scalar::scale_inplace(dst, alpha),
        avx2::scale_inplace(dst, alpha)
    )
}

/// Sum of one contiguous chunk (8-lane, fixed reduction tree).
pub(crate) fn sum(src: &[f32]) -> f32 {
    dispatch!(scalar::sum(src), avx2::sum(src))
}

/// Sum of squares of one contiguous chunk (8-lane, fixed reduction tree).
pub(crate) fn sum_sq(src: &[f32]) -> f32 {
    dispatch!(scalar::sum_sq(src), avx2::sum_sq(src))
}

/// Fused Adam update over matching chunks of parameter, both moment
/// buffers and the gradient.
pub(crate) fn fused_adam(p: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], s: &AdamStep) {
    debug_assert!(p.len() == m.len() && p.len() == v.len() && p.len() == g.len());
    dispatch!(
        scalar::fused_adam(p, m, v, g, s),
        avx2::fused_adam(p, m, v, g, s)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_f32(n: usize, scale: f32, offset: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 7 + 3) % 23) as f32 * scale - offset)
            .collect()
    }

    #[test]
    fn pack_roundtrip_covers_every_element() {
        let (k, n) = (5, 21); // two panels, ragged edge
        let b = seq_f32(k * n, 0.25, 2.0);
        let mut bp = vec![0.0f32; packed_len(k, n)];
        pack_b(&mut bp, &b, k, n);
        for kk in 0..k {
            for j in 0..n {
                let p = j / NR;
                let packed = bp[p * k * NR + kk * NR + (j % NR)];
                assert_eq!(packed, b[kk * n + j], "({kk},{j})");
            }
        }
        // Edge-panel padding lanes must be zero.
        let p = n / NR;
        for kk in 0..k {
            for j in n % NR..NR {
                assert_eq!(bp[p * k * NR + kk * NR + j], 0.0);
            }
        }
    }

    #[test]
    fn gemm_nn_matches_naive_on_both_paths() {
        let (m, k, n) = (9, 13, 21);
        let a = seq_f32(m * k, 0.3, 1.5);
        let b = seq_f32(k * n, 0.2, 2.0);
        let mut bp = vec![0.0f32; packed_len(k, n)];
        pack_b(&mut bp, &b, k, n);
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                naive[i * n + j] = acc;
            }
        }
        for forced in [true, false] {
            crate::simd::force_scalar(forced);
            let mut out = vec![0.0f32; m * n];
            gemm_nn(&mut out, &a, &bp, m, k, n);
            for (g, e) in out.iter().zip(&naive) {
                assert!((g - e).abs() <= 1e-4 * (1.0 + e.abs()), "{g} vs {e}");
            }
        }
        crate::simd::force_scalar(false);
    }

    #[test]
    fn lane_structured_reductions_are_bitwise_equal_across_isas() {
        let src = seq_f32(1003, 0.37, 4.0);
        crate::simd::force_scalar(true);
        let (s_sum, s_sq) = (sum(&src), sum_sq(&src));
        crate::simd::force_scalar(false);
        let (d_sum, d_sq) = (sum(&src), sum_sq(&src));
        assert_eq!(s_sum.to_bits(), d_sum.to_bits());
        assert_eq!(s_sq.to_bits(), d_sq.to_bits());
    }
}
