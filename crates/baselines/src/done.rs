//! DONE (Bandyopadhyay et al., WSDM 2020): outlier-resistant deep network
//! embedding via twin MLP autoencoders with homophily losses.

use std::rc::Rc;

use rand::Rng;
use vgod_autograd::{persist, ParamStore, Tape, Var};
use vgod_eval::{combine_mean_std, OutlierDetector, Scores};
use vgod_gnn::GraphContext;
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_nn::{row_reconstruction_errors, Activation, Mlp, Trainer};
use vgod_tensor::{Csr, Matrix};

use crate::common::DeepConfig;

/// DONE: an attribute autoencoder over `X` and a structure autoencoder over
/// each node's aggregated neighbourhood profile, tied together by homophily
/// losses that pull a node's embedding toward its neighbours' mean.
///
/// The original encodes raw `n`-dimensional adjacency rows; for
/// scalability this implementation encodes the mean-aggregated attribute
/// profile `D⁻¹AX` (`K = deg` sampled neighbours in the original's
/// `O(|V|K)` complexity, Table II), which preserves the structure-channel /
/// attribute-channel split and the homophily coupling that define the
/// model. Outlier scores follow the original's decomposition: per-node
/// reconstruction and homophily errors from each channel, normalised and
/// summed.
#[derive(Clone, Debug)]
pub struct Done {
    cfg: DeepConfig,
    state: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    store: ParamStore,
    attr_enc: Mlp,
    attr_dec: Mlp,
    struct_enc: Mlp,
    struct_dec: Mlp,
    in_dim: usize,
}

struct ForwardOut {
    za: Var,
    xhat: Var,
    zs: Var,
    shat: Var,
}

impl Done {
    /// A DONE model with the given shared config.
    pub fn new(cfg: DeepConfig) -> Self {
        Self { cfg, state: None }
    }

    fn forward(state: &State, tape: &Tape, x: &Var, s: &Var) -> ForwardOut {
        forward_parts(
            &state.attr_enc,
            &state.attr_dec,
            &state.struct_enc,
            &state.struct_dec,
            &state.store,
            tape,
            x,
            s,
        )
    }

    /// Homophily penalty: `‖z_u − mean_{v∈N(u)} z_v‖²` per node, summed.
    fn homophily_loss(z: &Var, mean_adj: &Rc<Csr>) -> Var {
        z.sub(&z.spmm(mean_adj)).square().mean_all()
    }

    /// Build the twin autoencoders for input dimension `d`, consuming `rng`
    /// draws in the fixed constructor order checkpoint loading replays. The
    /// bottleneck width is derived from `d` exactly as `fit` derives it.
    fn build_state(cfg: &DeepConfig, d: usize, rng: &mut impl Rng) -> State {
        let h = cfg.hidden.min((d / 2).max(2));
        let mut store = ParamStore::new();
        let attr_enc = Mlp::new(&mut store, &[d, h, h], Activation::Relu, true, rng);
        let attr_dec = Mlp::new(&mut store, &[h, h, d], Activation::Relu, true, rng);
        let struct_enc = Mlp::new(&mut store, &[d, h, h], Activation::Relu, true, rng);
        let struct_dec = Mlp::new(&mut store, &[h, h, d], Activation::Relu, true, rng);
        State {
            store,
            attr_enc,
            attr_dec,
            struct_enc,
            struct_dec,
            in_dim: d,
        }
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self.state.as_ref().expect("Done::save called before fit");
        writeln!(out, "# vgod-done v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[
                ("hidden", self.cfg.hidden.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("in_dim", state.in_dim.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`Done::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Done, String> {
        persist::expect_magic(input, "# vgod-done v1")?;
        let map = persist::read_header(input)?;
        let cfg = DeepConfig {
            hidden: persist::header_get(&map, "hidden")?,
            epochs: persist::header_get(&map, "epochs")?,
            lr: persist::header_get(&map, "lr")?,
            seed: persist::header_get(&map, "seed")?,
        };
        let in_dim: usize = persist::header_get(&map, "in_dim")?;
        let loaded = ParamStore::read_text(input)?;
        let mut rng = seeded_rng(cfg.seed);
        let mut state = Self::build_state(&cfg, in_dim, &mut rng);
        persist::copy_store_values(&mut state.store, &loaded)?;
        let mut model = Done::new(cfg);
        model.state = Some(state);
        Ok(model)
    }
}

impl Default for Done {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

#[allow(clippy::too_many_arguments)]
fn forward_parts(
    attr_enc: &Mlp,
    attr_dec: &Mlp,
    struct_enc: &Mlp,
    struct_dec: &Mlp,
    store: &ParamStore,
    tape: &Tape,
    x: &Var,
    s: &Var,
) -> ForwardOut {
    let za = attr_enc.forward(tape, store, x);
    let xhat = attr_dec.forward(tape, store, &za);
    let zs = struct_enc.forward(tape, store, s);
    let shat = struct_dec.forward(tape, store, &zs);
    ForwardOut { za, xhat, zs, shat }
}

impl OutlierDetector for Done {
    fn name(&self) -> &'static str {
        "DONE"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let d = g.num_attrs();
        // A genuine bottleneck is essential: with a code dimension ≥ d the
        // MLP autoencoder can learn the identity map and the reconstruction
        // error carries no outlier signal.
        let h = self.cfg.hidden.min((d / 2).max(2));
        let mut store = ParamStore::new();
        let attr_enc = Mlp::new(&mut store, &[d, h, h], Activation::Relu, true, &mut rng);
        let attr_dec = Mlp::new(&mut store, &[h, h, d], Activation::Relu, true, &mut rng);
        let struct_enc = Mlp::new(&mut store, &[d, h, h], Activation::Relu, true, &mut rng);
        let struct_dec = Mlp::new(&mut store, &[h, h, d], Activation::Relu, true, &mut rng);

        let mean_adj = GraphContext::of(g).mean().clone();
        let x = g.attrs().clone();
        let s_profile = mean_adj.spmm(&x); // neighbourhood profile D⁻¹AX
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let xv = tape.constant(x.clone());
                let sv = tape.constant(s_profile.clone());
                let out = forward_parts(
                    &attr_enc,
                    &attr_dec,
                    &struct_enc,
                    &struct_dec,
                    store,
                    tape,
                    &xv,
                    &sv,
                );
                let l_attr = out.xhat.sub(&xv).square().mean_all();
                let l_struct = out.shat.sub(&sv).square().mean_all();
                let l_hom_a = Self::homophily_loss(&out.za, &mean_adj);
                let l_hom_s = Self::homophily_loss(&out.zs, &mean_adj);
                l_attr.add(&l_struct).add(&l_hom_a.add(&l_hom_s).scale(0.5))
            },
            |_, _, _| {},
        );
        self.state = Some(State {
            store,
            attr_enc,
            attr_dec,
            struct_enc,
            struct_dec,
            in_dim: d,
        });
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let state = self.state.as_ref().expect("Done::score called before fit");
        assert_eq!(g.num_attrs(), state.in_dim, "attribute dimension mismatch");
        let mean_adj = GraphContext::of(g).mean().clone();
        let x = g.attrs().clone();
        let s_profile = mean_adj.spmm(&x);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let sv = tape.constant(s_profile.clone());
        let out = Self::forward(state, &tape, &xv, &sv);

        let attr_err = row_reconstruction_errors(&out.xhat.value(), &x);
        // Per-channel homophily errors (DONE's o₃/o₄ terms): a node whose
        // embedding disagrees with its neighbours' mean is anomalous in
        // that channel. This, not raw reconstruction, is what catches
        // contextual outliers whose swapped-in attributes are drawn from
        // the global population.
        let homophily = |z: &Matrix| -> Vec<f32> {
            let diff = z.sub(&mean_adj.spmm(z));
            diff.row_sq_norms().into_vec()
        };
        let hom_s = homophily(&out.zs.value());
        let hom_a = homophily(&out.za.value());
        // Structural signal: input-space homophily deviation
        // ‖x_u − (ĀX)_u‖² (the residual DONE's structure AE fails to
        // explain for nodes whose neighbourhoods disagree with them) plus
        // the embedding-space homophily error. Note the *reconstruction*
        // error of the aggregated profile is anti-correlated for clique
        // outliers — their mixed profile sits near the global mean, which
        // a bottleneck AE reconstructs best — so it is deliberately left
        // out of the score (it remains part of the training objective).
        let input_deviation: Vec<f32> = x.sub(&s_profile).row_sq_norms().into_vec();
        // Squared-error scores are heavy-tailed (a handful of extreme nodes
        // would dominate a z-score and erase everyone else's ranking), so
        // log-compress each component before mean-std combination.
        let ln1p = |v: &[f32]| -> Vec<f32> { v.iter().map(|&s| (1.0 + s.max(0.0)).ln()).collect() };
        let struct_component: Vec<f32> = combine_mean_std(&ln1p(&input_deviation), &ln1p(&hom_s));
        let attr_component: Vec<f32> = combine_mean_std(&ln1p(&attr_err), &ln1p(&hom_a));
        let combined = combine_mean_std(&struct_component, &attr_component);
        Scores {
            combined,
            structural: Some(struct_component),
            contextual: Some(attr_component),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};

    #[test]
    fn beats_random_on_standard_injection() {
        let mut rng = seeded_rng(5);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(220, 4, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 8,
        };
        let cp = ContextualParams {
            count: 16,
            candidates: 30,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);

        let mut model = Done::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.6, "DONE AUC = {a}");
        assert!(scores.structural.is_some() && scores.contextual.is_some());
    }
}
