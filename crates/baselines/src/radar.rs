//! Radar-style residual analysis (Li et al., IJCAI 2017) — the
//! representative *non-deep* baseline family the paper's related work
//! discusses (and reports as uniformly weaker than the deep models under
//! injection).

use vgod_autograd::{persist, ParamStore};
use vgod_eval::{
    refit_score_store, refit_score_store_range, DeltaCapability, OutlierDetector, RangeScores,
    Scores,
};
use vgod_gnn::GraphContext;
use vgod_graph::{seeded_rng, AttributedGraph, GraphStore, SamplingConfig};
use vgod_nn::Trainer;
use vgod_tensor::Matrix;

use crate::common::DeepConfig;

/// Radar: learn a structure-coherent representation of the attribute
/// matrix with a graph-smoothed residual, `X ≈ (Ā X) W + R` (each node
/// explained from its neighbourhood attribute profile), minimising
///
/// `‖X − ĀXW − R‖²_F + α‖W‖²_F + β‖R‖²_F + γ·tr(Rᵀ L R)`
///
/// and score node `i` by its residual norm `‖r_i‖₂` — attributes that the
/// graph's attribute coherence cannot explain.
///
/// The original solves an `n × n` self-representation with closed-form
/// alternating updates; this implementation uses a scalable variant (a
/// `d × d` map from the aggregated neighbourhood profile `ĀX`) optimised
/// by Adam, which preserves the paper's residual-analysis mechanism —
/// "residuals of attribute information and its coherence with graph
/// structure" — at `O(nd² + |E|d)` per iteration.
#[derive(Clone, Debug)]
pub struct Radar {
    cfg: DeepConfig,
    /// `α` — representation shrinkage.
    pub alpha: f32,
    /// `β` — residual shrinkage (forces most residuals toward zero).
    pub beta: f32,
    /// `γ` — Laplacian smoothing of residuals along edges.
    pub gamma: f32,
    scores: Option<Vec<f32>>,
    n_fit: usize,
}

impl Radar {
    /// A Radar model with the given optimisation budget.
    pub fn new(cfg: DeepConfig) -> Self {
        Self {
            cfg,
            alpha: 0.1,
            beta: 0.5,
            gamma: 0.5,
            scores: None,
            n_fit: 0,
        }
    }

    /// Write a fitted model as a plain-text checkpoint. Radar is
    /// transductive, so its entire fitted state is the residual-norm score
    /// vector — serialised as one `n_fit × 1` matrix in a [`ParamStore`].
    ///
    /// # Panics
    /// Panics if the model is unfitted.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let scores = self.scores.as_ref().expect("Radar::save called before fit");
        writeln!(out, "# vgod-radar v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[
                ("hidden", self.cfg.hidden.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("alpha", self.alpha.to_string()),
                ("beta", self.beta.to_string()),
                ("gamma", self.gamma.to_string()),
                ("n_fit", self.n_fit.to_string()),
            ])
        )?;
        let mut store = ParamStore::new();
        store.insert(Matrix::from_fn(self.n_fit, 1, |r, _| scores[r]));
        store.write_text(out)
    }

    /// Read a checkpoint written by [`Radar::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Radar, String> {
        persist::expect_magic(input, "# vgod-radar v1")?;
        let map = persist::read_header(input)?;
        let cfg = DeepConfig {
            hidden: persist::header_get(&map, "hidden")?,
            epochs: persist::header_get(&map, "epochs")?,
            lr: persist::header_get(&map, "lr")?,
            seed: persist::header_get(&map, "seed")?,
        };
        let n_fit: usize = persist::header_get(&map, "n_fit")?;
        let mut template = ParamStore::new();
        let id = template.insert(Matrix::zeros(n_fit, 1));
        let loaded = ParamStore::read_text(input)?;
        persist::copy_store_values(&mut template, &loaded)?;
        let mut model = Radar::new(cfg);
        model.alpha = persist::header_get(&map, "alpha")?;
        model.beta = persist::header_get(&map, "beta")?;
        model.gamma = persist::header_get(&map, "gamma")?;
        model.scores = Some(template.value(id).as_slice().to_vec());
        model.n_fit = n_fit;
        Ok(model)
    }
}

impl Default for Radar {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

impl OutlierDetector for Radar {
    fn name(&self) -> &'static str {
        "Radar"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let n = g.num_nodes();
        let d = g.num_attrs();
        let mut store = ParamStore::new();
        let w = store.insert(vgod_nn::glorot_uniform(d, d, &mut rng).scale(0.1));
        let r = store.insert(Matrix::zeros(n, d));

        let x = g.attrs().clone();
        let ctx = GraphContext::of(g);
        let sym = ctx.gcn().clone();
        let profile = ctx.mean().spmm(&x); // Ā X, fixed per graph
        let (alpha, beta, gamma) = (self.alpha, self.beta, self.gamma);
        Trainer::new(self.cfg.epochs, self.cfg.lr.max(0.01)).run(
            &mut store,
            |tape, _, store| {
                let xv = tape.constant(x.clone());
                let pv = tape.constant(profile.clone());
                let wv = tape.param(store, w);
                let rv = tape.param(store, r);
                let recon = xv.sub(&pv.matmul(&wv)).sub(&rv).square().sum_all();
                let w_reg = wv.square().sum_all().scale(alpha);
                let r_reg = rv.square().sum_all().scale(beta);
                // tr(Rᵀ L R) with L = I − Â: penalises residuals that differ
                // from their neighbours' — genuine outliers stand out, noise
                // gets smoothed away.
                let smooth = rv.mul(&rv.sub(&rv.spmm(&sym))).sum_all().scale(gamma);
                recon
                    .add(&w_reg)
                    .add(&r_reg)
                    .add(&smooth)
                    .scale(1.0 / n as f32)
            },
            |_, _, _| {},
        );
        // Residual norms are the outlier scores (Radar is transductive:
        // the residual matrix is tied to the training graph's nodes).
        self.scores = Some(store.value(r).row_norms().into_vec());
        self.n_fit = n;
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let scores = self
            .scores
            .as_ref()
            .expect("Radar::score called before fit");
        assert_eq!(
            g.num_nodes(),
            self.n_fit,
            "Radar is transductive-only: node count must match the training graph"
        );
        Scores::combined_only(scores.clone())
    }

    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        // Radar's residual matrix is tied to the fitted node set, so the
        // generic batched path (global model, sampled subgraphs) cannot
        // apply. Each batch neighbourhood becomes its own small
        // transductive problem instead: refit-and-score per batch.
        refit_score_store(self, store, cfg)
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        // Refit-per-batch is embarrassingly range-parallel: each batch is
        // its own transductive problem, so shards just split the batches.
        refit_score_store_range(self, store, cfg, lo, hi)
    }

    fn delta_capability(&self) -> DeltaCapability {
        // Transductive: the learned residual matrix R is sized to the
        // training graph, so any mutation forces a refit.
        DeltaCapability::Refit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_contextual, ContextualParams, DistanceMetric, GroundTruth};

    #[test]
    fn residuals_flag_contextual_outliers() {
        let mut rng = seeded_rng(8);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(200, 4, 5.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 10, 4.0, 0.4, &mut rng);
        g.set_attrs(x);
        let mut truth = GroundTruth::new(200);
        inject_contextual(
            &mut g,
            &mut truth,
            &ContextualParams {
                count: 12,
                candidates: 40,
                metric: DistanceMetric::Euclidean,
            },
            &mut rng,
        );
        let mut radar = Radar::new(DeepConfig {
            epochs: 150,
            lr: 0.05,
            ..DeepConfig::fast()
        });
        let scores = radar.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.7, "Radar AUC on contextual outliers = {a}");
    }

    #[test]
    #[should_panic(expected = "transductive-only")]
    fn rejects_different_graph() {
        let mut rng = seeded_rng(9);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(60, 3, 4.0, 0.9),
            &mut rng,
        );
        g.set_attrs(Matrix::zeros(60, 5));
        let mut radar = Radar::new(DeepConfig {
            epochs: 2,
            ..DeepConfig::fast()
        });
        radar.fit(&g);
        let mut g2 = community_graph(
            &CommunityGraphConfig::homogeneous(80, 4, 4.0, 0.9),
            &mut rng,
        );
        g2.set_attrs(Matrix::zeros(80, 5));
        let _ = radar.score(&g2);
    }
}
