//! CONAD (Xu et al., PAKDD 2022): contrastive attributed-network anomaly
//! detection with human-knowledge-modelled data augmentation.

use vgod_autograd::{persist, ParamStore, Tape, Var};
use vgod_eval::{OutlierDetector, Scores};
use vgod_gnn::{GcnLayer, GraphContext};
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_nn::{row_reconstruction_errors, Trainer};
use vgod_tensor::Matrix;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{per_node_structure_errors, structure_loss, DeepConfig, EdgeSample};

/// The four knowledge-modelled augmentation strategies of CONAD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Augmentation {
    /// Attach many new edges to the node (high-degree anomaly).
    HighDegree,
    /// Drop most of the node's edges (isolation anomaly).
    Isolation,
    /// Replace attributes with far-away values (deviated attributes).
    DeviatedAttrs,
    /// Scale a few attribute dimensions to extremes (disproportion).
    Disproportion,
}

const AUGMENTATIONS: [Augmentation; 4] = [
    Augmentation::HighDegree,
    Augmentation::Isolation,
    Augmentation::DeviatedAttrs,
    Augmentation::Disproportion,
];

/// CONAD: a siamese GCN encoder contrasts each node's embedding in the
/// original graph against its embedding in an *augmented* graph where a
/// random subset of nodes received synthetic anomalies; augmented nodes are
/// pushed apart, untouched nodes pulled together. A DOMINANT-style
/// reconstruction head provides the outlier scores.
#[derive(Clone, Debug)]
pub struct Conad {
    cfg: DeepConfig,
    /// Fraction of nodes anomalised per augmented view.
    pub augment_ratio: f32,
    /// Weight of the contrastive term against the reconstruction term.
    pub eta: f32,
    state: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    store: ParamStore,
    enc1: GcnLayer,
    enc2: GcnLayer,
    attr_dec: GcnLayer,
    in_dim: usize,
}

impl Conad {
    /// A CONAD model with the given shared config.
    pub fn new(cfg: DeepConfig) -> Self {
        Self {
            cfg,
            augment_ratio: 0.1,
            eta: 0.5,
            state: None,
        }
    }

    fn encode(state: &State, tape: &Tape, x: &Var, ctx: &GraphContext) -> Var {
        encode_parts(&state.enc1, &state.enc2, &state.store, tape, x, ctx)
    }

    /// Build an augmented copy of `g`, returning it together with the mask
    /// of anomalised nodes.
    fn augment(&self, g: &AttributedGraph, rng: &mut impl Rng) -> (AttributedGraph, Vec<bool>) {
        let n = g.num_nodes();
        let mut aug = g.clone();
        let mut mask = vec![false; n];
        let count = ((n as f32 * self.augment_ratio) as usize).max(1);
        let mut nodes: Vec<u32> = (0..n as u32).collect();
        nodes.shuffle(rng);
        for &u in nodes.iter().take(count) {
            mask[u as usize] = true;
            match AUGMENTATIONS[rng.gen_range(0..AUGMENTATIONS.len())] {
                Augmentation::HighDegree => {
                    for _ in 0..10 {
                        let v = rng.gen_range(0..n as u32);
                        aug.add_edge(u, v);
                    }
                }
                Augmentation::Isolation => {
                    let nbrs: Vec<u32> = aug.neighbors(u).to_vec();
                    for v in nbrs.into_iter().skip(1) {
                        aug.remove_edge(u, v);
                    }
                }
                Augmentation::DeviatedAttrs => {
                    let other = rng.gen_range(0..n);
                    let replacement: Vec<f32> =
                        g.attrs().row(other).iter().map(|&v| v * 3.0).collect();
                    aug.attrs_mut()
                        .row_mut(u as usize)
                        .copy_from_slice(&replacement);
                }
                Augmentation::Disproportion => {
                    let d = aug.num_attrs();
                    for _ in 0..(d / 4).max(1) {
                        let c = rng.gen_range(0..d);
                        let row = aug.attrs_mut().row_mut(u as usize);
                        row[c] *= 10.0;
                    }
                }
            }
        }
        (aug, mask)
    }

    /// Build the siamese encoder + reconstruction head for input dimension
    /// `d`, consuming `rng` draws in the fixed constructor order checkpoint
    /// loading replays.
    fn build_state(cfg: &DeepConfig, d: usize, rng: &mut impl Rng) -> State {
        let h = cfg.hidden;
        let mut store = ParamStore::new();
        let enc1 = GcnLayer::new(&mut store, d, h, rng);
        let enc2 = GcnLayer::new(&mut store, h, h, rng);
        let attr_dec = GcnLayer::new(&mut store, h, d, rng);
        State {
            store,
            enc1,
            enc2,
            attr_dec,
            in_dim: d,
        }
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self.state.as_ref().expect("Conad::save called before fit");
        writeln!(out, "# vgod-conad v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[
                ("hidden", self.cfg.hidden.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("augment_ratio", self.augment_ratio.to_string()),
                ("eta", self.eta.to_string()),
                ("in_dim", state.in_dim.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`Conad::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Conad, String> {
        persist::expect_magic(input, "# vgod-conad v1")?;
        let map = persist::read_header(input)?;
        let cfg = DeepConfig {
            hidden: persist::header_get(&map, "hidden")?,
            epochs: persist::header_get(&map, "epochs")?,
            lr: persist::header_get(&map, "lr")?,
            seed: persist::header_get(&map, "seed")?,
        };
        let augment_ratio: f32 = persist::header_get(&map, "augment_ratio")?;
        let eta: f32 = persist::header_get(&map, "eta")?;
        let in_dim: usize = persist::header_get(&map, "in_dim")?;
        let loaded = ParamStore::read_text(input)?;
        let mut rng = seeded_rng(cfg.seed);
        let mut state = Self::build_state(&cfg, in_dim, &mut rng);
        persist::copy_store_values(&mut state.store, &loaded)?;
        let mut model = Conad::new(cfg);
        model.augment_ratio = augment_ratio;
        model.eta = eta;
        model.state = Some(state);
        Ok(model)
    }
}

impl Default for Conad {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

fn encode_parts(
    enc1: &GcnLayer,
    enc2: &GcnLayer,
    store: &ParamStore,
    tape: &Tape,
    x: &Var,
    ctx: &GraphContext,
) -> Var {
    let z = enc1.forward(tape, store, x, ctx).relu();
    enc2.forward(tape, store, &z, ctx).relu()
}

impl OutlierDetector for Conad {
    fn name(&self) -> &'static str {
        "CONAD"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let d = g.num_attrs();
        let State {
            mut store,
            enc1,
            enc2,
            attr_dec,
            in_dim,
        } = Self::build_state(&self.cfg, d, &mut rng);

        let ctx = GraphContext::of(g);
        let x = g.attrs().clone();
        let eta = self.eta;
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let (aug_graph, aug_mask) = self.augment(g, &mut rng);
                // The augmented context is cached on the augmented graph
                // itself and its views build lazily, so only the GCN view
                // the encoder actually touches is materialised per view.
                let aug_ctx = GraphContext::of(&aug_graph);
                let sample = EdgeSample::from_graph(g, &mut rng);

                let xv = tape.constant(x.clone());
                let xv_aug = tape.constant(aug_graph.attrs().clone());
                let z = encode_parts(&enc1, &enc2, store, tape, &xv, &ctx);
                let z_aug = encode_parts(&enc1, &enc2, store, tape, &xv_aug, &aug_ctx);

                // Siamese contrast: untouched nodes agree across views,
                // anomalised nodes disagree (margin through sigmoid of the
                // squared distance).
                let dist = z.sub(&z_aug).square().row_sum();
                let sim = dist.neg().exp(); // 1 when identical, → 0 when far
                let target = tape.constant(Matrix::from_fn(g.num_nodes(), 1, |r, _| {
                    if aug_mask[r] {
                        0.0
                    } else {
                        1.0
                    }
                }));
                let contrast = sim.sub(&target).square().mean_all();

                // DOMINANT-style reconstruction head on the clean view.
                let xhat = attr_dec.forward(tape, store, &z, &ctx);
                let attr_loss = xhat.sub(&xv).square().mean_all();
                let s_loss = structure_loss(&z, &sample);
                let recon = attr_loss.scale(0.7).add(&s_loss.scale(0.3));

                recon.add(&contrast.scale(eta))
            },
            |_, _, _| {},
        );
        self.state = Some(State {
            store,
            enc1,
            enc2,
            attr_dec,
            in_dim,
        });
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let state = self.state.as_ref().expect("Conad::score called before fit");
        assert_eq!(g.num_attrs(), state.in_dim, "attribute dimension mismatch");
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let ctx = GraphContext::of(g);
        let tape = Tape::new();
        let xv = tape.constant(g.attrs().clone());
        let z = Self::encode(state, &tape, &xv, &ctx);
        let xhat = state.attr_dec.forward(&tape, &state.store, &z, &ctx);
        let attr_err = row_reconstruction_errors(&xhat.value(), g.attrs());
        let struct_err = per_node_structure_errors(&z.value(), g, &mut rng);
        let combined: Vec<f32> = attr_err
            .iter()
            .zip(&struct_err)
            .map(|(&a, &s)| 0.7 * a + 0.3 * s)
            .collect();
        Scores {
            combined,
            structural: Some(struct_err),
            contextual: Some(attr_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};

    #[test]
    fn beats_random_on_standard_injection() {
        let mut rng = seeded_rng(6);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(220, 4, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 8,
        };
        let cp = ContextualParams {
            count: 16,
            candidates: 30,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);

        let mut model = Conad::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.6, "CONAD AUC = {a}");
    }

    #[test]
    fn augmentation_marks_requested_fraction() {
        let mut rng = seeded_rng(7);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(200, 4, 4.0, 0.9),
            &mut rng,
        );
        g.set_attrs(Matrix::filled(200, 8, 1.0));
        let model = Conad::new(DeepConfig::fast());
        let (aug, mask) = model.augment(&g, &mut rng);
        let marked = mask.iter().filter(|&&m| m).count();
        assert_eq!(marked, 20);
        assert!(aug.check_invariants());
        // At least one node's attributes or structure actually changed.
        let changed = (0..200u32).any(|u| {
            aug.attrs().row(u as usize) != g.attrs().row(u as usize)
                || aug.neighbors(u) != g.neighbors(u)
        });
        assert!(changed);
    }
}
