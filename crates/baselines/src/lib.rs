//! # vgod-baselines
//!
//! Every baseline detector the VGOD paper compares against (Table II), from
//! scratch on the `vgod-autograd` engine:
//!
//! | Detector | Family | Paper reference |
//! |---|---|---|
//! | [`Dominant`] | GCN autoencoders over attributes + structure | Ding et al., SDM'19 |
//! | [`AnomalyDae`] | Dual (structure/attribute) autoencoders with attention | Fan et al., ICASSP'20 |
//! | [`Done`] | MLP autoencoders with homophily losses | Bandyopadhyay et al., WSDM'20 |
//! | [`Cola`] | Contrastive node-vs-local-patch discrimination | Liu et al., TNNLS'21 |
//! | [`Conad`] | Augmentation-based contrastive + reconstruction | Xu et al., PAKDD'22 |
//! | [`DegNorm`] | node degree + attribute L2-norm (leakage probe) | the paper's §VI-A2 |
//! | [`Deg`] / [`L2Norm`] | single leaked signal | §VI-C2 / Fig. 2 |
//! | [`RandomDetector`] | uniform noise control | Fig. 2 |
//!
//! ## Scalability substitution (documented in DESIGN.md §1)
//!
//! The original DOMINANT / AnomalyDAE / CONAD decode the full adjacency
//! matrix (`σ(ZZᵀ)` vs `A`, `O(|V|²)`). Here structure reconstruction is
//! evaluated on the real edges plus an equal number of sampled non-edges —
//! the standard negative-sampling approximation of the same objective —
//! so the baselines run at every dataset scale. The models' inductive
//! biases (what the paper actually compares) are unchanged; the DOMINANT
//! unit tests verify rank agreement between the sampled and exact decoders
//! on a small graph.

#![warn(missing_docs)]

mod anomaly_dae;
mod cola;
mod common;
mod conad;
mod dominant;
mod done;
mod guide;
mod radar;
mod simple;

pub use anomaly_dae::AnomalyDae;
pub use cola::Cola;
pub use common::DeepConfig;
pub use conad::Conad;
pub use dominant::Dominant;
pub use done::Done;
pub use guide::Guide;
pub use radar::Radar;
pub use simple::{Deg, DegNorm, L2Norm, RandomDetector};
