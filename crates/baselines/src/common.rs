//! Shared plumbing for the deep baselines.

use std::rc::Rc;

use rand::Rng;
use vgod_autograd::Var;
use vgod_graph::AttributedGraph;
use vgod_tensor::Matrix;

/// Hyperparameters shared by every deep baseline. Defaults follow the
/// common settings in the respective papers / the BOND benchmark.
#[derive(Clone, Debug)]
pub struct DeepConfig {
    /// Hidden embedding dimension.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed (initialisation and sampling).
    pub seed: u64,
}

impl Default for DeepConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            epochs: 60,
            lr: 0.005,
            seed: 0,
        }
    }
}

impl DeepConfig {
    /// Reduced-cost settings for tests.
    pub fn fast() -> Self {
        Self {
            hidden: 16,
            epochs: 25,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// A positive/negative edge sample for negative-sampled structure decoding:
/// the graph's directed edges plus an equal number of sampled non-edges.
#[derive(Clone, Debug)]
pub struct EdgeSample {
    /// Sources of real edges.
    pub pos_src: Rc<Vec<u32>>,
    /// Destinations of real edges.
    pub pos_dst: Rc<Vec<u32>>,
    /// Sources of sampled non-edges.
    pub neg_src: Rc<Vec<u32>>,
    /// Destinations of sampled non-edges.
    pub neg_dst: Rc<Vec<u32>>,
}

impl EdgeSample {
    /// Sample from `g`: all directed edges as positives, degree-matched
    /// uniform non-edges as negatives.
    pub fn from_graph(g: &AttributedGraph, rng: &mut impl Rng) -> Self {
        let mut pos_src = Vec::new();
        let mut pos_dst = Vec::new();
        for (u, v) in g.directed_edges() {
            pos_src.push(u);
            pos_dst.push(v);
        }
        let mut neg_src = Vec::new();
        let mut neg_dst = Vec::new();
        for (u, v) in g.negative_edges(rng) {
            neg_src.push(u);
            neg_dst.push(v);
        }
        Self {
            pos_src: Rc::new(pos_src),
            pos_dst: Rc::new(pos_dst),
            neg_src: Rc::new(neg_src),
            neg_dst: Rc::new(neg_dst),
        }
    }
}

/// Edge-probability scores `σ(z_uᵀ z_v)` for an edge list, as an `m × 1`
/// variable (differentiable in `z`).
pub fn edge_probabilities(z: &Var, src: &Rc<Vec<u32>>, dst: &Rc<Vec<u32>>) -> Var {
    z.gather_rows(src)
        .mul(&z.gather_rows(dst))
        .row_sum()
        .sigmoid()
}

/// Negative-sampled structure reconstruction loss (the scalable stand-in
/// for `‖A − σ(ZZᵀ)‖²_F`): real edges should decode to 1, sampled
/// non-edges to 0.
pub fn structure_loss(z: &Var, sample: &EdgeSample) -> Var {
    let tape = z.tape();
    let pos = edge_probabilities(z, &sample.pos_src, &sample.pos_dst);
    let ones = tape.constant(Matrix::filled(sample.pos_src.len(), 1, 1.0));
    let pos_loss = pos.sub(&ones).square().mean_all();
    let neg = edge_probabilities(z, &sample.neg_src, &sample.neg_dst);
    let neg_loss = neg.square().mean_all();
    pos_loss.add(&neg_loss)
}

/// Per-node structure reconstruction error at inference time (plain
/// matrices): the mean squared decode error of each node's incident real
/// edges and sampled non-edges.
pub fn per_node_structure_errors(z: &Matrix, g: &AttributedGraph, rng: &mut impl Rng) -> Vec<f32> {
    /// Negative-sampling rounds averaged at inference; multiple rounds cut
    /// the sampling variance of the non-edge term.
    const ROUNDS: usize = 4;
    let n = g.num_nodes();
    let mut err = vec![0.0f32; n];
    let mut cnt = vec![0u32; n];
    let dot_sigmoid = |u: u32, v: u32| -> f32 {
        let d: f32 = z
            .row(u as usize)
            .iter()
            .zip(z.row(v as usize))
            .map(|(&a, &b)| a * b)
            .sum();
        1.0 / (1.0 + (-d).exp())
    };
    for (u, v) in g.directed_edges() {
        let e = 1.0 - dot_sigmoid(u, v);
        err[u as usize] += ROUNDS as f32 * e * e;
        cnt[u as usize] += ROUNDS as u32;
    }
    for _ in 0..ROUNDS {
        for (u, v) in g.negative_edges(rng) {
            let e = dot_sigmoid(u, v);
            err[u as usize] += e * e;
            cnt[u as usize] += 1;
        }
    }
    for i in 0..n {
        if cnt[i] > 0 {
            err[i] /= cnt[i] as f32;
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_autograd::Tape;
    use vgod_graph::seeded_rng;

    fn path(n: usize) -> AttributedGraph {
        let mut g = AttributedGraph::new(Matrix::zeros(n, 1));
        for i in 0..n as u32 - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn edge_sample_is_degree_matched() {
        let mut rng = seeded_rng(0);
        let g = path(20);
        let s = EdgeSample::from_graph(&g, &mut rng);
        assert_eq!(s.pos_src.len(), 2 * g.num_edges());
        assert_eq!(s.neg_src.len(), s.pos_src.len());
    }

    #[test]
    fn structure_loss_favors_correct_embeddings() {
        // Embeddings where connected nodes align and others anti-align
        // should produce lower loss than random ones.
        let mut rng = seeded_rng(1);
        let mut g = AttributedGraph::new(Matrix::zeros(4, 1));
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let s = EdgeSample::from_graph(&g, &mut rng);
        let tape = Tape::new();
        let good = tape.constant(Matrix::from_rows(&[
            &[4.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[0.0, 4.0],
        ]));
        let bad = tape.constant(Matrix::from_rows(&[
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
        ]));
        let lg = structure_loss(&good, &s).value().as_slice()[0];
        let lb = structure_loss(&bad, &s).value().as_slice()[0];
        assert!(lg < lb, "good {lg} !< bad {lb}");
    }

    #[test]
    fn per_node_errors_highlight_badly_embedded_nodes() {
        let mut rng = seeded_rng(2);
        // Two components: {0,1} aligned embeddings (edge decodes right),
        // {2,3} anti-aligned (edge decodes wrong). Cross-component dots are
        // zero, so sampled non-edges contribute identically (σ(0) = 0.5).
        let mut g = AttributedGraph::new(Matrix::zeros(4, 1));
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let z = Matrix::from_rows(&[&[3.0, 0.0], &[3.0, 0.0], &[0.0, 3.0], &[0.0, -3.0]]);
        let errs = per_node_structure_errors(&z, &g, &mut rng);
        assert!(
            errs[3] > errs[0],
            "anti-aligned node should decode worse: {errs:?}"
        );
        assert!(errs[2] > errs[1], "{errs:?}");
    }
}
