//! AnomalyDAE (Fan et al., ICASSP 2020): dual autoencoders — an
//! attention-based structure autoencoder and an attribute autoencoder with
//! cross-modality reconstruction.

use rand::Rng;
use vgod_autograd::{persist, ParamStore, Tape, Var};
use vgod_eval::{
    refit_score_store, refit_score_store_range, DeltaCapability, OutlierDetector, RangeScores,
    Scores,
};
use vgod_gnn::{GatLayer, GraphContext};
use vgod_graph::{seeded_rng, AttributedGraph, GraphStore, SamplingConfig};
use vgod_nn::{Activation, Linear, Trainer};

use crate::common::{per_node_structure_errors, structure_loss, DeepConfig, EdgeSample};

/// AnomalyDAE: a structure autoencoder (linear + GAT encoder, inner-product
/// decoder) and an attribute autoencoder (MLP encoder over the transposed
/// attribute matrix) whose decoder is the cross-modality product
/// `X̂ = Z_v Z_aᵀ`.
///
/// Node embeddings `Z_v` couple into *both* reconstructions, which is the
/// architecture's signature. Note the attribute encoder's input dimension
/// is `|V|` (columns of `Xᵀ`), which is why the original cannot run
/// inductive inference (Table II) — this implementation keeps that
/// honest limitation and panics when scoring a graph with a different node
/// count.
#[derive(Clone, Debug)]
pub struct AnomalyDae {
    cfg: DeepConfig,
    /// Structure-vs-attribute loss balance.
    pub alpha: f32,
    state: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    store: ParamStore,
    node_proj: Linear,
    node_gat: GatLayer,
    attr_enc: Linear,
    in_dim: usize,
    n_nodes: usize,
}

impl AnomalyDae {
    /// An AnomalyDAE with the given shared config and `α = 0.7`.
    pub fn new(cfg: DeepConfig) -> Self {
        Self {
            cfg,
            alpha: 0.7,
            state: None,
        }
    }

    /// Forward pass: node embeddings `Z_v`, attribute embeddings `Z_a`, and
    /// the cross-modality reconstruction `X̂ = Z_v Z_aᵀ`.
    fn forward(state: &State, tape: &Tape, x: &Var, xt: &Var, ctx: &GraphContext) -> (Var, Var) {
        forward_parts(
            &state.node_proj,
            &state.node_gat,
            &state.attr_enc,
            &state.store,
            tape,
            x,
            xt,
            ctx,
        )
    }

    /// Build the architecture for `d` attributes over `n` nodes, consuming
    /// `rng` draws in the fixed constructor order checkpoint loading replays.
    fn build_state(cfg: &DeepConfig, d: usize, n: usize, rng: &mut impl Rng) -> State {
        let mut store = ParamStore::new();
        let node_proj = Linear::new(&mut store, d, cfg.hidden, true, rng);
        let node_gat = GatLayer::new(&mut store, cfg.hidden, cfg.hidden, rng);
        let attr_enc = Linear::new(&mut store, n, cfg.hidden, true, rng);
        State {
            store,
            node_proj,
            node_gat,
            attr_enc,
            in_dim: d,
            n_nodes: n,
        }
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self
            .state
            .as_ref()
            .expect("AnomalyDae::save called before fit");
        writeln!(out, "# vgod-anomalydae v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[
                ("hidden", self.cfg.hidden.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("alpha", self.alpha.to_string()),
                ("in_dim", state.in_dim.to_string()),
                ("n_nodes", state.n_nodes.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`AnomalyDae::save`]. The restored model
    /// keeps the original's transductive restriction: it only scores graphs
    /// with the training node count.
    pub fn load(input: &mut impl std::io::BufRead) -> Result<AnomalyDae, String> {
        persist::expect_magic(input, "# vgod-anomalydae v1")?;
        let map = persist::read_header(input)?;
        let cfg = DeepConfig {
            hidden: persist::header_get(&map, "hidden")?,
            epochs: persist::header_get(&map, "epochs")?,
            lr: persist::header_get(&map, "lr")?,
            seed: persist::header_get(&map, "seed")?,
        };
        let alpha: f32 = persist::header_get(&map, "alpha")?;
        let in_dim: usize = persist::header_get(&map, "in_dim")?;
        let n_nodes: usize = persist::header_get(&map, "n_nodes")?;
        let loaded = ParamStore::read_text(input)?;
        let mut rng = seeded_rng(cfg.seed);
        let mut state = Self::build_state(&cfg, in_dim, n_nodes, &mut rng);
        persist::copy_store_values(&mut state.store, &loaded)?;
        let mut model = AnomalyDae::new(cfg);
        model.alpha = alpha;
        model.state = Some(state);
        Ok(model)
    }
}

#[allow(clippy::too_many_arguments)]
fn forward_parts(
    node_proj: &Linear,
    node_gat: &GatLayer,
    attr_enc: &Linear,
    store: &ParamStore,
    tape: &Tape,
    x: &Var,
    xt: &Var,
    ctx: &GraphContext,
) -> (Var, Var) {
    let zv = {
        let h = Activation::Relu.apply(&node_proj.forward(tape, store, x));
        node_gat.forward(tape, store, &h, ctx)
    };
    let za = Activation::Relu.apply(&attr_enc.forward(tape, store, xt));
    let xhat = zv.matmul_nt(&za);
    (zv, xhat)
}

impl Default for AnomalyDae {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

impl OutlierDetector for AnomalyDae {
    fn name(&self) -> &'static str {
        "AnomalyDAE"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let d = g.num_attrs();
        let n = g.num_nodes();
        let State {
            mut store,
            node_proj,
            node_gat,
            attr_enc,
            in_dim,
            n_nodes,
        } = Self::build_state(&self.cfg, d, n, &mut rng);

        let ctx = GraphContext::of(g);
        let x = g.attrs().clone();
        let xt = x.transpose();
        let alpha = self.alpha;
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let sample = EdgeSample::from_graph(g, &mut rng);
                let xv = tape.constant(x.clone());
                let xtv = tape.constant(xt.clone());
                let (zv, xhat) = forward_parts(
                    &node_proj, &node_gat, &attr_enc, store, tape, &xv, &xtv, &ctx,
                );
                let attr_loss = xhat.sub(&xv).square().mean_all();
                let s_loss = structure_loss(&zv, &sample);
                s_loss.scale(alpha).add(&attr_loss.scale(1.0 - alpha))
            },
            |_, _, _| {},
        );
        self.state = Some(State {
            store,
            node_proj,
            node_gat,
            attr_enc,
            in_dim,
            n_nodes,
        });
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let state = self
            .state
            .as_ref()
            .expect("AnomalyDae::score called before fit");
        assert_eq!(g.num_attrs(), state.in_dim, "attribute dimension mismatch");
        assert_eq!(
            g.num_nodes(),
            state.n_nodes,
            "AnomalyDAE is transductive-only: node count must match the training graph"
        );
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let ctx = GraphContext::of(g);
        let tape = Tape::new();
        let xv = tape.constant(g.attrs().clone());
        let xtv = tape.constant(g.attrs().transpose());
        let (zv, xhat) = Self::forward(state, &tape, &xv, &xtv, &ctx);
        let attr_err = vgod_nn::row_reconstruction_errors(&xhat.value(), g.attrs());
        let struct_err = per_node_structure_errors(&zv.value(), g, &mut rng);
        let combined: Vec<f32> = struct_err
            .iter()
            .zip(&attr_err)
            .map(|(&s, &a)| self.alpha * s + (1.0 - self.alpha) * a)
            .collect();
        Scores {
            combined,
            structural: Some(struct_err),
            contextual: Some(attr_err),
        }
    }

    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        // The attribute encoder's input dimension is |V|, so the fitted
        // model only scores graphs with the training node count. Above the
        // sampling threshold each batch neighbourhood is refitted and
        // scored as its own transductive problem (the per-node combination
        // `α·s + (1−α)·a` is local, so seeds concatenate cleanly).
        refit_score_store(self, store, cfg)
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        // Same refit-per-batch decomposition as `score_store`, restricted
        // to the shard's batches.
        refit_score_store_range(self, store, cfg, lo, hi)
    }

    fn delta_capability(&self) -> DeltaCapability {
        // The attribute autoencoder runs over the transposed n×d matrix —
        // its weights are sized to the node count, so mutations refit.
        DeltaCapability::Refit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};
    use vgod_tensor::Matrix;

    fn injected(seed: u64) -> (AttributedGraph, vgod_inject::GroundTruth) {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(220, 4, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 8,
        };
        let cp = ContextualParams {
            count: 16,
            candidates: 30,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);
        (g, truth)
    }

    #[test]
    fn beats_random_on_standard_injection() {
        let (g, truth) = injected(1);
        let mut model = AnomalyDae::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.6, "AnomalyDAE AUC = {a}");
    }

    #[test]
    #[should_panic(expected = "transductive-only")]
    fn inductive_use_panics() {
        let (g1, _) = injected(2);
        let mut model = AnomalyDae::new(DeepConfig::fast());
        model.fit(&g1);
        // A graph with a different node count must be rejected.
        let mut rng = seeded_rng(9);
        let mut g2 = community_graph(
            &CommunityGraphConfig::homogeneous(150, 3, 4.0, 0.9),
            &mut rng,
        );
        g2.set_attrs(Matrix::zeros(150, 12));
        let _ = model.score(&g2);
    }
}
