//! DOMINANT (Ding et al., SDM 2019): deep autoencoders on GCN layers that
//! jointly reconstruct the attribute matrix and the adjacency matrix.

use rand::Rng;
use vgod_autograd::{persist, ParamStore, Tape, Var};
use vgod_eval::{OutlierDetector, Scores};
use vgod_gnn::{GcnLayer, GraphContext};
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_nn::{row_reconstruction_errors, Trainer};

use crate::common::{per_node_structure_errors, structure_loss, DeepConfig, EdgeSample};

/// DOMINANT: shared GCN encoder, GCN attribute decoder, inner-product
/// structure decoder.
///
/// Loss: `α·‖X − X̂‖² + (1−α)·struct_loss` with `α = 0.8` (the original's
/// default weighting toward attributes). The structure decoder uses the
/// negative-sampled approximation (see crate docs); the
/// [`exact-decoder test`](#method.score) confirms rank agreement on small
/// graphs.
#[derive(Clone, Debug)]
pub struct Dominant {
    cfg: DeepConfig,
    /// Attribute-vs-structure loss weight α.
    pub alpha: f32,
    state: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    store: ParamStore,
    enc1: GcnLayer,
    enc2: GcnLayer,
    attr_dec: GcnLayer,
    in_dim: usize,
}

impl Dominant {
    /// A DOMINANT model with the given shared config and `α = 0.8`.
    pub fn new(cfg: DeepConfig) -> Self {
        Self {
            cfg,
            alpha: 0.8,
            state: None,
        }
    }

    fn forward(state: &State, tape: &Tape, x: &Var, ctx: &GraphContext) -> (Var, Var) {
        forward_parts(
            &state.enc1,
            &state.enc2,
            &state.attr_dec,
            &state.store,
            tape,
            x,
            ctx,
        )
    }

    /// Build the architecture for input dimension `d`, consuming `rng` draws
    /// in the fixed constructor order checkpoint loading replays.
    fn build_state(cfg: &DeepConfig, d: usize, rng: &mut impl Rng) -> State {
        let mut store = ParamStore::new();
        let enc1 = GcnLayer::new(&mut store, d, cfg.hidden, rng);
        let enc2 = GcnLayer::new(&mut store, cfg.hidden, cfg.hidden, rng);
        let attr_dec = GcnLayer::new(&mut store, cfg.hidden, d, rng);
        State {
            store,
            enc1,
            enc2,
            attr_dec,
            in_dim: d,
        }
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self
            .state
            .as_ref()
            .expect("Dominant::save called before fit");
        writeln!(out, "# vgod-dominant v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[
                ("hidden", self.cfg.hidden.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("alpha", self.alpha.to_string()),
                ("in_dim", state.in_dim.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`Dominant::save`], returning a model
    /// ready to score graphs (no retraining).
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Dominant, String> {
        persist::expect_magic(input, "# vgod-dominant v1")?;
        let map = persist::read_header(input)?;
        let cfg = DeepConfig {
            hidden: persist::header_get(&map, "hidden")?,
            epochs: persist::header_get(&map, "epochs")?,
            lr: persist::header_get(&map, "lr")?,
            seed: persist::header_get(&map, "seed")?,
        };
        let alpha: f32 = persist::header_get(&map, "alpha")?;
        let in_dim: usize = persist::header_get(&map, "in_dim")?;
        let loaded = ParamStore::read_text(input)?;
        let mut rng = seeded_rng(cfg.seed);
        let mut state = Self::build_state(&cfg, in_dim, &mut rng);
        persist::copy_store_values(&mut state.store, &loaded)?;
        let mut model = Dominant::new(cfg);
        model.alpha = alpha;
        model.state = Some(state);
        Ok(model)
    }
}

fn forward_parts(
    enc1: &GcnLayer,
    enc2: &GcnLayer,
    attr_dec: &GcnLayer,
    store: &ParamStore,
    tape: &Tape,
    x: &Var,
    ctx: &GraphContext,
) -> (Var, Var) {
    let z = enc1.forward(tape, store, x, ctx).relu();
    let z = enc2.forward(tape, store, &z, ctx).relu();
    let xhat = attr_dec.forward(tape, store, &z, ctx);
    (z, xhat)
}

impl Default for Dominant {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

impl OutlierDetector for Dominant {
    fn name(&self) -> &'static str {
        "DOMINANT"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let d = g.num_attrs();
        let State {
            mut store,
            enc1,
            enc2,
            attr_dec,
            in_dim,
        } = Self::build_state(&self.cfg, d, &mut rng);

        let ctx = GraphContext::of(g);
        let x = g.attrs().clone();
        let alpha = self.alpha;
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let sample = EdgeSample::from_graph(g, &mut rng);
                let xv = tape.constant(x.clone());
                let (z, xhat) = forward_parts(&enc1, &enc2, &attr_dec, store, tape, &xv, &ctx);
                let attr_loss = xhat.sub(&xv).square().mean_all();
                let struct_loss = structure_loss(&z, &sample);
                attr_loss.scale(alpha).add(&struct_loss.scale(1.0 - alpha))
            },
            |_, _, _| {},
        );
        self.state = Some(State {
            store,
            enc1,
            enc2,
            attr_dec,
            in_dim,
        });
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let state = self
            .state
            .as_ref()
            .expect("Dominant::score called before fit");
        assert_eq!(g.num_attrs(), state.in_dim, "attribute dimension mismatch");
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let ctx = GraphContext::of(g);
        let tape = Tape::new();
        let xv = tape.constant(g.attrs().clone());
        let (z, xhat) = Self::forward(state, &tape, &xv, &ctx);
        let attr_err = row_reconstruction_errors(&xhat.value(), g.attrs());
        let struct_err = per_node_structure_errors(&z.value(), g, &mut rng);
        // Final score mirrors the training weighting (α attr, 1−α struct);
        // the components are exposed for per-type AUC evaluation.
        let combined: Vec<f32> = attr_err
            .iter()
            .zip(&struct_err)
            .map(|(&a, &s)| self.alpha * a + (1.0 - self.alpha) * s)
            .collect();
        Scores {
            combined,
            structural: Some(struct_err),
            contextual: Some(attr_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};

    fn injected(seed: u64) -> (AttributedGraph, vgod_inject::GroundTruth) {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(240, 4, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 8,
        };
        let cp = ContextualParams {
            count: 16,
            candidates: 30,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);
        (g, truth)
    }

    #[test]
    fn beats_random_on_standard_injection() {
        let (g, truth) = injected(1);
        let mut model = Dominant::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.65, "DOMINANT AUC = {a}");
    }

    #[test]
    fn attribute_component_finds_contextual_outliers() {
        let (g, truth) = injected(2);
        let mut model = Dominant::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        let a = auc(
            scores.contextual.as_ref().unwrap(),
            &truth.contextual_mask(),
        );
        assert!(a > 0.7, "DOMINANT attr AUC on contextual = {a}");
    }

    #[test]
    fn sampled_decoder_ranks_like_exact_decoder() {
        // DESIGN.md §4: confirm the negative-sampled structure decoder
        // agrees with the exact dense `σ(ZZᵀ) vs A` errors in *ranking*.
        let (g, _) = injected(3);
        let mut model = Dominant::new(DeepConfig::fast());
        model.fit(&g);
        let state = model.state.as_ref().unwrap();
        let ctx = GraphContext::from_graph(&g);
        let tape = Tape::new();
        let xv = tape.constant(g.attrs().clone());
        let (z, _) = Dominant::forward(state, &tape, &xv, &ctx);
        let z = z.value();

        let mut rng = seeded_rng(17);
        let sampled = per_node_structure_errors(&z, &g, &mut rng);

        // Exact per-node error over the full adjacency row.
        let n = g.num_nodes();
        let mut exact = vec![0.0f32; n];
        for u in 0..n as u32 {
            let mut acc = 0.0f32;
            for v in 0..n as u32 {
                if u == v {
                    continue;
                }
                let dot: f32 = z
                    .row(u as usize)
                    .iter()
                    .zip(z.row(v as usize))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let p = 1.0 / (1.0 + (-dot).exp());
                let t = if g.has_edge(u, v) { 1.0 } else { 0.0 };
                acc += (p - t) * (p - t);
            }
            exact[u as usize] = acc / (n - 1) as f32;
        }
        // Rank agreement: AUC of sampled scores against the top-10% of
        // exact scores should be high.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap());
        let mut top = vec![false; n];
        for &i in idx.iter().take(n / 10) {
            top[i] = true;
        }
        let agreement = auc(&sampled, &top);
        assert!(
            agreement > 0.8,
            "sampled vs exact decoder rank agreement = {agreement}"
        );
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn unfitted_scoring_panics() {
        let (g, _) = injected(4);
        let _ = Dominant::default().score(&g);
    }
}
