//! Non-learning detectors: the leakage probes and the random control.

use rand::Rng;
use vgod_autograd::persist;
use vgod_eval::{full_graph_view, DeltaCapability, OutlierDetector, RangeScores, ScoreMerge, Scores};
use vgod_graph::{seeded_rng, AttributedGraph, GraphStore, SamplingConfig};

/// Node degree as the outlier score (the structural leakage probe of
/// Fig. 2 and the `Deg` baseline of Table V).
#[derive(Clone, Copy, Debug, Default)]
pub struct Deg;

impl Deg {
    /// Write the (stateless) detector as a magic-only checkpoint, so the
    /// uniform save/load CLI and serving registry cover it too.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "# vgod-deg v1")
    }

    /// Read a checkpoint written by [`Deg::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Deg, String> {
        persist::expect_magic(input, "# vgod-deg v1")?;
        Ok(Deg)
    }
}

impl OutlierDetector for Deg {
    fn name(&self) -> &'static str {
        "Deg"
    }

    fn fit(&mut self, _g: &AttributedGraph) {}

    fn score(&self, g: &AttributedGraph) -> Scores {
        Scores::combined_only(degrees(g))
    }

    fn fit_store(&mut self, _store: &dyn GraphStore, _cfg: &SamplingConfig) {}

    fn score_store(&self, store: &dyn GraphStore, _cfg: &SamplingConfig) -> Scores {
        // Exact at any scale: degrees stream straight off the store's
        // (fully resident) edge index, no sampling involved.
        Scores::combined_only(store_degrees(store))
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        _cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        // Per-node exact, so a shard only reads its own degrees.
        RangeScores {
            scores: Scores::combined_only(store_degrees_range(store, lo, hi)),
            merge: ScoreMerge::Concat,
        }
    }

    fn delta_capability(&self) -> DeltaCapability {
        // degree(u) only reads u's adjacency row, but the 1-hop closure is
        // needed so the induced subgraph reproduces the full-graph degree.
        DeltaCapability::Local {
            hops: 1,
            merge: ScoreMerge::Concat,
        }
    }
}

/// Attribute-vector L2 norm as the outlier score (the contextual leakage
/// probe of Fig. 2 / Fig. 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct L2Norm;

impl L2Norm {
    /// Write the (stateless) detector as a magic-only checkpoint.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "# vgod-l2norm v1")
    }

    /// Read a checkpoint written by [`L2Norm::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<L2Norm, String> {
        persist::expect_magic(input, "# vgod-l2norm v1")?;
        Ok(L2Norm)
    }
}

impl OutlierDetector for L2Norm {
    fn name(&self) -> &'static str {
        "L2Norm"
    }

    fn fit(&mut self, _g: &AttributedGraph) {}

    fn score(&self, g: &AttributedGraph) -> Scores {
        Scores::combined_only(l2_norms(g))
    }

    fn fit_store(&mut self, _store: &dyn GraphStore, _cfg: &SamplingConfig) {}

    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        if let Some(g) = full_graph_view(store, cfg) {
            // Bit-identical small-graph path (SIMD row_norms reduction).
            return self.score(&g);
        }
        // Exact up to summation order: one streaming pass over the
        // attribute chunks, never materialising the n×d matrix.
        Scores::combined_only(store_l2_norms(store))
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        if let Some(g) = full_graph_view(store, cfg) {
            return RangeScores {
                scores: self.score(&g).slice_range(lo as usize, hi as usize),
                merge: ScoreMerge::Concat,
            };
        }
        // Same per-row arithmetic as the streaming pass, restricted to the
        // shard's own attribute rows.
        RangeScores {
            scores: Scores::combined_only(store_l2_norms_range(store, lo, hi)),
            merge: ScoreMerge::Concat,
        }
    }

    fn delta_capability(&self) -> DeltaCapability {
        // Pure per-row attribute arithmetic: zero-hop receptive field.
        DeltaCapability::Local {
            hops: 0,
            merge: ScoreMerge::Concat,
        }
    }
}

/// The paper's `DegNorm` baseline (Eq. 20): degree as the structural score,
/// attribute L2-norm as the contextual score, mean-std normalised and
/// summed. Exploits *only* the injection leakage — yet beats most deep
/// baselines under the standard protocol (Table IV).
#[derive(Clone, Copy, Debug, Default)]
pub struct DegNorm;

impl DegNorm {
    /// Write the (stateless) detector as a magic-only checkpoint.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "# vgod-degnorm v1")
    }

    /// Read a checkpoint written by [`DegNorm::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<DegNorm, String> {
        persist::expect_magic(input, "# vgod-degnorm v1")?;
        Ok(DegNorm)
    }
}

impl OutlierDetector for DegNorm {
    fn name(&self) -> &'static str {
        "DegNorm"
    }

    fn fit(&mut self, _g: &AttributedGraph) {}

    fn score(&self, g: &AttributedGraph) -> Scores {
        Scores::from_components(degrees(g), l2_norms(g))
    }

    fn fit_store(&mut self, _store: &dyn GraphStore, _cfg: &SamplingConfig) {}

    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        if let Some(g) = full_graph_view(store, cfg) {
            return self.score(&g);
        }
        // Eq. 20's mean-std combination is a global normalisation: both
        // components are streamed at full length and combined once, so the
        // ranking is not distorted by per-batch statistics.
        Scores::from_components(store_degrees(store), store_l2_norms(store))
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        if let Some(g) = full_graph_view(store, cfg) {
            return RangeScores {
                scores: self.score(&g).slice_range(lo as usize, hi as usize),
                merge: ScoreMerge::Concat,
            };
        }
        // Eq. 20 is the halo-free half of distributed scoring: a shard
        // emits raw degree/L2 components for its own rows and the
        // coordinator reapplies the global mean-std combination over the
        // concatenated full-length vectors (the local combined is a
        // placeholder it overwrites).
        RangeScores {
            scores: Scores::from_components(
                store_degrees_range(store, lo, hi),
                store_l2_norms_range(store, lo, hi),
            ),
            merge: ScoreMerge::MeanStd,
        }
    }

    fn delta_capability(&self) -> DeltaCapability {
        // Raw components are local (degree needs the 1-hop closure); the
        // Eq. 20 mean-std combination moves to the global merge rule, same
        // as the sharded path above.
        DeltaCapability::Local {
            hops: 1,
            merge: ScoreMerge::MeanStd,
        }
    }
}

/// Uniform-random scores — the control detector (AUC ≈ 0.5 by design).
#[derive(Clone, Debug)]
pub struct RandomDetector {
    seed: u64,
}

impl RandomDetector {
    /// A random detector with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Write the detector (its seed is its entire state) as a checkpoint.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "# vgod-random v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[("seed", self.seed.to_string())])
        )
    }

    /// Read a checkpoint written by [`RandomDetector::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<RandomDetector, String> {
        persist::expect_magic(input, "# vgod-random v1")?;
        let map = persist::read_header(input)?;
        Ok(RandomDetector::new(persist::header_get(&map, "seed")?))
    }
}

impl Default for RandomDetector {
    fn default() -> Self {
        Self::new(0)
    }
}

impl OutlierDetector for RandomDetector {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn fit(&mut self, _g: &AttributedGraph) {}

    fn score(&self, g: &AttributedGraph) -> Scores {
        let mut rng = seeded_rng(self.seed);
        Scores::combined_only(
            (0..g.num_nodes())
                .map(|_| rng.gen_range(0.0..1.0))
                .collect(),
        )
    }

    fn fit_store(&mut self, _store: &dyn GraphStore, _cfg: &SamplingConfig) {}

    fn score_store(&self, store: &dyn GraphStore, _cfg: &SamplingConfig) -> Scores {
        // Only the node count matters: bit-identical to `score` at any
        // scale, no sampling involved.
        let mut rng = seeded_rng(self.seed);
        Scores::combined_only(
            (0..store.num_nodes())
                .map(|_| rng.gen_range(0.0..1.0))
                .collect(),
        )
    }

    fn score_store_range(
        &self,
        _store: &dyn GraphStore,
        _cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        // The RNG stream is sequential over node ids, so a shard replays
        // the draws up to `lo` and keeps its own range — identical values
        // regardless of how the node set is partitioned.
        let mut rng = seeded_rng(self.seed);
        for _ in 0..lo {
            let _: f32 = rng.gen_range(0.0..1.0);
        }
        RangeScores {
            scores: Scores::combined_only((lo..hi).map(|_| rng.gen_range(0.0..1.0)).collect()),
            merge: ScoreMerge::Concat,
        }
    }
}

fn degrees(g: &AttributedGraph) -> Vec<f32> {
    (0..g.num_nodes() as u32)
        .map(|u| g.degree(u) as f32)
        .collect()
}

fn l2_norms(g: &AttributedGraph) -> Vec<f32> {
    g.attrs().row_norms().into_vec()
}

fn store_degrees(store: &dyn GraphStore) -> Vec<f32> {
    (0..store.num_nodes() as u32)
        .map(|u| store.degree(u) as f32)
        .collect()
}

fn store_l2_norms(store: &dyn GraphStore) -> Vec<f32> {
    let mut out = Vec::with_capacity(store.num_nodes());
    store.visit_attrs(&mut |_, row| {
        out.push(row.iter().map(|v| v * v).sum::<f32>().sqrt());
    });
    out
}

fn store_degrees_range(store: &dyn GraphStore, lo: u32, hi: u32) -> Vec<f32> {
    (lo..hi).map(|u| store.degree(u) as f32).collect()
}

fn store_l2_norms_range(store: &dyn GraphStore, lo: u32, hi: u32) -> Vec<f32> {
    let mut row = vec![0.0f32; store.num_attrs()];
    let mut out = Vec::with_capacity((hi - lo) as usize);
    for u in lo..hi {
        store.attr_row_into(u, &mut row);
        out.push(row.iter().map(|v| v * v).sum::<f32>().sqrt());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::seeded_rng as srng;
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};
    use vgod_tensor::Matrix;

    fn injected() -> (AttributedGraph, vgod_inject::GroundTruth) {
        let mut rng = srng(0);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(400, 4, 4.0, 0.9),
            &mut rng,
        );
        let x =
            vgod_graph::binary_topic_attributes(g.labels().unwrap(), 64, (6, 20), 0.8, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 10,
        };
        let cp = ContextualParams {
            count: 20,
            candidates: 50,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);
        (g, truth)
    }

    #[test]
    fn degree_leaks_structural_outliers() {
        let (g, truth) = injected();
        let scores = Deg.score(&g);
        let a = auc(&scores.combined, &truth.structural_mask());
        assert!(a > 0.9, "Deg AUC on structural = {a} (paper: ~0.95)");
    }

    #[test]
    fn l2_norm_leaks_contextual_outliers() {
        let (g, truth) = injected();
        let scores = L2Norm.score(&g);
        let a = auc(&scores.combined, &truth.contextual_mask());
        assert!(a > 0.8, "L2Norm AUC on contextual = {a} (paper: ~0.98)");
    }

    #[test]
    fn degnorm_combines_both_leaks() {
        let (g, truth) = injected();
        let scores = DegNorm.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.8, "DegNorm AUC = {a}");
        assert!(scores.structural.is_some() && scores.contextual.is_some());
    }

    #[test]
    fn random_detector_is_chance_level() {
        let (g, truth) = injected();
        let scores = RandomDetector::new(3).score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!((0.35..0.65).contains(&a), "Random AUC = {a}");
    }

    #[test]
    fn store_paths_match_in_memory_scoring() {
        let (g, _) = injected();
        let tiny = SamplingConfig {
            full_graph_threshold: 10, // force the streaming path on 400 nodes
            ..SamplingConfig::default()
        };
        // Degree and random scores are exact at any scale.
        assert_eq!(Deg.score(&g).combined, Deg.score_store(&g, &tiny).combined);
        assert_eq!(
            RandomDetector::new(3).score(&g).combined,
            RandomDetector::new(3).score_store(&g, &tiny).combined
        );
        // Streamed L2 norms agree up to summation order.
        let direct = L2Norm.score(&g).combined;
        let streamed = L2Norm.score_store(&g, &tiny).combined;
        for (a, b) in direct.iter().zip(&streamed) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Below the threshold everything is bit-identical.
        let dflt = SamplingConfig::default();
        assert_eq!(
            DegNorm.score(&g).combined,
            DegNorm.score_store(&g, &dflt).combined
        );
        assert_eq!(
            L2Norm.score(&g).combined,
            L2Norm.score_store(&g, &dflt).combined
        );
    }

    #[test]
    fn simple_detectors_handle_empty_graphs() {
        let g = AttributedGraph::new(Matrix::zeros(0, 4));
        assert!(Deg.score(&g).combined.is_empty());
        assert!(L2Norm.score(&g).combined.is_empty());
        assert!(RandomDetector::default().score(&g).combined.is_empty());
    }
}
