//! GUIDE-style higher-order structure reconstruction (Yuan et al., IEEE
//! BigData 2021 — reference [21] of the VGOD paper): replaces plain
//! adjacency reconstruction with the reconstruction of each node's
//! *higher-order structural profile*, which is far more sensitive to
//! injected cliques than raw edges are.

use vgod_autograd::{ParamStore, Tape, Var};
use vgod_eval::{combine_mean_std, OutlierDetector, Scores};
use vgod_gnn::{GcnLayer, GraphContext};
use vgod_graph::{clustering_coefficients, seeded_rng, triangle_counts, AttributedGraph};
use vgod_nn::{row_reconstruction_errors, Activation, Mlp, Trainer};
use vgod_tensor::Matrix;

use crate::common::DeepConfig;

/// GUIDE: a GCN autoencoder reconstructs the attributes while an MLP
/// autoencoder reconstructs a per-node higher-order structure vector
/// (degree, triangle count, clustering coefficient, mean neighbour degree —
/// a small graphlet-degree-vector stand-in for the original's full GDV).
/// Scores are the mean-std-combined reconstruction errors of the two
/// channels.
#[derive(Clone, Debug)]
pub struct Guide {
    cfg: DeepConfig,
    state: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    store: ParamStore,
    attr_enc: GcnLayer,
    attr_dec: GcnLayer,
    struct_ae: Mlp,
    in_dim: usize,
}

/// Per-node higher-order structural profile, z-scored per column so the
/// reconstruction loss weighs each motif statistic equally.
pub(crate) fn structure_profile(g: &AttributedGraph) -> Matrix {
    let n = g.num_nodes();
    let triangles = triangle_counts(g);
    let clustering = clustering_coefficients(g);
    let mut profile = Matrix::zeros(n, 4);
    for u in 0..n {
        let deg = g.degree(u as u32) as f32;
        let mean_nbr_deg = if g.degree(u as u32) == 0 {
            0.0
        } else {
            g.neighbors(u as u32)
                .iter()
                .map(|&v| g.degree(v) as f32)
                .sum::<f32>()
                / deg
        };
        // log1p compresses the heavy tails of degree-like statistics.
        profile[(u, 0)] = (1.0 + deg).ln();
        profile[(u, 1)] = (1.0 + triangles[u] as f32).ln();
        profile[(u, 2)] = clustering[u];
        profile[(u, 3)] = (1.0 + mean_nbr_deg).ln();
    }
    // Column-wise z-scoring.
    for c in 0..4 {
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for r in 0..n {
            sum += profile[(r, c)];
            sq += profile[(r, c)] * profile[(r, c)];
        }
        let mean = sum / n.max(1) as f32;
        let std = (sq / n.max(1) as f32 - mean * mean).max(1e-12).sqrt();
        for r in 0..n {
            profile[(r, c)] = (profile[(r, c)] - mean) / std;
        }
    }
    profile
}

impl Guide {
    /// A GUIDE model with the given shared config.
    pub fn new(cfg: DeepConfig) -> Self {
        Self { cfg, state: None }
    }

    fn forward(state: &State, tape: &Tape, x: &Var, s: &Var, ctx: &GraphContext) -> (Var, Var) {
        forward_parts(
            &state.attr_enc,
            &state.attr_dec,
            &state.struct_ae,
            &state.store,
            tape,
            x,
            s,
            ctx,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn forward_parts(
    attr_enc: &GcnLayer,
    attr_dec: &GcnLayer,
    struct_ae: &Mlp,
    store: &ParamStore,
    tape: &Tape,
    x: &Var,
    s: &Var,
    ctx: &GraphContext,
) -> (Var, Var) {
    let z = attr_enc.forward(tape, store, x, ctx).relu();
    let xhat = attr_dec.forward(tape, store, &z, ctx);
    let shat = struct_ae.forward(tape, store, s);
    (xhat, shat)
}

impl Default for Guide {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

impl OutlierDetector for Guide {
    fn name(&self) -> &'static str {
        "GUIDE"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let d = g.num_attrs();
        let h = self.cfg.hidden;
        let mut store = ParamStore::new();
        let attr_enc = GcnLayer::new(&mut store, d, h, &mut rng);
        let attr_dec = GcnLayer::new(&mut store, h, d, &mut rng);
        // 4 → 2 → 4 bottleneck over the structure profile.
        let struct_ae = Mlp::new(&mut store, &[4, 2, 4], Activation::Tanh, true, &mut rng);

        let ctx = GraphContext::of(g);
        let x = g.attrs().clone();
        let s = structure_profile(g);
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let xv = tape.constant(x.clone());
                let sv = tape.constant(s.clone());
                let (xhat, shat) = forward_parts(
                    &attr_enc, &attr_dec, &struct_ae, store, tape, &xv, &sv, &ctx,
                );
                let attr_loss = xhat.sub(&xv).square().mean_all();
                let struct_loss = shat.sub(&sv).square().mean_all();
                attr_loss.add(&struct_loss)
            },
            |_, _, _| {},
        );
        self.state = Some(State {
            store,
            attr_enc,
            attr_dec,
            struct_ae,
            in_dim: d,
        });
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let state = self.state.as_ref().expect("Guide::score called before fit");
        assert_eq!(g.num_attrs(), state.in_dim, "attribute dimension mismatch");
        let ctx = GraphContext::of(g);
        let x = g.attrs().clone();
        let s = structure_profile(g);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let sv = tape.constant(s.clone());
        let (xhat, shat) = Self::forward(state, &tape, &xv, &sv, &ctx);
        let attr_err = row_reconstruction_errors(&xhat.value(), &x);
        let struct_err = row_reconstruction_errors(&shat.value(), &s);
        let combined = combine_mean_std(&struct_err, &attr_err);
        Scores {
            combined,
            structural: Some(struct_err),
            contextual: Some(attr_err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_structural, GroundTruth, StructuralParams};

    fn structural_case(seed: u64) -> (AttributedGraph, GroundTruth) {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(240, 4, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let mut truth = GroundTruth::new(g.num_nodes());
        inject_structural(
            &mut g,
            &mut truth,
            &StructuralParams {
                num_cliques: 2,
                clique_size: 10,
            },
            &mut rng,
        );
        (g, truth)
    }

    #[test]
    fn higher_order_channel_nails_injected_cliques() {
        let (g, truth) = structural_case(1);
        let mut model = Guide::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        // The structure channel alone should be strong: injected cliques
        // have extreme triangle counts and clustering.
        let a = auc(scores.structural.as_ref().unwrap(), &truth.outlier_mask());
        assert!(a > 0.85, "GUIDE structure-channel AUC = {a}");
    }

    #[test]
    fn structure_profile_separates_clique_members() {
        let (g, truth) = structural_case(2);
        let s = structure_profile(&g);
        // Use the triangle column directly as a score.
        let tri_scores: Vec<f32> = (0..g.num_nodes()).map(|u| s[(u, 1)]).collect();
        let a = auc(&tri_scores, &truth.outlier_mask());
        assert!(a > 0.9, "raw triangle statistic AUC = {a}");
    }

    #[test]
    fn profile_is_z_scored() {
        let (g, _) = structural_case(3);
        let s = structure_profile(&g);
        for c in 0..4 {
            let mean: f32 = (0..s.rows()).map(|r| s[(r, c)]).sum::<f32>() / s.rows() as f32;
            assert!(mean.abs() < 1e-3, "column {c} mean {mean}");
        }
    }
}
