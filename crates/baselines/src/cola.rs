//! CoLA (Liu et al., TNNLS 2021): contrastive self-supervised outlier
//! detection by discriminating a node against local network patches.

use std::rc::Rc;

use rand::Rng;
use vgod_autograd::{persist, ParamId, ParamStore, Tape, Var};
use vgod_eval::{OutlierDetector, Scores};
use vgod_gnn::{GcnLayer, GraphContext};
use vgod_graph::{seeded_rng, AttributedGraph};
use vgod_nn::{glorot_uniform, Trainer};
use vgod_tensor::Matrix;

use crate::common::DeepConfig;

/// CoLA: a GCN embeds nodes; a bilinear discriminator scores the agreement
/// between a node's embedding and the readout of a *local patch* (the mean
/// embedding of its neighbourhood). Positive pairs use the node's own
/// patch, negative pairs a random other node's patch; training is a BCE-
/// style contrastive objective and the outlier score is the expected
/// negative-minus-positive discrimination margin over `R` sampling rounds —
/// which is why CoLA's inference is far more expensive than one forward
/// pass (Table VII).
///
/// The original samples patches with restarting random walks; this
/// implementation uses the 1-hop neighbourhood readout (the walk's
/// stationary core) — the contrastive node-vs-patch mechanics, anonymised
/// target (the node's own features are masked out of its patch), and
/// multi-round scoring are preserved.
#[derive(Clone, Debug)]
pub struct Cola {
    cfg: DeepConfig,
    /// Inference sampling rounds `R` (the original uses 256; the default
    /// here is cost-conscious but still the dominant inference cost).
    pub rounds: usize,
    state: Option<State>,
}

#[derive(Clone, Debug)]
struct State {
    store: ParamStore,
    gcn: GcnLayer,
    bilinear: ParamId,
    in_dim: usize,
}

impl Cola {
    /// A CoLA model with the given shared config and 16 inference rounds.
    pub fn new(cfg: DeepConfig) -> Self {
        Self {
            cfg,
            rounds: 16,
            state: None,
        }
    }

    /// Discrimination scores `σ(readout(patch)ᵀ W z_node)` for a node
    /// permutation: entry `i` pairs node `i`'s embedding with the patch of
    /// `perm[i]`.
    fn discriminate(
        state: &State,
        tape: &Tape,
        z: &Var,
        patches: &Var,
        perm: &Rc<Vec<u32>>,
    ) -> Var {
        discriminate_parts(state.bilinear, &state.store, tape, z, patches, perm)
    }

    fn embed(state: &State, tape: &Tape, g: &AttributedGraph, ctx: &GraphContext) -> (Var, Var) {
        embed_parts(&state.gcn, &state.store, tape, g, ctx)
    }

    fn identity_perm(n: usize) -> Rc<Vec<u32>> {
        Rc::new((0..n as u32).collect())
    }

    fn random_perm(n: usize, rng: &mut impl Rng) -> Rc<Vec<u32>> {
        let mut p: Vec<u32> = (0..n as u32).collect();
        rand::seq::SliceRandom::shuffle(p.as_mut_slice(), rng);
        Rc::new(p)
    }

    /// Build the GCN + bilinear discriminator for input dimension `d`,
    /// consuming `rng` draws in the fixed constructor order checkpoint
    /// loading replays.
    fn build_state(cfg: &DeepConfig, d: usize, rng: &mut impl Rng) -> State {
        let h = cfg.hidden;
        let mut store = ParamStore::new();
        let gcn = GcnLayer::new(&mut store, d, h, rng);
        let bilinear = store.insert(glorot_uniform(h, h, rng));
        State {
            store,
            gcn,
            bilinear,
            in_dim: d,
        }
    }

    /// Write a trained model as a plain-text checkpoint.
    ///
    /// # Panics
    /// Panics if the model is untrained.
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let state = self.state.as_ref().expect("Cola::save called before fit");
        writeln!(out, "# vgod-cola v1")?;
        writeln!(
            out,
            "{}",
            persist::header_line(&[
                ("hidden", self.cfg.hidden.to_string()),
                ("epochs", self.cfg.epochs.to_string()),
                ("lr", self.cfg.lr.to_string()),
                ("seed", self.cfg.seed.to_string()),
                ("rounds", self.rounds.to_string()),
                ("in_dim", state.in_dim.to_string()),
            ])
        )?;
        state.store.write_text(out)
    }

    /// Read a checkpoint written by [`Cola::save`].
    pub fn load(input: &mut impl std::io::BufRead) -> Result<Cola, String> {
        persist::expect_magic(input, "# vgod-cola v1")?;
        let map = persist::read_header(input)?;
        let cfg = DeepConfig {
            hidden: persist::header_get(&map, "hidden")?,
            epochs: persist::header_get(&map, "epochs")?,
            lr: persist::header_get(&map, "lr")?,
            seed: persist::header_get(&map, "seed")?,
        };
        let rounds: usize = persist::header_get(&map, "rounds")?;
        let loaded = ParamStore::read_text(input)?;
        let in_dim: usize = persist::header_get(&map, "in_dim")?;
        let mut rng = seeded_rng(cfg.seed);
        let mut state = Self::build_state(&cfg, in_dim, &mut rng);
        persist::copy_store_values(&mut state.store, &loaded)?;
        let mut model = Cola::new(cfg);
        model.rounds = rounds;
        model.state = Some(state);
        Ok(model)
    }
}

impl Default for Cola {
    fn default() -> Self {
        Self::new(DeepConfig::default())
    }
}

fn discriminate_parts(
    bilinear: ParamId,
    store: &ParamStore,
    tape: &Tape,
    z: &Var,
    patches: &Var,
    perm: &Rc<Vec<u32>>,
) -> Var {
    let w = tape.param(store, bilinear);
    // s_i = σ(patch_{perm[i]} · (W z_i))
    let zw = z.matmul(&w);
    patches.gather_rows(perm).mul(&zw).row_sum().sigmoid()
}

fn embed_parts(
    gcn: &GcnLayer,
    store: &ParamStore,
    tape: &Tape,
    g: &AttributedGraph,
    ctx: &GraphContext,
) -> (Var, Var) {
    let xv = tape.constant(g.attrs().clone());
    let z = gcn.forward(tape, store, &xv, ctx).relu();
    // Patch readout: neighbourhood mean *excluding* the node itself
    // (target anonymisation).
    let patches = z.spmm(ctx.mean());
    (z, patches)
}

impl OutlierDetector for Cola {
    fn name(&self) -> &'static str {
        "CoLA"
    }

    fn fit(&mut self, g: &AttributedGraph) {
        let mut rng = seeded_rng(self.cfg.seed);
        let d = g.num_attrs();
        let State {
            mut store,
            gcn,
            bilinear,
            in_dim,
        } = Self::build_state(&self.cfg, d, &mut rng);

        let ctx = GraphContext::of(g);
        let n = g.num_nodes();
        Trainer::new(self.cfg.epochs, self.cfg.lr).run(
            &mut store,
            |tape, _, store| {
                let (z, patches) = embed_parts(&gcn, store, tape, g, &ctx);
                let pos = discriminate_parts(
                    bilinear,
                    store,
                    tape,
                    &z,
                    &patches,
                    &Self::identity_perm(n),
                );
                let neg = discriminate_parts(
                    bilinear,
                    store,
                    tape,
                    &z,
                    &patches,
                    &Self::random_perm(n, &mut rng),
                );
                // BCE-style squared-margin objective: pos → 1, neg → 0.
                let ones = tape.constant(Matrix::filled(n, 1, 1.0));
                pos.sub(&ones)
                    .square()
                    .mean_all()
                    .add(&neg.square().mean_all())
            },
            |_, _, _| {},
        );
        self.state = Some(State {
            store,
            gcn,
            bilinear,
            in_dim,
        });
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        let state = self.state.as_ref().expect("Cola::score called before fit");
        assert_eq!(g.num_attrs(), state.in_dim, "attribute dimension mismatch");
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let ctx = GraphContext::of(g);
        let n = g.num_nodes();
        let mut margin = vec![0.0f32; n];
        // Multi-round inference: the expensive part of CoLA by design. One
        // recycled tape serves every round; the arena keeps the buffers.
        vgod_tensor::arena::scope(|| {
            let tape = Tape::new();
            for _ in 0..self.rounds {
                tape.reset();
                let (z, patches) = Self::embed(state, &tape, g, &ctx);
                let pos =
                    Self::discriminate(state, &tape, &z, &patches, &Self::identity_perm(n)).value();
                let neg =
                    Self::discriminate(state, &tape, &z, &patches, &Self::random_perm(n, &mut rng))
                        .value();
                for ((m, &ng), &p) in margin.iter_mut().zip(neg.as_slice()).zip(pos.as_slice()) {
                    *m += ng - p;
                }
            }
        });
        for m in &mut margin {
            *m /= self.rounds as f32;
        }
        Scores::combined_only(margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_eval::auc;
    use vgod_graph::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};
    use vgod_inject::{inject_standard, ContextualParams, DistanceMetric, StructuralParams};

    #[test]
    fn beats_random_on_standard_injection() {
        let mut rng = seeded_rng(3);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(220, 4, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 12, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let sp = StructuralParams {
            num_cliques: 2,
            clique_size: 8,
        };
        let cp = ContextualParams {
            count: 16,
            candidates: 30,
            metric: DistanceMetric::Euclidean,
        };
        let truth = inject_standard(&mut g, &sp, &cp, &mut rng);

        let mut model = Cola::new(DeepConfig::fast());
        let scores = model.fit_score(&g);
        let a = auc(&scores.combined, &truth.outlier_mask());
        assert!(a > 0.55, "CoLA AUC = {a}");
        // Single score only — CoLA has no score combination (Table II).
        assert!(scores.structural.is_none() && scores.contextual.is_none());
    }

    #[test]
    fn more_rounds_reduce_score_noise() {
        let mut rng = seeded_rng(4);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(150, 3, 4.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 8, 4.0, 0.5, &mut rng);
        g.set_attrs(x);
        let mut model = Cola::new(DeepConfig {
            epochs: 5,
            ..DeepConfig::fast()
        });
        model.fit(&g);
        model.rounds = 2;
        let s2a = model.score(&g).combined;
        model.rounds = 32;
        let s32a = model.score(&g).combined;
        // Correlate two independent 32-round runs vs two 2-round runs.
        let model2 = {
            let mut m = model.clone();
            m.cfg.seed += 100;
            m
        };
        let s32b = model2.score(&g).combined;
        let mut m2 = model2.clone();
        m2.rounds = 2;
        let s2b = m2.score(&g).combined;
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let ma = a.iter().sum::<f32>() / a.len() as f32;
            let mb = b.iter().sum::<f32>() / b.len() as f32;
            let cov: f32 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
            let va: f32 = a.iter().map(|&x| (x - ma) * (x - ma)).sum();
            let vb: f32 = b.iter().map(|&y| (y - mb) * (y - mb)).sum();
            cov / (va.sqrt() * vb.sqrt()).max(1e-9)
        };
        assert!(
            corr(&s32a, &s32b) > corr(&s2a, &s2b) - 0.05,
            "32-round scores should be at least as stable"
        );
    }
}
