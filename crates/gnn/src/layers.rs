//! Parametric message-passing layers.

use rand::Rng;
use vgod_autograd::{ParamId, ParamStore, Tape, Var};
use vgod_nn::{glorot_uniform, Activation, Linear, Mlp};
use vgod_tensor::Matrix;

use crate::GraphContext;

/// The GNN layer families the paper's ARM can use as backbone (§V-B,
/// Table VIII).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GnnKind {
    /// Graph convolution network.
    Gcn,
    /// Graph attention network.
    Gat,
    /// Graph isomorphism network.
    Gin,
    /// GraphSAGE with mean aggregation.
    Sage,
}

impl std::fmt::Display for GnnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GnnKind::Gcn => "GCN",
            GnnKind::Gat => "GAT",
            GnnKind::Gin => "GIN",
            GnnKind::Sage => "SAGE",
        })
    }
}

/// GCN layer: `H' = Â H W (+ b)` with `Â = D^{-1/2}(A+I)D^{-1/2}` (Eq. 2).
#[derive(Clone, Debug)]
pub struct GcnLayer {
    linear: Linear,
}

impl GcnLayer {
    /// A GCN layer `in_dim → out_dim`.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            linear: Linear::new(store, in_dim, out_dim, true, rng),
        }
    }

    /// Forward pass (no activation — compose with [`Activation`] outside).
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var, ctx: &GraphContext) -> Var {
        self.linear.forward(tape, store, &x.spmm(ctx.gcn()))
    }
}

/// One attention head of a GAT layer.
#[derive(Clone, Debug)]
struct GatHead {
    w: Linear,
    a_src: ParamId,
    a_dst: ParamId,
}

impl GatHead {
    fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = Linear::new(store, in_dim, out_dim, false, rng);
        let a_src = store.insert(glorot_uniform(out_dim, 1, rng));
        let a_dst = store.insert(glorot_uniform(out_dim, 1, rng));
        Self { w, a_src, a_dst }
    }

    fn forward(
        &self,
        tape: &Tape,
        store: &ParamStore,
        x: &Var,
        ctx: &GraphContext,
        slope: f32,
    ) -> Var {
        let wh = self.w.forward(tape, store, x);
        let a_src = tape.param(store, self.a_src);
        let a_dst = tape.param(store, self.a_dst);
        let s_src = wh.matmul(&a_src); // n×1 contribution of each node as source
        let s_dst = wh.matmul(&a_dst); // n×1 contribution as destination
        let edges = ctx.edges();
        let logits = s_src
            .gather_rows(&edges.src)
            .add(&s_dst.gather_rows(&edges.dst))
            .leaky_relu(slope);
        let alpha = logits.segment_softmax(&edges.dst);
        alpha.edge_aggregate(&wh, &edges.src, &edges.dst, edges.n)
    }
}

/// GAT layer (Eq. 3): per-edge attention logits
/// `e_{ij} = LeakyReLU(a_srcᵀ W h_i + a_dstᵀ W h_j)`, normalised with a
/// softmax over each destination's in-edges, then a weighted sum of source
/// features. Multi-head attention concatenates the per-head outputs
/// (Veličković et al.'s standard construction).
#[derive(Clone, Debug)]
pub struct GatLayer {
    heads: Vec<GatHead>,
    slope: f32,
}

impl GatLayer {
    /// A single-head GAT layer `in_dim → out_dim` with LeakyReLU slope 0.2.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self::with_heads(store, in_dim, out_dim, 1, rng)
    }

    /// A multi-head GAT layer: `heads` independent attention heads of width
    /// `out_dim_per_head`, concatenated to `heads · out_dim_per_head`
    /// output columns.
    ///
    /// # Panics
    /// Panics if `heads == 0`.
    pub fn with_heads(
        store: &mut ParamStore,
        in_dim: usize,
        out_dim_per_head: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(heads >= 1, "GAT needs at least one attention head");
        let heads = (0..heads)
            .map(|_| GatHead::new(store, in_dim, out_dim_per_head, rng))
            .collect();
        Self { heads, slope: 0.2 }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Forward pass over `ctx.edges` (which include self-loops).
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var, ctx: &GraphContext) -> Var {
        let mut out: Option<Var> = None;
        for head in &self.heads {
            let h = head.forward(tape, store, x, ctx, self.slope);
            out = Some(match out {
                None => h,
                Some(acc) => acc.hcat(&h),
            });
        }
        out.expect("at least one head by construction")
    }
}

/// GIN layer (Eq. 4): `H' = MLP(A H + (1 + ε) H)` with a two-layer MLP and a
/// fixed ε.
#[derive(Clone, Debug)]
pub struct GinLayer {
    mlp: Mlp,
    eps: f32,
}

impl GinLayer {
    /// A GIN layer `in_dim → out_dim` (MLP hidden width = `out_dim`, ε = 0).
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let mlp = Mlp::new(
            store,
            &[in_dim, out_dim, out_dim],
            Activation::Relu,
            true,
            rng,
        );
        Self { mlp, eps: 0.0 }
    }

    /// Forward pass using the plain binary adjacency.
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var, ctx: &GraphContext) -> Var {
        let agg = x.spmm(ctx.adjacency()).add(&x.scale(1.0 + self.eps));
        self.mlp.forward(tape, store, &agg)
    }
}

/// GraphSAGE layer with mean aggregation:
/// `H' = H W_self + (D⁻¹ A H) W_nbr (+ b)`.
#[derive(Clone, Debug)]
pub struct SageLayer {
    w_self: Linear,
    w_nbr: Linear,
}

impl SageLayer {
    /// A SAGE-mean layer `in_dim → out_dim`.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w_self: Linear::new(store, in_dim, out_dim, true, rng),
            w_nbr: Linear::new(store, in_dim, out_dim, false, rng),
        }
    }

    /// Forward pass using the mean-aggregation adjacency.
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var, ctx: &GraphContext) -> Var {
        let own = self.w_self.forward(tape, store, x);
        let nbr = self.w_nbr.forward(tape, store, &x.spmm(ctx.mean()));
        own.add(&nbr)
    }
}

/// A backbone-agnostic GNN layer, so models can switch families via
/// [`GnnKind`] (the paper swaps GCN/GAT/GIN inside ARM, Table VIII).
#[derive(Clone, Debug)]
pub enum GnnLayer {
    /// Graph convolution.
    Gcn(GcnLayer),
    /// Graph attention.
    Gat(GatLayer),
    /// Graph isomorphism.
    Gin(GinLayer),
    /// GraphSAGE-mean.
    Sage(SageLayer),
}

impl GnnLayer {
    /// Create a layer of the requested kind.
    pub fn new(
        kind: GnnKind,
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        match kind {
            GnnKind::Gcn => GnnLayer::Gcn(GcnLayer::new(store, in_dim, out_dim, rng)),
            GnnKind::Gat => GnnLayer::Gat(GatLayer::new(store, in_dim, out_dim, rng)),
            GnnKind::Gin => GnnLayer::Gin(GinLayer::new(store, in_dim, out_dim, rng)),
            GnnKind::Sage => GnnLayer::Sage(SageLayer::new(store, in_dim, out_dim, rng)),
        }
    }

    /// Forward pass for the wrapped layer.
    pub fn forward(&self, tape: &Tape, store: &ParamStore, x: &Var, ctx: &GraphContext) -> Var {
        match self {
            GnnLayer::Gcn(l) => l.forward(tape, store, x, ctx),
            GnnLayer::Gat(l) => l.forward(tape, store, x, ctx),
            GnnLayer::Gin(l) => l.forward(tape, store, x, ctx),
            GnnLayer::Sage(l) => l.forward(tape, store, x, ctx),
        }
    }
}

/// Build a fresh leaf for the node features on a tape.
#[allow(dead_code)]
pub(crate) fn features_leaf(tape: &Tape, x: &Matrix) -> Var {
    tape.constant(x.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_graph::{seeded_rng, AttributedGraph};

    fn toy() -> (AttributedGraph, GraphContext) {
        // Mixed-sign, decorrelated features so that aggregated rows span
        // both signs (keeps ReLU hidden units from dying en masse).
        let mut g = AttributedGraph::new(Matrix::from_rows(&[
            &[1.0, -2.0],
            &[-1.5, 1.0],
            &[2.0, 1.5],
            &[0.5, -0.5],
        ]));
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let ctx = GraphContext::from_graph(&g);
        (g, ctx)
    }

    fn check_layer(kind: GnnKind) {
        let (g, ctx) = toy();
        let mut rng = seeded_rng(5);
        let mut store = ParamStore::new();
        let layer = GnnLayer::new(kind, &mut store, 2, 3, &mut rng);
        let tape = Tape::new();
        let x = features_leaf(&tape, g.attrs());
        let y = layer.forward(&tape, &store, &x, &ctx);
        assert_eq!(y.shape(), (4, 3), "{kind} output shape");
        // Gradients must flow through the layer. (Individual tensors may
        // legitimately receive zero gradient — e.g. a dead ReLU unit in
        // GIN's MLP on a 4-node graph — so check flow in aggregate.)
        let loss = y.square().sum_all();
        loss.backward_into(&mut store);
        assert!(
            store.grad_norm() > 0.0,
            "{kind}: no gradient reached any parameter"
        );
        let live = store.iter().filter(|(_, p)| p.grad.max_abs() > 0.0).count();
        assert!(
            live * 2 >= store.len(),
            "{kind}: only {live}/{} parameters got gradients",
            store.len()
        );
    }

    #[test]
    fn gcn_shapes_and_gradients() {
        check_layer(GnnKind::Gcn);
    }

    #[test]
    fn gat_shapes_and_gradients() {
        check_layer(GnnKind::Gat);
    }

    #[test]
    fn gin_shapes_and_gradients() {
        check_layer(GnnKind::Gin);
    }

    #[test]
    fn sage_shapes_and_gradients() {
        check_layer(GnnKind::Sage);
    }

    #[test]
    fn multi_head_gat_concatenates_heads() {
        let (g, ctx) = toy();
        let mut rng = seeded_rng(9);
        let mut store = ParamStore::new();
        let layer = GatLayer::with_heads(&mut store, 2, 3, 4, &mut rng);
        assert_eq!(layer.num_heads(), 4);
        let tape = Tape::new();
        let x = features_leaf(&tape, g.attrs());
        let y = layer.forward(&tape, &store, &x, &ctx);
        assert_eq!(y.shape(), (4, 12), "4 heads × 3 dims concatenated");
        // Gradients reach every head's parameters.
        y.square().sum_all().backward_into(&mut store);
        assert!(store.grad_norm() > 0.0);
        let live = store.iter().filter(|(_, p)| p.grad.max_abs() > 0.0).count();
        assert_eq!(
            live,
            store.len(),
            "all {} head params should receive gradients",
            store.len()
        );
    }

    #[test]
    fn gat_attention_rows_are_convex_combinations() {
        // With identical features everywhere, a GAT layer must output the
        // same row for every node that has the same neighbourhood-closure
        // feature set — i.e. output equals W h for all nodes.
        let mut g = AttributedGraph::new(Matrix::filled(5, 2, 1.0));
        for i in 0..4u32 {
            g.add_edge(i, i + 1);
        }
        let ctx = GraphContext::from_graph(&g);
        let mut rng = seeded_rng(1);
        let mut store = ParamStore::new();
        let layer = GatLayer::new(&mut store, 2, 3, &mut rng);
        let tape = Tape::new();
        let x = features_leaf(&tape, g.attrs());
        let y = layer.forward(&tape, &store, &x, &ctx).value();
        for r in 1..5 {
            for c in 0..3 {
                assert!((y[(r, c)] - y[(0, c)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gcn_of_identity_features_matches_adjacency_mass() {
        // One GCN layer with W = I captures Â's row sums when features are 1.
        let (g, ctx) = toy();
        let tape = Tape::new();
        let ones = tape.constant(Matrix::filled(g.num_nodes(), 1, 1.0));
        let propagated = ones.spmm(ctx.gcn()).value();
        // Â row sums of a 4-cycle with self-loops: each row sums to 1.
        for r in 0..4 {
            assert!((propagated[(r, 0)] - 1.0).abs() < 1e-5, "row {r}");
        }
    }
}
