//! # vgod-gnn
//!
//! Message-passing layers on the `vgod-autograd` engine:
//!
//! * [`GcnLayer`] — graph convolution (Kipf & Welling, Eq. 2 of the paper);
//! * [`GatLayer`] — graph attention (Veličković et al., Eq. 3), built from
//!   row gathering, per-destination segment softmax and weighted
//!   scatter-add;
//! * [`GinLayer`] — graph isomorphism network (Xu et al., Eq. 4);
//! * [`SageLayer`] — GraphSAGE with mean aggregation (Hamilton et al.);
//! * [`mean_conv`] / [`neighbor_variance`] — the parameter-free MeanConv and
//!   MinusConv layers of the VGOD paper (Fig. 5, Eq. 7–9), implemented via
//!   the identity `Var_N(h) = Ā(h∘h) − (Āh)∘(Āh)` where `Ā = D⁻¹A`.
//!
//! All layers consume a [`GraphContext`] — a bundle of precomputed CSR views
//! and edge lists for one graph — so a model can switch backbones (as the
//! paper's ARM does between GCN/GAT/GIN) without re-deriving graph state.

#![warn(missing_docs)]

mod context;
mod layers;
mod variance;

pub use context::{EdgeIndex, GraphContext};
pub use layers::{GatLayer, GcnLayer, GinLayer, GnnKind, GnnLayer, SageLayer};
pub use variance::{
    mean_conv, neighbor_variance, neighbor_variance_matrix, neighbor_variance_scores,
};
