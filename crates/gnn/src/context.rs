//! Precomputed per-graph state shared by all layers.

use std::rc::Rc;

use vgod_graph::AttributedGraph;
use vgod_tensor::Csr;

/// A directed edge list in structure-of-arrays form, as consumed by the
/// gather / segment-softmax / edge-aggregate ops behind [`crate::GatLayer`].
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    /// Source node of each directed edge.
    pub src: Rc<Vec<u32>>,
    /// Destination node of each directed edge.
    pub dst: Rc<Vec<u32>>,
    /// Number of nodes.
    pub n: usize,
}

impl EdgeIndex {
    /// Build from a graph, optionally appending a self-loop edge per node
    /// (GAT conventionally attends over `N(v) ∪ {v}`).
    pub fn from_graph(g: &AttributedGraph, self_loops: bool) -> Self {
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for (u, v) in g.directed_edges() {
            src.push(u);
            dst.push(v);
        }
        if self_loops {
            for u in 0..g.num_nodes() as u32 {
                src.push(u);
                dst.push(u);
            }
        }
        Self {
            src: Rc::new(src),
            dst: Rc::new(dst),
            n: g.num_nodes(),
        }
    }

    /// Number of directed edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the edge list is empty.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// Every adjacency view a model might need for one graph, computed once.
///
/// `Rc`-shared so it can be captured by tape ops without copying.
#[derive(Clone, Debug)]
pub struct GraphContext {
    /// Number of nodes.
    pub n: usize,
    /// Plain binary adjacency `A`.
    pub adjacency: Rc<Csr>,
    /// GCN-normalised `D^{-1/2}(A + I)D^{-1/2}`.
    pub gcn: Rc<Csr>,
    /// Mean aggregation `D⁻¹A` (no self-loops) — MeanConv over `N(v)`.
    pub mean: Rc<Csr>,
    /// Mean aggregation with self-loops — MeanConv over `N(v) ∪ {v}`
    /// (the self-loop-edge technique, Eq. 13).
    pub mean_self_loops: Rc<Csr>,
    /// Directed edges including self-loops (for GAT).
    pub edges: EdgeIndex,
}

impl GraphContext {
    /// Precompute every view for `g`.
    pub fn from_graph(g: &AttributedGraph) -> Self {
        Self {
            n: g.num_nodes(),
            adjacency: Rc::new(g.adjacency()),
            gcn: Rc::new(g.gcn_adjacency()),
            mean: Rc::new(g.mean_adjacency(false)),
            mean_self_loops: Rc::new(g.mean_adjacency(true)),
            edges: EdgeIndex::from_graph(g, true),
        }
    }

    /// The MeanConv operator with or without the self-loop-edge technique.
    pub fn mean_adjacency(&self, self_loops: bool) -> &Rc<Csr> {
        if self_loops {
            &self.mean_self_loops
        } else {
            &self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    #[test]
    fn edge_index_counts() {
        let mut g = AttributedGraph::new(Matrix::zeros(4, 1));
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let plain = EdgeIndex::from_graph(&g, false);
        assert_eq!(plain.len(), 4);
        let with_loops = EdgeIndex::from_graph(&g, true);
        assert_eq!(with_loops.len(), 8);
        assert_eq!(with_loops.n, 4);
    }

    #[test]
    fn context_views_are_consistent() {
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let ctx = GraphContext::from_graph(&g);
        assert_eq!(ctx.n, 3);
        assert_eq!(ctx.adjacency.nnz(), 4);
        assert_eq!(ctx.gcn.nnz(), 7); // A + I entries
        assert_eq!(ctx.mean.nnz(), 4);
        assert_eq!(ctx.mean_self_loops.nnz(), 7);
        assert_eq!(ctx.edges.len(), 7);
    }
}
