//! Per-graph adjacency state shared by all layers, built lazily and
//! memoised on the graph itself.

use std::cell::OnceCell;
use std::rc::Rc;

use vgod_graph::{AttributedGraph, GraphStore};
use vgod_tensor::Csr;

/// A directed edge list in structure-of-arrays form, as consumed by the
/// gather / segment-softmax / edge-aggregate ops behind [`crate::GatLayer`].
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    /// Source node of each directed edge.
    pub src: Rc<Vec<u32>>,
    /// Destination node of each directed edge.
    pub dst: Rc<Vec<u32>>,
    /// Number of nodes.
    pub n: usize,
}

impl EdgeIndex {
    /// Build from a graph, optionally appending a self-loop edge per node
    /// (GAT conventionally attends over `N(v) ∪ {v}`).
    pub fn from_graph(g: &AttributedGraph, self_loops: bool) -> Self {
        let n = g.num_nodes();
        let cap = 2 * g.num_edges() + if self_loops { n } else { 0 };
        let mut src = Vec::with_capacity(cap);
        let mut dst = Vec::with_capacity(cap);
        for (u, v) in g.directed_edges() {
            src.push(u);
            dst.push(v);
        }
        if self_loops {
            for u in 0..n as u32 {
                src.push(u);
                dst.push(u);
            }
        }
        Self {
            src: Rc::new(src),
            dst: Rc::new(dst),
            n,
        }
    }

    /// Build from a binary adjacency CSR; row order matches
    /// [`EdgeIndex::from_graph`] exactly (edges sorted by source, then the
    /// self-loop block).
    fn from_csr(adj: &Csr, self_loops: bool) -> Self {
        let n = adj.n_rows();
        let cap = adj.nnz() + if self_loops { n } else { 0 };
        let mut src = Vec::with_capacity(cap);
        let mut dst = Vec::with_capacity(cap);
        for u in 0..n {
            for &v in adj.row_indices(u) {
                src.push(u as u32);
                dst.push(v);
            }
        }
        if self_loops {
            for u in 0..n as u32 {
                src.push(u);
                dst.push(u);
            }
        }
        Self {
            src: Rc::new(src),
            dst: Rc::new(dst),
            n,
        }
    }

    /// Number of directed edges.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the edge list is empty.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// Every adjacency view a model might need for one graph.
///
/// Only the plain binary adjacency is built up front; the normalised views
/// and the edge index are derived from it on first use and memoised. Obtain
/// a context through [`GraphContext::of`], which caches one `Rc`-shared
/// instance *on the graph itself* — `fit`, `score` and the bench harness all
/// see the same views, and any graph mutation invalidates the cache (see
/// `vgod_graph::ContextCache`).
#[derive(Clone, Debug)]
pub struct GraphContext {
    n: usize,
    adjacency: Rc<Csr>,
    gcn: OnceCell<Rc<Csr>>,
    mean: OnceCell<Rc<Csr>>,
    mean_self_loops: OnceCell<Rc<Csr>>,
    edges: OnceCell<EdgeIndex>,
}

impl GraphContext {
    /// The shared, memoised context for `g`: built on first call, retrieved
    /// from the graph's cache slot afterwards.
    pub fn of(g: &AttributedGraph) -> Rc<GraphContext> {
        g.cached(|g| Rc::new(GraphContext::from_graph(g)))
    }

    /// A fresh (non-shared) context for `g`. Cheap: only the plain
    /// adjacency is materialised; every other view is lazy.
    pub fn from_graph(g: &AttributedGraph) -> Self {
        Self::from_store(g)
    }

    /// A fresh context over any [`GraphStore`] backend: the binary
    /// adjacency CSR is assembled in one streaming sweep over the store's
    /// chunks (never touching an intermediate neighbour-list
    /// representation), and the GCN/mean/edge views stay lazy, derived
    /// from it on first use. For in-memory graphs this produces the same
    /// CSR bit-for-bit as the historical `g.adjacency()` path.
    pub fn from_store(store: &dyn GraphStore) -> Self {
        let n = store.num_nodes();
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(2 * store.num_edges());
        store.visit_adjacency(&mut |_, nbrs| {
            indices.extend_from_slice(nbrs);
            indptr.push(indices.len());
        });
        let values = vec![1.0f32; indices.len()];
        Self {
            n,
            adjacency: Rc::new(Csr::from_raw(n, n, indptr, indices, values)),
            gcn: OnceCell::new(),
            mean: OnceCell::new(),
            mean_self_loops: OnceCell::new(),
            edges: OnceCell::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Plain binary adjacency `A`.
    pub fn adjacency(&self) -> &Rc<Csr> {
        &self.adjacency
    }

    /// GCN-normalised `D^{-1/2}(A + I)D^{-1/2}`.
    pub fn gcn(&self) -> &Rc<Csr> {
        self.gcn
            .get_or_init(|| Rc::new(self.adjacency.gcn_normalized()))
    }

    /// Mean aggregation `D⁻¹A` (no self-loops) — MeanConv over `N(v)`.
    pub fn mean(&self) -> &Rc<Csr> {
        self.mean
            .get_or_init(|| Rc::new(self.adjacency.row_normalized()))
    }

    /// Mean aggregation with self-loops — MeanConv over `N(v) ∪ {v}`
    /// (the self-loop-edge technique, Eq. 13).
    pub fn mean_self_loops(&self) -> &Rc<Csr> {
        self.mean_self_loops
            .get_or_init(|| Rc::new(self.adjacency.with_self_loops(1.0).row_normalized()))
    }

    /// The MeanConv operator with or without the self-loop-edge technique.
    pub fn mean_adjacency(&self, self_loops: bool) -> &Rc<Csr> {
        if self_loops {
            self.mean_self_loops()
        } else {
            self.mean()
        }
    }

    /// Directed edges including self-loops (for GAT).
    pub fn edges(&self) -> &EdgeIndex {
        self.edges
            .get_or_init(|| EdgeIndex::from_csr(&self.adjacency, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    #[test]
    fn edge_index_counts() {
        let mut g = AttributedGraph::new(Matrix::zeros(4, 1));
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let plain = EdgeIndex::from_graph(&g, false);
        assert_eq!(plain.len(), 4);
        let with_loops = EdgeIndex::from_graph(&g, true);
        assert_eq!(with_loops.len(), 8);
        assert_eq!(with_loops.n, 4);
    }

    #[test]
    fn context_views_are_consistent() {
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let ctx = GraphContext::from_graph(&g);
        assert_eq!(ctx.n(), 3);
        assert_eq!(ctx.adjacency().nnz(), 4);
        assert_eq!(ctx.gcn().nnz(), 7); // A + I entries
        assert_eq!(ctx.mean().nnz(), 4);
        assert_eq!(ctx.mean_self_loops().nnz(), 7);
        assert_eq!(ctx.edges().len(), 7);
    }

    #[test]
    fn lazy_views_match_eager_graph_views() {
        let mut g = AttributedGraph::new(Matrix::zeros(5, 1));
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 4);
        // Node 3 stays isolated: the trickiest case for the mean views.
        let ctx = GraphContext::from_graph(&g);
        assert_eq!(ctx.gcn().to_dense(), g.gcn_adjacency().to_dense());
        assert_eq!(ctx.mean().to_dense(), g.mean_adjacency(false).to_dense());
        assert_eq!(
            ctx.mean_self_loops().to_dense(),
            g.mean_adjacency(true).to_dense()
        );
        let eager = EdgeIndex::from_graph(&g, true);
        assert_eq!(*ctx.edges().src, *eager.src);
        assert_eq!(*ctx.edges().dst, *eager.dst);
    }

    #[test]
    fn from_store_matches_from_graph_exactly() {
        let mut g = AttributedGraph::new(Matrix::zeros(6, 1));
        g.add_edge(0, 1);
        g.add_edge(1, 4);
        g.add_edge(2, 5);
        let via_graph = GraphContext::from_graph(&g);
        let via_store = GraphContext::from_store(&g as &dyn GraphStore);
        assert_eq!(
            via_graph.adjacency().to_dense(),
            via_store.adjacency().to_dense()
        );
        assert_eq!(via_graph.gcn().to_dense(), via_store.gcn().to_dense());
        assert_eq!(
            via_graph.mean_self_loops().to_dense(),
            via_store.mean_self_loops().to_dense()
        );
    }

    #[test]
    fn of_memoises_on_the_graph() {
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        g.add_edge(0, 1);
        let a = GraphContext::of(&g);
        let b = GraphContext::of(&g);
        assert!(Rc::ptr_eq(&a, &b));
        // Mutation invalidates the cached context.
        g.add_edge(1, 2);
        let c = GraphContext::of(&g);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(c.adjacency().nnz(), 4);
    }
}
