//! MeanConv / MinusConv — the parameter-free neighbour-variance layers of
//! the VGOD paper (Fig. 5, Eq. 7–9).

use std::rc::Rc;

use vgod_autograd::Var;
use vgod_tensor::{Csr, Matrix};

/// MeanConv (Eq. 7): neighbour mean `h̄_i = (1/|N_i|) Σ_{j∈N_i} h_j`,
/// implemented as `Ā h` with the row-normalised adjacency `Ā = D⁻¹A`.
pub fn mean_conv(h: &Var, mean_adj: &Rc<Csr>) -> Var {
    h.spmm(mean_adj)
}

/// Neighbour variance (Eq. 8), one value per node and hidden dimension:
///
/// `var(v_i) = (1/|N_i|) Σ_{j∈N_i} (h_j − h̄_i)²  =  Ā(h∘h) − (Āh)∘(Āh)`
///
/// (the `E[X²] − E[X]²` identity). This is the MinusConv layer: it fuses the
/// subtraction and squaring of Fig. 5(b) into two MeanConv passes, stays
/// O(|E| + |V|), and differentiates cleanly.
pub fn neighbor_variance(h: &Var, mean_adj: &Rc<Csr>) -> Var {
    let mean = mean_conv(h, mean_adj);
    let mean_of_squares = mean_conv(&h.square(), mean_adj);
    mean_of_squares.sub(&mean.square())
}

/// Structural outlier scores (Eq. 9): `o_i = ‖var(v_i)‖₁`, which for the
/// non-negative variance vector is simply its row sum. Returns an `n × 1`
/// variable.
pub fn neighbor_variance_scores(h: &Var, mean_adj: &Rc<Csr>) -> Var {
    neighbor_variance(h, mean_adj).row_sum()
}

/// Inference-time neighbour variance on plain matrices (no tape): used when
/// scoring a graph with a trained model.
pub fn neighbor_variance_matrix(h: &Matrix, mean_adj: &Csr) -> Matrix {
    let mean = mean_adj.spmm(h);
    let sq = mean_adj.spmm(&h.mul(h));
    sq.sub(&mean.mul(&mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_autograd::Tape;
    use vgod_graph::AttributedGraph;

    /// Star graph: centre 0 linked to 1..=k.
    fn star(k: usize, feats: Matrix) -> AttributedGraph {
        let mut g = AttributedGraph::new(feats);
        for i in 1..=k as u32 {
            g.add_edge(0, i);
        }
        g
    }

    #[test]
    fn variance_is_zero_for_identical_neighbors() {
        let mut feats = Matrix::filled(4, 2, 3.0);
        feats.row_mut(0).copy_from_slice(&[-7.0, 9.0]); // centre's own features don't matter
        let g = star(3, feats);
        let adj = Rc::new(g.mean_adjacency(false));
        let tape = Tape::new();
        let h = tape.constant(g.attrs().clone());
        let var = neighbor_variance(&h, &adj).value();
        assert!(
            var.row(0).iter().all(|v| v.abs() < 1e-5),
            "centre variance {:?}",
            var.row(0)
        );
    }

    #[test]
    fn variance_matches_direct_computation() {
        // Centre 0 with neighbours holding features [0], [2], [4]:
        // mean 2, variance (4+0+4)/3 = 8/3.
        let feats = Matrix::from_rows(&[&[100.0], &[0.0], &[2.0], &[4.0]]);
        let g = star(3, feats);
        let adj = Rc::new(g.mean_adjacency(false));
        let tape = Tape::new();
        let h = tape.constant(g.attrs().clone());
        let var = neighbor_variance(&h, &adj).value();
        assert!((var[(0, 0)] - 8.0 / 3.0).abs() < 1e-4);
        // Leaves see only the centre: variance 0.
        assert!(var[(1, 0)].abs() < 1e-4);
    }

    #[test]
    fn self_loop_raises_variance_of_deviant_node() {
        // Node 0's features differ from its neighbours'; with the self-loop
        // technique (Eq. 13) its own deviation enters the variance.
        let feats = Matrix::from_rows(&[&[10.0], &[1.0], &[1.0], &[1.0]]);
        let g = star(3, feats);
        let tape = Tape::new();
        let h = tape.constant(g.attrs().clone());
        let plain = neighbor_variance(&h, &Rc::new(g.mean_adjacency(false))).value();
        let with_sl = neighbor_variance(&h, &Rc::new(g.mean_adjacency(true))).value();
        // Without self-loops the centre's neighbours agree: variance ~0.
        assert!(plain[(0, 0)].abs() < 1e-4);
        // With self-loops the centre's own deviant feature shows up.
        assert!(
            with_sl[(0, 0)] > 1.0,
            "self-loop variance {}",
            with_sl[(0, 0)]
        );
        // And each *leaf* now sees {centre, itself} = {10, 1}: also large.
        assert!(with_sl[(1, 0)] > 1.0);
    }

    #[test]
    fn scores_are_row_sums_of_variance() {
        let feats = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0], &[3.0, -2.0], &[5.0, 0.0]]);
        let g = star(3, feats);
        let adj = Rc::new(g.mean_adjacency(false));
        let tape = Tape::new();
        let h = tape.constant(g.attrs().clone());
        let var = neighbor_variance(&h, &adj).value();
        let scores = neighbor_variance_scores(&h, &adj).value();
        for r in 0..4 {
            let manual: f32 = var.row(r).iter().sum();
            assert!((scores[(r, 0)] - manual).abs() < 1e-5);
        }
    }

    #[test]
    fn matrix_and_tape_variants_agree() {
        let feats = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0], &[-2.0, 1.0]]);
        let mut g = star(2, feats);
        g.add_edge(2, 3);
        let adj = g.mean_adjacency(false);
        let tape = Tape::new();
        let h = tape.constant(g.attrs().clone());
        let via_tape = neighbor_variance(&h, &Rc::new(adj.clone())).value();
        let via_matrix = neighbor_variance_matrix(g.attrs(), &adj);
        assert!(via_tape.approx_eq(&via_matrix, 1e-6));
    }

    #[test]
    fn variance_is_degree_invariant_in_scale() {
        // A structural-outlier detector must not favour high degree per se:
        // identical neighbourhood spread at different degrees gives a
        // comparable variance. Node A has 2 neighbours at ±1, node B has 20
        // neighbours alternating ±1 — same per-dimension variance 1.
        let mut feats = Matrix::zeros(24, 1);
        for i in 0..24 {
            feats[(i, 0)] = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut g = AttributedGraph::new(feats);
        // Node 22 connected to 0 (=+1) and 1 (=−1).
        g.add_edge(22, 0);
        g.add_edge(22, 1);
        // Node 23 connected to 2..22 (alternating ±1, ten of each).
        for v in 2..22u32 {
            g.add_edge(23, v);
        }
        let adj = Rc::new(g.mean_adjacency(false));
        let tape = Tape::new();
        let h = tape.constant(g.attrs().clone());
        let var = neighbor_variance(&h, &adj).value();
        assert!((var[(22, 0)] - 1.0).abs() < 1e-4);
        assert!((var[(23, 0)] - 1.0).abs() < 1e-4);
    }
}
