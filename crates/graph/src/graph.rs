//! The attributed-network type.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use rand::Rng;
use vgod_tensor::{Csr, Matrix};

/// A graph-attached memo slot for a derived per-graph cache (in practice:
/// `vgod-gnn`'s `GraphContext`), stored type-erased so `vgod-graph` does not
/// depend on the crates deriving things from it.
///
/// The slot is deliberately *not* cloned with the graph (a clone may be
/// about to be mutated, as in CoNAD's augmentation) and is invalidated by
/// every structural or attribute mutation.
pub struct ContextCache(RefCell<Option<Rc<dyn Any>>>);

impl Default for ContextCache {
    fn default() -> Self {
        Self(RefCell::new(None))
    }
}

impl Clone for ContextCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for ContextCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = if self.0.borrow().is_some() {
            "cached"
        } else {
            "empty"
        };
        write!(f, "ContextCache({state})")
    }
}

/// An undirected attributed network `G = (V, E, X)` (Definition 1 of the
/// VGOD paper), optionally carrying per-node community labels (used by the
/// label-aware injection approach of §VI-D and by the synthetic generators).
///
/// Adjacency is kept as sorted neighbour lists so that injection can edit
/// the structure cheaply; message-passing code converts to [`Csr`] views on
/// demand via [`AttributedGraph::mean_adjacency`] and friends.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    /// Sorted neighbour list per node; `adj[u]` contains `v` iff `adj[v]`
    /// contains `u` (undirected invariant).
    adj: Vec<Vec<u32>>,
    /// `n × d` attribute matrix.
    x: Matrix,
    /// Optional community label per node.
    labels: Option<Vec<u32>>,
    /// Memoised derived views (see [`ContextCache`]).
    cache: ContextCache,
}

impl AttributedGraph {
    /// An edgeless graph over the rows of `x`.
    pub fn new(x: Matrix) -> Self {
        let n = x.rows();
        Self {
            adj: vec![Vec::new(); n],
            x,
            labels: None,
            cache: ContextCache::default(),
        }
    }

    /// Fetch (or build and memoise) the per-graph derived cache of type `T`.
    ///
    /// The first call per graph runs `build`; later calls return the shared
    /// `Rc` for free. Any mutation of the graph (edges, attributes, labels)
    /// invalidates the slot, so a cached value always describes the current
    /// topology and attributes. Only one cache type is held at a time — a
    /// request for a different `T` rebuilds and replaces the slot.
    pub fn cached<T: 'static>(&self, build: impl FnOnce(&Self) -> Rc<T>) -> Rc<T> {
        if let Some(any) = self.cache.0.borrow().as_ref() {
            if let Ok(hit) = Rc::clone(any).downcast::<T>() {
                return hit;
            }
        }
        let built = build(self);
        *self.cache.0.borrow_mut() = Some(built.clone() as Rc<dyn Any>);
        built
    }

    /// Drop the memoised derived cache (called by every mutator).
    fn invalidate_cache(&mut self) {
        *self.cache.0.borrow_mut() = None;
    }

    /// Build directly from pre-sorted neighbour lists — the fast path for
    /// store-sampled subgraphs, which construct their adjacency sorted and
    /// symmetric already and would pay `O(m log m)` re-inserting edge by
    /// edge.
    ///
    /// # Panics
    /// Panics if `x` or `labels` disagree with the node count; debug builds
    /// additionally assert the undirected-adjacency invariants.
    pub fn from_sorted_adj(adj: Vec<Vec<u32>>, x: Matrix, labels: Option<Vec<u32>>) -> Self {
        assert_eq!(x.rows(), adj.len(), "attribute rows must match node count");
        if let Some(l) = &labels {
            assert_eq!(l.len(), adj.len(), "labels must cover every node");
        }
        let g = Self {
            adj,
            x,
            labels,
            cache: ContextCache::default(),
        };
        debug_assert!(
            g.check_invariants(),
            "from_sorted_adj: adjacency must be sorted, symmetric, loop-free"
        );
        g
    }

    /// Build from undirected edges (each pair stored in both directions;
    /// duplicates and self-loops are ignored).
    pub fn from_edges(x: Matrix, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::new(x);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Attach community labels (must cover every node).
    ///
    /// # Panics
    /// Panics if `labels.len() != n`.
    pub fn set_labels(&mut self, labels: Vec<u32>) {
        assert_eq!(
            labels.len(),
            self.num_nodes(),
            "labels must cover every node"
        );
        self.invalidate_cache();
        self.labels = Some(labels);
    }

    /// Community labels, if attached.
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Average node degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f32 {
        if self.adj.is_empty() {
            0.0
        } else {
            self.adj.iter().map(Vec::len).sum::<usize>() as f32 / self.adj.len() as f32
        }
    }

    /// Attribute dimension `d`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.x.cols()
    }

    /// The `n × d` attribute matrix.
    #[inline]
    pub fn attrs(&self) -> &Matrix {
        &self.x
    }

    /// Mutable attribute matrix (used by contextual-outlier injection).
    #[inline]
    pub fn attrs_mut(&mut self) -> &mut Matrix {
        self.invalidate_cache();
        &mut self.x
    }

    /// Replace the whole attribute matrix (must keep the node count).
    ///
    /// # Panics
    /// Panics if the row count changes.
    pub fn set_attrs(&mut self, x: Matrix) {
        assert_eq!(
            x.rows(),
            self.num_nodes(),
            "attribute matrix must keep the node count"
        );
        self.invalidate_cache();
        self.x = x;
    }

    /// Sorted neighbours of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Insert the undirected edge `{u, v}`. Self-loops and duplicates are
    /// ignored. Returns whether the edge was inserted.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.invalidate_cache();
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("undirected invariant violated");
                self.adj[v as usize].insert(pos_v, u);
                true
            }
        }
    }

    /// Remove the undirected edge `{u, v}`. Returns whether it existed.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.invalidate_cache();
                self.adj[u as usize].remove(pos_u);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect("undirected invariant violated");
                self.adj[v as usize].remove(pos_v);
                true
            }
        }
    }

    /// Append an isolated node with the given attribute row (and label, on
    /// labelled graphs), returning its id. The streaming overlay's
    /// `AddNode` mutation is the online counterpart of this.
    ///
    /// # Panics
    /// Panics if `attrs.len() != num_attrs()`, or if a label is supplied
    /// for an unlabelled graph (and vice versa).
    pub fn append_node(&mut self, attrs: &[f32], label: Option<u32>) -> u32 {
        let (n, d) = (self.num_nodes(), self.num_attrs());
        assert_eq!(attrs.len(), d, "attribute row must have {d} columns");
        assert_eq!(
            label.is_some(),
            self.labels.is_some(),
            "label presence must match the graph's labelling"
        );
        self.invalidate_cache();
        let mut x = Matrix::zeros(n + 1, d);
        x.as_mut_slice()[..n * d].copy_from_slice(self.x.as_slice());
        x.row_mut(n).copy_from_slice(attrs);
        self.x = x;
        self.adj.push(Vec::new());
        if let (Some(labels), Some(label)) = (&mut self.labels, label) {
            labels.push(label);
        }
        n as u32
    }

    /// Remove every edge incident to `u`, returning its former neighbours.
    pub fn detach_node(&mut self, u: u32) -> Vec<u32> {
        self.invalidate_cache();
        let old = std::mem::take(&mut self.adj[u as usize]);
        for &v in &old {
            if let Ok(pos) = self.adj[v as usize].binary_search(&u) {
                self.adj[v as usize].remove(pos);
            }
        }
        old
    }

    /// Fully connect the given nodes (clique injection, §IV-A1).
    pub fn make_clique(&mut self, nodes: &[u32]) {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                self.add_edge(u, v);
            }
        }
    }

    /// Directed edge list with both orientations (for edge-wise message
    /// passing such as GAT); sorted by source.
    pub fn directed_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(2 * self.num_edges());
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                out.push((u as u32, v));
            }
        }
        out
    }

    /// Unique undirected edges as `(u, v)` with `u < v`.
    pub fn undirected_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for (u, nbrs) in self.adj.iter().enumerate() {
            let u = u as u32;
            for &v in nbrs {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // CSR views
    // ------------------------------------------------------------------

    /// Binary adjacency matrix as CSR.
    pub fn adjacency(&self) -> Csr {
        self.build_csr(|_| 1.0, false)
    }

    /// Mean-aggregation adjacency `D⁻¹A` — the MeanConv operator (Eq. 7).
    /// With `self_loops`, each node is included in its own neighbourhood
    /// first (Eq. 13, the self-loop-edge technique).
    pub fn mean_adjacency(&self, self_loops: bool) -> Csr {
        self.build_csr(|deg| 1.0 / deg as f32, self_loops)
    }

    /// GCN symmetric normalisation `D^{-1/2}(A + I)D^{-1/2}`.
    pub fn gcn_adjacency(&self) -> Csr {
        self.adjacency().gcn_normalized()
    }

    fn build_csr(&self, weight_of_degree: impl Fn(usize) -> f32, self_loops: bool) -> Csr {
        let n = self.num_nodes();
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let nnz = self.adj.iter().map(Vec::len).sum::<usize>() + if self_loops { n } else { 0 };
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (u, nbrs) in self.adj.iter().enumerate() {
            let deg = nbrs.len() + usize::from(self_loops);
            let w = if deg == 0 { 0.0 } else { weight_of_degree(deg) };
            let mut inserted_self = !self_loops;
            for &v in nbrs {
                if !inserted_self && v as usize > u {
                    indices.push(u as u32);
                    values.push(w);
                    inserted_self = true;
                }
                indices.push(v);
                values.push(w);
            }
            if !inserted_self {
                indices.push(u as u32);
                values.push(w);
            }
            indptr.push(indices.len());
        }
        Csr::from_raw(n, n, indptr, indices, values)
    }

    // ------------------------------------------------------------------
    // Negative sampling (Definitions 3 & 4)
    // ------------------------------------------------------------------

    /// Sample a negative edge set `E⁻`: for every node `u`, `degree(u)`
    /// distinct non-neighbours sampled uniformly (Definition 3). Returned as
    /// directed `(u, v)` pairs grouped by `u`.
    ///
    /// Rejection sampling is capped at `30·degree(u) + 100` attempts per
    /// node. On dense graphs (few non-neighbours) the cap can exhaust
    /// before `degree(u)` distinct negatives are found; the remainder is
    /// then filled deterministically from the complement neighbourhood in
    /// id order, so every node always receives exactly
    /// `min(degree(u), n − 1 − degree(u))` negatives. Sparse graphs never
    /// reach the fallback, keeping the RNG stream (and therefore trained
    /// models) identical to pure rejection sampling.
    pub fn negative_edges(&self, rng: &mut impl Rng) -> Vec<(u32, u32)> {
        let n = self.num_nodes();
        let mut out = Vec::with_capacity(2 * self.num_edges());
        let mut picked_set: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for u in 0..n as u32 {
            let deg = self.degree(u);
            if deg == 0 || n <= deg + 1 {
                continue;
            }
            let mut picked: Vec<u32> = Vec::with_capacity(deg);
            picked_set.clear();
            let mut guard = 0usize;
            while picked.len() < deg && guard < deg * 30 + 100 {
                guard += 1;
                let v = rng.gen_range(0..n as u32);
                if v != u && !self.has_edge(u, v) && picked_set.insert(v) {
                    picked.push(v);
                }
            }
            if picked.len() < deg {
                // Cap exhausted (dense neighbourhood): fill from the
                // complement in id order up to the available supply.
                for v in 0..n as u32 {
                    if picked.len() >= deg {
                        break;
                    }
                    if v != u && !self.has_edge(u, v) && picked_set.insert(v) {
                        picked.push(v);
                    }
                }
            }
            for v in picked {
                out.push((u, v));
            }
        }
        out
    }

    /// The mean-aggregation operator of a sampled negative network `G⁻`
    /// (Definition 4): each node aggregates the mean of `degree(u)` sampled
    /// non-neighbours. With `self_loops`, the node itself is also included,
    /// mirroring [`AttributedGraph::mean_adjacency`].
    ///
    /// Inherits the attempt cap and deterministic complement fallback of
    /// [`AttributedGraph::negative_edges`], so it terminates (with full
    /// rows where the complement allows) even on near-complete graphs.
    pub fn negative_mean_adjacency(&self, self_loops: bool, rng: &mut impl Rng) -> Csr {
        let n = self.num_nodes();
        let neg = self.negative_edges(rng);
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, v) in neg {
            per_node[u as usize].push(v);
        }
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (u, nbrs) in per_node.iter_mut().enumerate() {
            if self_loops {
                nbrs.push(u as u32);
            }
            nbrs.sort_unstable();
            let deg = nbrs.len();
            if deg > 0 {
                let w = 1.0 / deg as f32;
                for &v in nbrs.iter() {
                    indices.push(v);
                    values.push(w);
                }
            }
            indptr.push(indices.len());
        }
        Csr::from_raw(n, n, indptr, indices, values)
    }

    /// Convenience: wrap a CSR view in `Rc` for use with the autograd ops.
    pub fn rc(csr: Csr) -> Rc<Csr> {
        Rc::new(csr)
    }

    /// The subgraph induced on `nodes` (in the given order): node `i` of
    /// the result corresponds to `nodes[i]`, attributes are copied, labels
    /// (when present) are carried over, and an edge is kept iff both
    /// endpoints are in `nodes`.
    ///
    /// # Panics
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> AttributedGraph {
        let mut local_of: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::with_capacity(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            assert!((u as usize) < self.num_nodes(), "node {u} out of range");
            let prev = local_of.insert(u, i as u32);
            assert!(prev.is_none(), "duplicate node {u} in induced_subgraph");
        }
        let x = self.x.gather_rows(nodes);
        let mut sub = AttributedGraph::new(x);
        for (&u, &lu) in &local_of {
            for &v in self.neighbors(u) {
                if let Some(&lv) = local_of.get(&v) {
                    if lu < lv {
                        sub.add_edge(lu, lv);
                    }
                }
            }
        }
        if let Some(labels) = self.labels() {
            sub.set_labels(nodes.iter().map(|&u| labels[u as usize]).collect());
        }
        sub
    }

    /// Check the undirected-adjacency invariants (sortedness, symmetry, no
    /// self-loops). Used by tests; cheap enough to call in debug builds.
    pub fn check_invariants(&self) -> bool {
        for (u, nbrs) in self.adj.iter().enumerate() {
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            for &v in nbrs {
                if v as usize == u || self.adj[v as usize].binary_search(&(u as u32)).is_err() {
                    return false;
                }
            }
        }
        self.x.rows() == self.adj.len()
            && self
                .labels
                .as_ref()
                .is_none_or(|l| l.len() == self.adj.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn path_graph(n: usize) -> AttributedGraph {
        let mut g = AttributedGraph::new(Matrix::zeros(n, 2));
        for i in 0..n as u32 - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.check_invariants());
    }

    #[test]
    fn remove_and_detach() {
        let mut g = path_graph(4);
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2));
        assert_eq!(g.num_edges(), 2);
        let old = g.detach_node(0);
        assert_eq!(old, vec![1]);
        assert_eq!(g.degree(0), 0);
        assert!(g.check_invariants());
    }

    #[test]
    fn clique_makes_all_pairs() {
        let mut g = AttributedGraph::new(Matrix::zeros(6, 1));
        g.make_clique(&[1, 3, 5]);
        assert!(g.has_edge(1, 3) && g.has_edge(1, 5) && g.has_edge(3, 5));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn mean_adjacency_rows_average_neighbors() {
        let g = path_graph(3);
        let csr = g.mean_adjacency(false);
        let h = Matrix::from_rows(&[&[1.0], &[2.0], &[5.0]]);
        let m = csr.spmm(&h);
        assert_eq!(m.row(0), &[2.0]); // only neighbour is node 1
        assert_eq!(m.row(1), &[3.0]); // mean of 1 and 5
        assert_eq!(m.row(2), &[2.0]);
    }

    #[test]
    fn mean_adjacency_with_self_loops_includes_self() {
        let g = path_graph(3);
        let csr = g.mean_adjacency(true);
        let h = Matrix::from_rows(&[&[1.0], &[2.0], &[5.0]]);
        let m = csr.spmm(&h);
        assert_eq!(m.row(0), &[1.5]); // mean of {1, 2}
        assert!((m.row(1)[0] - 8.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mean_adjacency_self_loop_ordering_is_sorted() {
        // Node 2 has neighbours {0, 1}; with a self-loop the CSR row must be
        // {0, 1, 2} in sorted order for from_raw's invariants.
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        g.add_edge(2, 0);
        g.add_edge(2, 1);
        let csr = g.mean_adjacency(true);
        assert_eq!(csr.row_indices(2), &[0, 1, 2]);
        assert_eq!(csr.row_indices(0), &[0, 2]);
    }

    #[test]
    fn isolated_nodes_produce_zero_rows() {
        let mut g = AttributedGraph::new(Matrix::zeros(3, 1));
        g.add_edge(0, 1);
        let csr = g.mean_adjacency(false);
        assert_eq!(csr.row_nnz(2), 0);
    }

    #[test]
    fn negative_edges_avoid_real_edges() {
        let mut rng = seeded_rng(3);
        let g = path_graph(30);
        let neg = g.negative_edges(&mut rng);
        assert!(!neg.is_empty());
        for &(u, v) in &neg {
            assert!(u != v);
            assert!(!g.has_edge(u, v), "negative edge {u}-{v} exists in G");
        }
        // Each node got (about) degree-many negatives.
        let mut counts = vec![0usize; 30];
        for &(u, _) in &neg {
            counts[u as usize] += 1;
        }
        for u in 0..30u32 {
            assert_eq!(counts[u as usize], g.degree(u));
        }
    }

    #[test]
    fn has_edge_agrees_with_neighbor_lists() {
        // Binary search over the sorted lists must agree with membership in
        // both directions, including high-degree hubs.
        let mut g = AttributedGraph::new(Matrix::zeros(50, 1));
        for v in 1..50u32 {
            g.add_edge(0, v); // hub
        }
        g.add_edge(7, 9);
        for v in 1..50u32 {
            assert!(g.has_edge(0, v) && g.has_edge(v, 0));
        }
        assert!(g.has_edge(9, 7));
        assert!(!g.has_edge(7, 8));
        assert!(!g.has_edge(3, 3));
        for u in 0..50u32 {
            for v in 0..50u32 {
                assert_eq!(g.has_edge(u, v), g.neighbors(u).contains(&v), "{u}-{v}");
            }
        }
    }

    #[test]
    fn negative_edges_dense_graph_hits_cap_and_falls_back() {
        // Complete graph minus a perfect matching: every node has exactly
        // one non-neighbour, so rejection sampling can never reach
        // degree-many distinct negatives. The capped fallback must still
        // terminate and deliver min(degree, n - 1 - degree) = 1 negative
        // per node — the full complement.
        let n = 8u32;
        let mut g = AttributedGraph::new(Matrix::zeros(n as usize, 1));
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v);
            }
        }
        for u in (0..n).step_by(2) {
            g.remove_edge(u, u + 1);
        }
        let mut rng = seeded_rng(11);
        let neg = g.negative_edges(&mut rng);
        let mut counts = vec![0usize; n as usize];
        for &(u, v) in &neg {
            assert!(u != v && !g.has_edge(u, v));
            counts[u as usize] += 1;
        }
        for u in 0..n {
            let available = n as usize - 1 - g.degree(u);
            assert_eq!(
                counts[u as usize],
                g.degree(u).min(available),
                "node {u} must get its full complement"
            );
        }
        // And the mean-aggregation view over the same sampler stays valid.
        let mut rng = seeded_rng(12);
        let csr = g.negative_mean_adjacency(false, &mut rng);
        for r in 0..n as usize {
            let s: f32 = csr.row_values(r).iter().sum();
            if csr.row_nnz(r) > 0 {
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn negative_edges_distinct_per_node() {
        let mut rng = seeded_rng(4);
        let g = path_graph(40);
        let neg = g.negative_edges(&mut rng);
        let mut per_node: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for (u, v) in neg {
            per_node.entry(u).or_default().push(v);
        }
        for (u, vs) in per_node {
            let mut dedup = vs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), vs.len(), "node {u} repeated a negative");
        }
    }

    #[test]
    fn from_sorted_adj_builds_the_same_graph() {
        let g = path_graph(6);
        let adj: Vec<Vec<u32>> = (0..6u32).map(|u| g.neighbors(u).to_vec()).collect();
        let rebuilt = AttributedGraph::from_sorted_adj(adj, Matrix::zeros(6, 2), Some(vec![0; 6]));
        assert!(rebuilt.check_invariants());
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        for u in 0..6u32 {
            assert_eq!(rebuilt.neighbors(u), g.neighbors(u));
        }
        assert_eq!(rebuilt.labels(), Some(&[0u32; 6][..]));
    }

    #[test]
    fn negative_mean_adjacency_rows_sum_to_one() {
        let mut rng = seeded_rng(9);
        let g = path_graph(20);
        let neg = g.negative_mean_adjacency(false, &mut rng);
        for r in 0..20 {
            let s: f32 = neg.row_values(r).iter().sum();
            if neg.row_nnz(r) > 0 {
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn directed_edges_double_undirected() {
        let g = path_graph(5);
        assert_eq!(g.directed_edges().len(), 2 * g.num_edges());
        assert_eq!(g.undirected_edges().len(), g.num_edges());
        for (u, v) in g.undirected_edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut g = AttributedGraph::new(Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32));
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.set_labels(vec![0, 0, 1, 1, 1]);
        let sub = g.induced_subgraph(&[3, 1, 2]);
        assert_eq!(sub.num_nodes(), 3);
        // Local ids: 0↦3, 1↦1, 2↦2. Edges kept: (1,2)→(1,2), (2,3)→(2,0).
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(1, 2));
        assert!(sub.has_edge(2, 0));
        assert!(!sub.has_edge(0, 1)); // 3–1 was not an edge
        assert_eq!(sub.attrs().row(0), g.attrs().row(3));
        assert_eq!(sub.labels().unwrap(), &[1, 0, 1]);
        assert!(sub.check_invariants());
    }

    #[test]
    fn cached_memoises_until_mutation() {
        let mut g = path_graph(4);
        let a = g.cached(|g| Rc::new(g.num_edges()));
        let b = g.cached(|_| -> Rc<usize> { unreachable!("must hit the cache") });
        assert!(Rc::ptr_eq(&a, &b));
        // A structural mutation invalidates; the rebuild sees the new graph.
        g.add_edge(0, 3);
        let c = g.cached(|g| Rc::new(g.num_edges()));
        assert_eq!(*c, 4);
        // No-op mutations keep the cache.
        g.add_edge(0, 3);
        let d = g.cached(|_| -> Rc<usize> { unreachable!("no-op must not invalidate") });
        assert!(Rc::ptr_eq(&c, &d));
        // Attribute edits invalidate too.
        g.attrs_mut();
        let e = g.cached(|g| Rc::new(g.num_edges()));
        assert!(!Rc::ptr_eq(&c, &e));
    }

    /// Regression: every mutator must drop the derived cache — a stale
    /// GNN context silently scoring the pre-mutation topology is exactly
    /// the class of bug the streaming delta path cannot tolerate.
    #[test]
    fn every_mutator_invalidates_the_cache() {
        fn goes_cold(what: &str, mutate: impl FnOnce(&mut AttributedGraph)) {
            let mut g = path_graph(5);
            let warm = g.cached(|g| Rc::new(g.num_edges()));
            mutate(&mut g);
            let rebuilt = g.cached(|g| Rc::new(g.num_edges()));
            assert!(
                !Rc::ptr_eq(&warm, &rebuilt),
                "{what} must invalidate the derived cache"
            );
        }
        goes_cold("add_edge", |g| {
            g.add_edge(0, 4);
        });
        goes_cold("remove_edge", |g| {
            g.remove_edge(0, 1);
        });
        goes_cold("append_node", |g| {
            g.append_node(&[1.0, 2.0], None);
        });
        goes_cold("detach_node", |g| {
            g.detach_node(2);
        });
        goes_cold("set_attrs", |g| {
            g.set_attrs(Matrix::zeros(5, 3));
        });
        goes_cold("attrs_mut", |g| {
            g.attrs_mut();
        });
        goes_cold("set_labels", |g| {
            g.set_labels(vec![0; 5]);
        });
        goes_cold("make_clique", |g| {
            g.make_clique(&[0, 2, 4]);
        });
    }

    #[test]
    fn cloned_graph_starts_with_cold_cache() {
        let g = path_graph(3);
        let a = g.cached(|g| Rc::new(g.num_edges()));
        let g2 = g.clone();
        let b = g2.cached(|g| Rc::new(g.num_edges()));
        assert!(!Rc::ptr_eq(&a, &b), "clone must not share the memo slot");
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let g = path_graph(4);
        let _ = g.induced_subgraph(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "labels must cover every node")]
    fn wrong_label_length_panics() {
        let mut g = path_graph(3);
        g.set_labels(vec![0, 1]);
    }
}
