//! Edge-cut graph partitioning for distributed sharded scoring.
//!
//! The node set is split into contiguous, batch-aligned ranges — one per
//! shard. Each shard gets an on-disk [`OocStore`] *slice* holding its
//! owned nodes plus a **halo**: every ghost node within `hops` hops of the
//! owned range, with complete neighbour rows and attribute rows. The halo
//! is the explicit exchange step aggregation-based detectors need — the
//! variance/mean convolutions read attribute and degree rows of cross-
//! shard neighbours, so those rows are shipped to the owning shard at
//! partition time. Because slices keep **global** node ids inside
//! neighbour rows and [`ShardStore`] exposes the slice in the global id
//! space, the neighbour sampler resolves exactly the same subgraphs (same
//! RNG streams, same induced rows) as a single-process pass over the full
//! store — which is what makes merged shard scores byte-identical.
//!
//! On-disk layout of a partition directory:
//!
//! * `partition.manifest` — text metadata (graph shape, sampling config,
//!   per-shard ranges and halo statistics);
//! * `shard-<i>.vgodstore` — the shard's slice in the ordinary VGODSTR1
//!   format (or one shared `full.vgodstore` below the sampling threshold,
//!   where every shard scores from the materialised full graph anyway);
//! * `halo-<i>.vgodhalo` — the shard's sorted ghost-node id list.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::sample::SamplingConfig;
use crate::store::{
    write_store, GraphStore, OocStore, StoreOptions, DEFAULT_ATTR_BLOCK_NODES,
    DEFAULT_EDGE_BLOCK_ENTRIES,
};

/// Magic line of `partition.manifest`.
pub const PARTITION_MAGIC: &str = "# vgod-partition v1";
/// Magic bytes of `halo-<i>.vgodhalo` files.
pub const HALO_MAGIC: &[u8; 8] = b"VGODHAL1";

/// How [`partition_store`] laid the graph out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// At or below the sampling threshold every shard shares one full
    /// copy: detectors take the bit-identical full-graph path there, which
    /// needs the whole graph regardless of the shard's owned range.
    FullCopy,
    /// Above the threshold each shard gets its own closure slice.
    Sliced,
}

impl PartitionMode {
    fn as_str(&self) -> &'static str {
        match self {
            PartitionMode::FullCopy => "full-copy",
            PartitionMode::Sliced => "sliced",
        }
    }

    fn parse(s: &str) -> Result<PartitionMode, String> {
        match s {
            "full-copy" => Ok(PartitionMode::FullCopy),
            "sliced" => Ok(PartitionMode::Sliced),
            other => Err(format!("unknown partition mode {other:?}")),
        }
    }
}

/// Configuration for [`partition_store`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of shards (contiguous node ranges).
    pub shards: usize,
    /// The sampling config workers will score under. Its `batch_size`
    /// fixes the range alignment, `hops` the halo radius, and
    /// `full_graph_threshold` the full-copy cutoff; all of it is recorded
    /// in the manifest so every worker scores under identical settings.
    pub sampling: SamplingConfig,
    /// Attribute rows per block in the written slices (`0` = default).
    pub attr_block_nodes: usize,
    /// Edge entries per block in the written slices (`0` = default).
    pub edge_block_entries: usize,
}

impl PartitionConfig {
    /// A partition config with default block sizes.
    pub fn new(shards: usize, sampling: SamplingConfig) -> Self {
        Self {
            shards,
            sampling,
            attr_block_nodes: 0,
            edge_block_entries: 0,
        }
    }
}

/// Per-shard partition metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard index.
    pub index: usize,
    /// First owned node id.
    pub lo: u32,
    /// One past the last owned node id.
    pub hi: u32,
    /// Nodes in the slice (owned + ghosts).
    pub closure: u64,
    /// Ghost (halo) nodes shipped to this shard.
    pub ghosts: u64,
    /// Directed edges from an owned node to a node outside the owned
    /// range — the shard's side of the edge cut.
    pub cross_edges: u64,
    /// Bytes of ghost attribute rows + ghost neighbour rows shipped in
    /// the halo exchange.
    pub halo_bytes: u64,
}

/// Metadata describing one partition directory.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionManifest {
    /// Global node count.
    pub num_nodes: usize,
    /// Global undirected edge count.
    pub num_edges: usize,
    /// Attribute dimension.
    pub num_attrs: usize,
    /// Full-copy or sliced layout.
    pub mode: PartitionMode,
    /// The sampling config the partition was built for (`ooc_threads` and
    /// `prefetch` are runtime knobs, recorded as their defaults).
    pub sampling: SamplingConfig,
    /// Per-shard ranges and halo statistics, in shard order.
    pub shards: Vec<ShardMeta>,
}

impl PartitionManifest {
    /// Path of the manifest file inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("partition.manifest")
    }

    /// Path of shard `i`'s slice store.
    pub fn slice_path(&self, dir: &Path, shard: usize) -> PathBuf {
        match self.mode {
            PartitionMode::FullCopy => dir.join("full.vgodstore"),
            PartitionMode::Sliced => dir.join(format!("shard-{shard}.vgodstore")),
        }
    }

    /// Path of shard `i`'s halo file (sliced mode only).
    pub fn halo_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("halo-{shard}.vgodhalo"))
    }

    /// Total ghost nodes shipped across all shards.
    pub fn total_ghosts(&self) -> u64 {
        self.shards.iter().map(|s| s.ghosts).sum()
    }

    /// Total cross-shard directed edges across all shards.
    pub fn total_cross_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.cross_edges).sum()
    }

    /// Total halo-exchange bytes across all shards.
    pub fn total_halo_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.halo_bytes).sum()
    }

    /// Serialise to the manifest text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(PARTITION_MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "graph n={} edges={} attrs={} mode={} shards={}\n",
            self.num_nodes,
            self.num_edges,
            self.num_attrs,
            self.mode.as_str(),
            self.shards.len()
        ));
        let s = &self.sampling;
        out.push_str(&format!(
            "sampling threshold={} batch={} fanout={} hops={} train_seeds={} seed={}\n",
            s.full_graph_threshold, s.batch_size, s.fanout, s.hops, s.train_seeds, s.seed
        ));
        for m in &self.shards {
            out.push_str(&format!(
                "shard {} lo={} hi={} closure={} ghosts={} cross_edges={} halo_bytes={}\n",
                m.index, m.lo, m.hi, m.closure, m.ghosts, m.cross_edges, m.halo_bytes
            ));
        }
        out
    }

    /// Write the manifest into `dir`.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        std::fs::write(Self::path(dir), self.render())
            .map_err(|e| format!("{}: {e}", Self::path(dir).display()))
    }

    /// Parse a manifest from its text form.
    pub fn parse(text: &str) -> Result<PartitionManifest, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == PARTITION_MAGIC => {}
            other => return Err(format!("not a partition manifest: {other:?}")),
        }
        let graph = kv_line(lines.next(), "graph")?;
        let num_nodes = kv_get(&graph, "n")?;
        let num_edges = kv_get(&graph, "edges")?;
        let num_attrs = kv_get(&graph, "attrs")?;
        let mode = PartitionMode::parse(kv_get_str(&graph, "mode")?)?;
        let num_shards: usize = kv_get(&graph, "shards")?;
        let samp = kv_line(lines.next(), "sampling")?;
        let sampling = SamplingConfig {
            full_graph_threshold: kv_get(&samp, "threshold")?,
            batch_size: kv_get(&samp, "batch")?,
            fanout: kv_get(&samp, "fanout")?,
            hops: kv_get(&samp, "hops")?,
            train_seeds: kv_get(&samp, "train_seeds")?,
            seed: kv_get(&samp, "seed")?,
            ..SamplingConfig::default()
        };
        let mut shards = Vec::with_capacity(num_shards);
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("shard ")
                .ok_or_else(|| format!("bad manifest line {line:?}"))?;
            let (index_str, kvs) = rest
                .split_once(' ')
                .ok_or_else(|| format!("bad shard line {line:?}"))?;
            let index: usize = index_str
                .parse()
                .map_err(|e| format!("bad shard index {index_str:?}: {e}"))?;
            let kvs = parse_kvs(kvs)?;
            shards.push(ShardMeta {
                index,
                lo: kv_get(&kvs, "lo")?,
                hi: kv_get(&kvs, "hi")?,
                closure: kv_get(&kvs, "closure")?,
                ghosts: kv_get(&kvs, "ghosts")?,
                cross_edges: kv_get(&kvs, "cross_edges")?,
                halo_bytes: kv_get(&kvs, "halo_bytes")?,
            });
        }
        if shards.len() != num_shards {
            return Err(format!(
                "manifest declares {num_shards} shards but lists {}",
                shards.len()
            ));
        }
        for (i, m) in shards.iter().enumerate() {
            if m.index != i {
                return Err(format!("shard lines out of order at index {i}"));
            }
        }
        Ok(PartitionManifest {
            num_nodes,
            num_edges,
            num_attrs,
            mode,
            sampling,
            shards,
        })
    }

    /// Load the manifest from a partition directory.
    pub fn load(dir: &Path) -> Result<PartitionManifest, String> {
        let path = Self::path(dir);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }
}

type Kvs = Vec<(String, String)>;

fn parse_kvs(s: &str) -> Result<Kvs, String> {
    s.split_whitespace()
        .map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("bad key=value pair {pair:?}"))
        })
        .collect()
}

fn kv_line(line: Option<&str>, prefix: &str) -> Result<Kvs, String> {
    let line = line.ok_or_else(|| format!("manifest missing {prefix:?} line"))?;
    let rest = line
        .trim()
        .strip_prefix(prefix)
        .ok_or_else(|| format!("expected {prefix:?} line, got {line:?}"))?;
    parse_kvs(rest)
}

fn kv_get_str<'a>(kvs: &'a Kvs, key: &str) -> Result<&'a str, String> {
    kvs.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("manifest missing key {key:?}"))
}

fn kv_get<T: std::str::FromStr>(kvs: &Kvs, key: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    kv_get_str(kvs, key)?
        .parse()
        .map_err(|e| format!("bad value for {key:?}: {e}"))
}

/// The contiguous, batch-aligned owned ranges for `shards` shards over `n`
/// nodes. Every range starts on a `batch_size` boundary (so shards score
/// whole global batches) and the ranges tile `[0, n)` exactly; trailing
/// shards may be empty when `n` is small.
pub fn shard_ranges(n: usize, shards: usize, batch_size: usize) -> Vec<(u32, u32)> {
    assert!(shards >= 1, "need at least one shard");
    assert!(batch_size >= 1, "batch size must be positive");
    let per = n.div_ceil(shards).div_ceil(batch_size).max(1) * batch_size;
    (0..shards)
        .map(|i| ((i * per).min(n) as u32, ((i + 1) * per).min(n) as u32))
        .collect()
}

/// The directed cross-shard edge count of range `[lo, hi)`: edges from an
/// owned node to any node outside the range. This is the quantity halo
/// manifests account for, exposed for tests and diagnostics.
pub fn count_cross_edges(store: &dyn GraphStore, lo: u32, hi: u32) -> u64 {
    let mut nbrs = Vec::new();
    let mut cross = 0u64;
    for u in lo..hi {
        store.neighbors_into(u, &mut nbrs);
        cross += nbrs.iter().filter(|&&v| v < lo || v >= hi).count() as u64;
    }
    cross
}

/// The `hops`-hop closure ghosts of range `[lo, hi)`: every node outside
/// the range reachable within `hops` hops of it, sorted ascending.
pub fn closure_ghosts(store: &dyn GraphStore, lo: u32, hi: u32, hops: usize) -> Vec<u32> {
    let n = store.num_nodes();
    let mut in_closure = vec![false; n];
    for u in lo..hi {
        in_closure[u as usize] = true;
    }
    let mut frontier: Vec<u32> = (lo..hi).collect();
    let mut nbrs = Vec::new();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &u in &frontier {
            store.neighbors_into(u, &mut nbrs);
            for &v in &nbrs {
                if !in_closure[v as usize] {
                    in_closure[v as usize] = true;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    (0..n as u32)
        .filter(|&u| in_closure[u as usize] && !(lo..hi).contains(&u))
        .collect()
}

/// Partition `store` into `cfg.shards` contiguous ranges under `dir`,
/// writing per-shard slices, halo files, and the manifest. Returns the
/// manifest. Existing partition files in `dir` are overwritten.
pub fn partition_store(
    store: &dyn GraphStore,
    dir: &Path,
    cfg: &PartitionConfig,
) -> Result<PartitionManifest, String> {
    if cfg.shards == 0 {
        return Err("need at least one shard".into());
    }
    let n = store.num_nodes();
    if n == 0 {
        return Err("cannot partition an empty graph".into());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let d = store.num_attrs();
    let abn = if cfg.attr_block_nodes == 0 {
        DEFAULT_ATTR_BLOCK_NODES
    } else {
        cfg.attr_block_nodes
    };
    let ebe = if cfg.edge_block_entries == 0 {
        DEFAULT_EDGE_BLOCK_ENTRIES
    } else {
        cfg.edge_block_entries
    };
    let ranges = shard_ranges(n, cfg.shards, cfg.sampling.batch_size);
    let full_copy = cfg.sampling.below_threshold(store);
    let mode = if full_copy {
        PartitionMode::FullCopy
    } else {
        PartitionMode::Sliced
    };

    let mut shards = Vec::with_capacity(cfg.shards);
    if full_copy {
        // One shared full copy: below the threshold every detector takes
        // the materialised full-graph path, so slices would be full copies
        // anyway — write it once and point every shard at it.
        let path = dir.join("full.vgodstore");
        write_slice(
            store,
            &path,
            &(0..n as u32).collect::<Vec<_>>(),
            d,
            abn,
            ebe,
        )?;
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            shards.push(ShardMeta {
                index: i,
                lo,
                hi,
                closure: n as u64,
                ghosts: 0,
                cross_edges: count_cross_edges(store, lo, hi),
                halo_bytes: 0,
            });
        }
    } else {
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            let ghosts = closure_ghosts(store, lo, hi, cfg.sampling.hops);
            let cross_edges = count_cross_edges(store, lo, hi);
            let ghost_edge_entries: u64 = ghosts.iter().map(|&g| store.degree(g) as u64).sum();
            let halo_bytes = ghosts.len() as u64 * d as u64 * 4 + ghost_edge_entries * 4;
            let mut closure: Vec<u32> = Vec::with_capacity((hi - lo) as usize + ghosts.len());
            let gb = ghosts.partition_point(|&g| g < lo);
            closure.extend_from_slice(&ghosts[..gb]);
            closure.extend(lo..hi);
            closure.extend_from_slice(&ghosts[gb..]);
            write_slice(
                store,
                &dir.join(format!("shard-{i}.vgodstore")),
                &closure,
                d,
                abn,
                ebe,
            )?;
            write_halo(
                &PartitionManifest::halo_path(dir, i),
                i,
                lo,
                hi,
                cross_edges,
                halo_bytes,
                &ghosts,
            )?;
            shards.push(ShardMeta {
                index: i,
                lo,
                hi,
                closure: closure.len() as u64,
                ghosts: ghosts.len() as u64,
                cross_edges,
                halo_bytes,
            });
        }
    }

    let manifest = PartitionManifest {
        num_nodes: n,
        num_edges: store.num_edges(),
        num_attrs: d,
        mode,
        sampling: cfg.sampling,
        shards,
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// Write the slice store for `nodes` (sorted global ids): local ids are
/// positions in `nodes`, neighbour rows keep their **global** ids (the
/// VGODSTR1 format never range-checks row values, which is exactly what a
/// global-id slice needs).
fn write_slice(
    store: &dyn GraphStore,
    path: &Path,
    nodes: &[u32],
    d: usize,
    abn: usize,
    ebe: usize,
) -> Result<(), String> {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "unsorted slice ids");
    write_store(
        path,
        nodes.len(),
        d,
        abn,
        ebe,
        false,
        |lu, out| store.neighbors_into(nodes[lu as usize], out),
        |lu, out| store.attr_row_into(nodes[lu as usize], out),
        |_| 0,
    )
    .map_err(|e| format!("{}: {e}", path.display()))
}

fn write_halo(
    path: &Path,
    shard: usize,
    lo: u32,
    hi: u32,
    cross_edges: u64,
    halo_bytes: u64,
    ghosts: &[u32],
) -> Result<(), String> {
    let err = |e: std::io::Error| format!("{}: {e}", path.display());
    let mut out = BufWriter::new(File::create(path).map_err(err)?);
    out.write_all(HALO_MAGIC).map_err(err)?;
    for word in [
        shard as u64,
        lo as u64,
        hi as u64,
        cross_edges,
        halo_bytes,
        ghosts.len() as u64,
    ] {
        out.write_all(&word.to_le_bytes()).map_err(err)?;
    }
    for &g in ghosts {
        out.write_all(&g.to_le_bytes()).map_err(err)?;
    }
    out.flush().map_err(err)
}

/// A shard's halo file: its owned range, edge-cut size, and ghost ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HaloManifest {
    /// Shard index.
    pub shard: usize,
    /// First owned node id.
    pub lo: u32,
    /// One past the last owned node id.
    pub hi: u32,
    /// Directed edges leaving the owned range.
    pub cross_edges: u64,
    /// Bytes of ghost rows shipped in the halo.
    pub halo_bytes: u64,
    /// Sorted ghost node ids.
    pub ghosts: Vec<u32>,
}

impl HaloManifest {
    /// Read a halo file written by [`partition_store`].
    pub fn load(path: &Path) -> Result<HaloManifest, String> {
        let err = |e: std::io::Error| format!("{}: {e}", path.display());
        let mut input = std::io::BufReader::new(File::open(path).map_err(err)?);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic).map_err(err)?;
        if &magic != HALO_MAGIC {
            return Err(format!("{}: not a halo file", path.display()));
        }
        let mut words = [0u64; 6];
        let mut buf = [0u8; 8];
        for w in &mut words {
            input.read_exact(&mut buf).map_err(err)?;
            *w = u64::from_le_bytes(buf);
        }
        let [shard, lo, hi, cross_edges, halo_bytes, count] = words;
        let mut ghosts = Vec::with_capacity(count as usize);
        let mut id = [0u8; 4];
        for _ in 0..count {
            input.read_exact(&mut id).map_err(err)?;
            ghosts.push(u32::from_le_bytes(id));
        }
        Ok(HaloManifest {
            shard: shard as usize,
            lo: lo as u32,
            hi: hi as u32,
            cross_edges,
            halo_bytes,
            ghosts,
        })
    }
}

/// One shard's slice of a partitioned graph, exposed in the **global** id
/// space: `num_nodes()` is the full graph's node count and every node
/// access takes a global id, translated to the slice's local row under the
/// hood. The neighbour sampler therefore runs completely unchanged on a
/// `ShardStore` — global batch indices, global seed ranges, global
/// neighbour ids — and produces bit-identical sampled subgraphs for every
/// node in the shard's closure. Accessing a node outside the closure
/// panics: the partition radius (`hops`) guarantees scoring the owned
/// range never does.
pub struct ShardStore {
    inner: OocStore,
    manifest: PartitionManifest,
    meta: ShardMeta,
    /// Sorted ghost ids; empty in full-copy mode.
    ghosts: Vec<u32>,
    /// Ghosts with id below `meta.lo` (they occupy the first local rows).
    ghosts_below: usize,
    full_copy: bool,
}

impl ShardStore {
    /// Open shard `shard` of the partition under `dir`.
    pub fn open(dir: &Path, shard: usize, opts: StoreOptions) -> Result<ShardStore, String> {
        let manifest = PartitionManifest::load(dir)?;
        let meta = manifest
            .shards
            .get(shard)
            .ok_or_else(|| {
                format!(
                    "partition has {} shards, no shard {shard}",
                    manifest.shards.len()
                )
            })?
            .clone();
        let full_copy = manifest.mode == PartitionMode::FullCopy;
        let ghosts = if full_copy {
            Vec::new()
        } else {
            let halo = HaloManifest::load(&PartitionManifest::halo_path(dir, shard))?;
            if halo.shard != shard || halo.lo != meta.lo || halo.hi != meta.hi {
                return Err(format!(
                    "halo file for shard {shard} disagrees with the manifest"
                ));
            }
            halo.ghosts
        };
        let inner = OocStore::open_with(&manifest.slice_path(dir, shard), opts)?;
        let expect = if full_copy {
            manifest.num_nodes
        } else {
            meta.closure as usize
        };
        if inner.num_nodes() != expect {
            return Err(format!(
                "slice for shard {shard} has {} nodes, manifest says {expect}",
                inner.num_nodes()
            ));
        }
        let ghosts_below = ghosts.partition_point(|&g| g < meta.lo);
        Ok(ShardStore {
            inner,
            manifest,
            meta,
            ghosts,
            ghosts_below,
            full_copy,
        })
    }

    /// The partition manifest this shard belongs to.
    pub fn manifest(&self) -> &PartitionManifest {
        &self.manifest
    }

    /// This shard's metadata (owned range, halo statistics).
    pub fn meta(&self) -> &ShardMeta {
        &self.meta
    }

    /// The owned node range `[lo, hi)` this shard scores.
    pub fn owned_range(&self) -> (u32, u32) {
        (self.meta.lo, self.meta.hi)
    }

    /// The sampling config the partition was built for.
    pub fn sampling(&self) -> SamplingConfig {
        self.manifest.sampling
    }

    /// Translate a global id to the slice-local row.
    fn local(&self, u: u32) -> u32 {
        if self.full_copy {
            return u;
        }
        if (self.meta.lo..self.meta.hi).contains(&u) {
            return self.ghosts_below as u32 + (u - self.meta.lo);
        }
        match self.ghosts.binary_search(&u) {
            Ok(i) if i < self.ghosts_below => i as u32,
            Ok(i) => (self.meta.hi - self.meta.lo) + i as u32,
            Err(_) => panic!(
                "node {u} is outside shard {}'s closure (owned [{}, {}), {} ghosts)",
                self.meta.index,
                self.meta.lo,
                self.meta.hi,
                self.ghosts.len()
            ),
        }
    }

    fn sliced_only_panic(&self, what: &str) -> ! {
        panic!(
            "{what} is a full-graph access, unavailable on a sliced ShardStore \
             (shard {} holds only its closure)",
            self.meta.index
        )
    }
}

impl GraphStore for ShardStore {
    fn num_nodes(&self) -> usize {
        // Global: samplers tile batches over the full node range.
        self.manifest.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.manifest.num_edges
    }

    fn num_attrs(&self) -> usize {
        self.inner.num_attrs()
    }

    fn degree(&self, u: u32) -> usize {
        self.inner.degree(self.local(u))
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        // Rows store global ids, so no translation of the values is needed.
        self.inner.neighbors_into(self.local(u), out);
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        // Row values are global, so the inner binary search takes `v` as is.
        self.inner.has_edge(self.local(u), v)
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        self.inner.attr_row_into(self.local(u), out);
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        if !self.full_copy {
            self.sliced_only_panic("visit_adjacency");
        }
        self.inner.visit_adjacency(cb);
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        if !self.full_copy {
            self.sliced_only_panic("visit_attrs");
        }
        self.inner.visit_attrs(cb);
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        None
    }

    fn stats(&self) -> crate::store::StoreStats {
        self.inner.stats()
    }

    fn as_shared(&self) -> Option<&(dyn GraphStore + Sync)> {
        Some(self)
    }

    fn prefetch_nodes(&self, lo: u32, hi: u32) {
        // Warm only the owned intersection: prefetch targets seed ranges,
        // and seeds scored by this shard always fall inside it.
        let (olo, ohi) = if self.full_copy {
            (lo, hi)
        } else {
            (lo.max(self.meta.lo), hi.min(self.meta.hi))
        };
        if olo >= ohi {
            return;
        }
        self.inner
            .prefetch_nodes(self.local(olo), self.local(ohi - 1) + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{synth_store, SynthStoreConfig};

    fn synth(dir: &Path, n: usize) -> PathBuf {
        let path = dir.join("g.vgodstore");
        let cfg = SynthStoreConfig::scaled(n, 42);
        synth_store(
            &path,
            &cfg,
            DEFAULT_ATTR_BLOCK_NODES,
            DEFAULT_EDGE_BLOCK_ENTRIES,
        )
        .unwrap();
        path
    }

    fn opts() -> StoreOptions {
        StoreOptions::new(16 << 20)
    }

    #[test]
    fn ranges_are_batch_aligned_and_tile() {
        for (n, shards, batch) in [(10_000, 4, 1024), (5, 4, 1024), (4096, 2, 1024)] {
            let ranges = shard_ranges(n, shards, batch);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1 as usize, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
            }
            for &(lo, hi) in &ranges {
                assert!(lo == hi || (lo as usize).is_multiple_of(batch));
                assert!((hi as usize).is_multiple_of(batch) || hi as usize == n);
            }
        }
    }

    #[test]
    fn manifest_round_trips() {
        let manifest = PartitionManifest {
            num_nodes: 5000,
            num_edges: 25_000,
            num_attrs: 32,
            mode: PartitionMode::Sliced,
            sampling: SamplingConfig {
                full_graph_threshold: 100,
                seed: 9,
                ..SamplingConfig::default()
            },
            shards: vec![
                ShardMeta {
                    index: 0,
                    lo: 0,
                    hi: 3072,
                    closure: 4000,
                    ghosts: 928,
                    cross_edges: 1200,
                    halo_bytes: 123_456,
                },
                ShardMeta {
                    index: 1,
                    lo: 3072,
                    hi: 5000,
                    closure: 2800,
                    ghosts: 872,
                    cross_edges: 1200,
                    halo_bytes: 99_000,
                },
            ],
        };
        let parsed = PartitionManifest::parse(&manifest.render()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn shard_store_matches_source_reads() {
        let dir = tempdir("partition_reads");
        let src = synth(&dir, 3000);
        let store = OocStore::open_with(&src, opts()).unwrap();
        let cfg = PartitionConfig::new(
            2,
            SamplingConfig {
                full_graph_threshold: 100, // force sliced mode
                batch_size: 512,
                ..SamplingConfig::default()
            },
        );
        let pdir = dir.join("parts");
        let manifest = partition_store(&store, &pdir, &cfg).unwrap();
        assert_eq!(manifest.mode, PartitionMode::Sliced);
        assert_eq!(manifest.num_nodes, 3000);
        let mut want = Vec::new();
        let mut got = Vec::new();
        let d = store.num_attrs();
        let mut row_want = vec![0f32; d];
        let mut row_got = vec![0f32; d];
        for (i, meta) in manifest.shards.iter().enumerate() {
            let shard = ShardStore::open(&pdir, i, opts()).unwrap();
            assert_eq!(shard.num_nodes(), 3000);
            let halo = HaloManifest::load(&PartitionManifest::halo_path(&pdir, i)).unwrap();
            // Every owned node and every ghost reads identically to the
            // source store.
            for &u in (meta.lo..meta.hi)
                .collect::<Vec<_>>()
                .iter()
                .chain(&halo.ghosts)
            {
                store.neighbors_into(u, &mut want);
                shard.neighbors_into(u, &mut got);
                assert_eq!(want, got, "row {u}");
                assert_eq!(store.degree(u), shard.degree(u));
                store.attr_row_into(u, &mut row_want);
                shard.attr_row_into(u, &mut row_got);
                assert_eq!(row_want, row_got, "attrs {u}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "closure")]
    fn out_of_closure_access_panics() {
        let dir = tempdir("partition_oob");
        let src = synth(&dir, 2000);
        let store = OocStore::open_with(&src, opts()).unwrap();
        let cfg = PartitionConfig::new(
            2,
            SamplingConfig {
                full_graph_threshold: 100,
                batch_size: 512,
                hops: 1,
                ..SamplingConfig::default()
            },
        );
        let pdir = dir.join("parts");
        partition_store(&store, &pdir, &cfg).unwrap();
        let shard = ShardStore::open(&pdir, 0, opts()).unwrap();
        // Mid-way through shard 1's range: more than one hop from shard 0.
        let mut out = Vec::new();
        shard.neighbors_into(1500, &mut out);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vgod_{}_{}", tag, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
