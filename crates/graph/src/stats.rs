//! Graph statistics used in the paper's analyses (Table I, Fig 9, §VI-E4).

use crate::AttributedGraph;

/// Summary of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Mean degree.
    pub mean: f32,
    /// Maximum degree.
    pub max: usize,
    /// Minimum degree.
    pub min: usize,
    /// Median degree.
    pub median: usize,
}

/// Degree statistics over all nodes (or over `subset` when given).
pub fn degree_stats(g: &AttributedGraph, subset: Option<&[u32]>) -> DegreeStats {
    let degrees: Vec<usize> = match subset {
        Some(ids) => ids.iter().map(|&u| g.degree(u)).collect(),
        None => (0..g.num_nodes() as u32).map(|u| g.degree(u)).collect(),
    };
    if degrees.is_empty() {
        return DegreeStats {
            mean: 0.0,
            max: 0,
            min: 0,
            median: 0,
        };
    }
    let mut sorted = degrees.clone();
    sorted.sort_unstable();
    DegreeStats {
        mean: degrees.iter().sum::<usize>() as f32 / degrees.len() as f32,
        max: *sorted.last().expect("non-empty"),
        min: sorted[0],
        median: sorted[sorted.len() / 2],
    }
}

/// Edge homophily: the fraction of edges whose endpoints share a community
/// label. 1.0 for perfectly assortative graphs.
///
/// # Panics
/// Panics if the graph has no labels.
pub fn edge_homophily(g: &AttributedGraph) -> f32 {
    let labels = g
        .labels()
        .expect("edge_homophily requires community labels");
    let mut same = 0usize;
    let mut total = 0usize;
    for (u, v) in g.undirected_edges() {
        total += 1;
        if labels[u as usize] == labels[v as usize] {
            same += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f32 / total as f32
    }
}

/// Class-balance-adjusted homophily (Lim et al., the measure the VGOD paper
/// cites for Weibo): `(h_edge − Σ_c p_c²) / (1 − Σ_c p_c²)`, which is ≈ 0
/// for a random graph regardless of class balance.
pub fn adjusted_homophily(g: &AttributedGraph) -> f32 {
    let labels = g
        .labels()
        .expect("adjusted_homophily requires community labels");
    let n = labels.len().max(1);
    let n_comm = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
    let mut counts = vec![0usize; n_comm];
    for &c in labels {
        counts[c as usize] += 1;
    }
    let chance: f32 = counts.iter().map(|&c| (c as f32 / n as f32).powi(2)).sum();
    let h = edge_homophily(g);
    if chance >= 1.0 {
        0.0
    } else {
        (h - chance) / (1.0 - chance)
    }
}

/// Total attribute variance of a node subset: `Σ_d Var_{i∈S}(x_{i,d})` —
/// the statistic the paper reports for Weibo outliers (425.0) vs inliers
/// (11.95).
pub fn attribute_variance(g: &AttributedGraph, subset: &[u32]) -> f32 {
    if subset.len() < 2 {
        return 0.0;
    }
    let x = g.attrs();
    let d = x.cols();
    let m = subset.len() as f32;
    let mut total = 0.0f32;
    for col in 0..d {
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for &u in subset {
            let v = x[(u as usize, col)];
            sum += v;
            sq += v * v;
        }
        let mean = sum / m;
        total += (sq / m - mean * mean).max(0.0);
    }
    total
}

/// Connected-component id per node (BFS labelling; ids are dense from 0 in
/// discovery order). The second element is the number of components.
pub fn connected_components(g: &AttributedGraph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Size of the largest connected component.
pub fn largest_component_size(g: &AttributedGraph) -> usize {
    let (comp, k) = connected_components(g);
    let mut sizes = vec![0usize; k];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Number of triangles each node participates in, by sorted-adjacency
/// intersection: `O(Σ_u deg(u) · avg_deg)`.
pub fn triangle_counts(g: &AttributedGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut counts = vec![0usize; n];
    for u in 0..n as u32 {
        let nbrs_u = g.neighbors(u);
        for &v in nbrs_u {
            if v <= u {
                continue;
            }
            // Intersect sorted neighbour lists of u and v; count w > v so
            // each triangle {u, v, w} is found exactly once.
            let nbrs_v = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nbrs_u.len() && j < nbrs_v.len() {
                match nbrs_u[i].cmp(&nbrs_v[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nbrs_u[i];
                        if w > v {
                            counts[u as usize] += 1;
                            counts[v as usize] += 1;
                            counts[w as usize] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Local clustering coefficient per node: `2·T(u) / (deg(u)·(deg(u)−1))`,
/// 0.0 for degree < 2. Injected cliques push this toward 1.0 — one of the
/// higher-order structure signals GUIDE-style detectors exploit.
pub fn clustering_coefficients(g: &AttributedGraph) -> Vec<f32> {
    let triangles = triangle_counts(g);
    (0..g.num_nodes())
        .map(|u| {
            let d = g.degree(u as u32);
            if d < 2 {
                0.0
            } else {
                2.0 * triangles[u] as f32 / (d * (d - 1)) as f32
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_tensor::Matrix;

    fn labeled_graph() -> AttributedGraph {
        // Two triangles joined by one edge; labels 0 and 1.
        let mut g = AttributedGraph::new(Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.0, 0.1],
            &[0.1, 0.0],
            &[5.0, 5.0],
            &[5.0, 5.1],
            &[5.1, 5.0],
        ]));
        g.make_clique(&[0, 1, 2]);
        g.make_clique(&[3, 4, 5]);
        g.add_edge(2, 3);
        g.set_labels(vec![0, 0, 0, 1, 1, 1]);
        g
    }

    #[test]
    fn degree_stats_basics() {
        let g = labeled_graph();
        let s = degree_stats(&g, None);
        assert_eq!(s.max, 3);
        assert_eq!(s.min, 2);
        assert!((s.mean - 14.0 / 6.0).abs() < 1e-6);
        let sub = degree_stats(&g, Some(&[2, 3]));
        assert_eq!(sub.min, 3);
    }

    #[test]
    fn homophily_of_two_cliques() {
        let g = labeled_graph();
        // 6 intra edges, 1 inter edge.
        assert!((edge_homophily(&g) - 6.0 / 7.0).abs() < 1e-6);
        let adj = adjusted_homophily(&g);
        // chance = 0.5 ⇒ adjusted = (6/7 − 1/2) / (1/2) ≈ 0.714.
        assert!((adj - ((6.0 / 7.0 - 0.5) / 0.5)).abs() < 1e-5);
    }

    #[test]
    fn components_of_disjoint_cliques() {
        let mut g = AttributedGraph::new(Matrix::zeros(7, 1));
        g.make_clique(&[0, 1, 2]);
        g.make_clique(&[3, 4]);
        // node 5, 6 isolated
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 4);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[6]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn triangle_counts_on_known_graphs() {
        // A triangle: every node in exactly one triangle, clustering 1.0.
        let mut tri = AttributedGraph::new(Matrix::zeros(3, 1));
        tri.make_clique(&[0, 1, 2]);
        assert_eq!(triangle_counts(&tri), vec![1, 1, 1]);
        assert_eq!(clustering_coefficients(&tri), vec![1.0, 1.0, 1.0]);

        // A path: no triangles, clustering 0.
        let mut path = AttributedGraph::new(Matrix::zeros(4, 1));
        for i in 0..3u32 {
            path.add_edge(i, i + 1);
        }
        assert_eq!(triangle_counts(&path), vec![0, 0, 0, 0]);
        assert!(clustering_coefficients(&path).iter().all(|&c| c == 0.0));

        // K4: each node is in C(3,2) = 3 triangles.
        let mut k4 = AttributedGraph::new(Matrix::zeros(4, 1));
        k4.make_clique(&[0, 1, 2, 3]);
        assert_eq!(triangle_counts(&k4), vec![3; 4]);
        assert_eq!(clustering_coefficients(&k4), vec![1.0; 4]);
    }

    #[test]
    fn injected_cliques_raise_clustering() {
        let g = labeled_graph(); // two triangles + bridge
        let cc = clustering_coefficients(&g);
        assert_eq!(cc[0], 1.0);
        // Bridge endpoints have an extra non-triangle edge.
        assert!(cc[2] < 1.0 && cc[2] > 0.0);
    }

    #[test]
    fn attribute_variance_separates_spread_sets() {
        let g = labeled_graph();
        let tight = attribute_variance(&g, &[0, 1, 2]);
        let spread = attribute_variance(&g, &[0, 3]);
        assert!(spread > tight * 10.0, "spread {spread} vs tight {tight}");
        assert_eq!(attribute_variance(&g, &[0]), 0.0);
    }
}
