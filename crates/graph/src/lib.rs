//! # vgod-graph
//!
//! Attributed networks (Definition 1 of the VGOD paper) and everything the
//! detection pipeline needs around them: construction and editing, CSR
//! adjacency views for message passing, negative-edge sampling
//! (Definitions 3–4), synthetic community-structured generators used by the
//! dataset replicas, and graph statistics (degrees, homophily, attribute
//! variance).
//!
//! ```
//! use vgod_graph::{seeded_rng, AttributedGraph};
//! use vgod_tensor::Matrix;
//!
//! let mut g = AttributedGraph::new(Matrix::zeros(4, 2));
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! assert_eq!(g.degree(1), 2);
//! let mut rng = seeded_rng(0);
//! let neg = g.negative_edges(&mut rng);
//! assert!(neg.iter().all(|&(u, v)| !g.has_edge(u, v)));
//! ```

#![warn(missing_docs)]

mod attributes;
mod generate;
mod graph;
mod io;
mod overlay;
mod partition;
mod sample;
mod stats;
mod store;

pub use attributes::{binary_topic_attributes, gaussian_mixture_attributes, standard_normal};
pub use generate::{community_graph, CommunityGraphConfig};
pub use graph::{AttributedGraph, ContextCache};
pub use io::{load_graph, read_graph, save_graph, write_graph, GraphIoError};
pub use overlay::{
    induced_store_subgraph, k_hop_ball, BatchEffect, FrozenGraph, GraphMutation, OverlayDelta,
    OverlayGraph,
};
pub use partition::{
    closure_ghosts, count_cross_edges, partition_store, shard_ranges, HaloManifest,
    PartitionConfig, PartitionManifest, PartitionMode, ShardMeta, ShardStore, HALO_MAGIC,
    PARTITION_MAGIC,
};
pub use sample::{NeighborSampler, SampledBatch, SamplingConfig};
pub use stats::{
    adjusted_homophily, attribute_variance, clustering_coefficients, connected_components,
    degree_stats, edge_homophily, largest_component_size, triangle_counts, DegreeStats,
};
pub use store::{
    global_store_stats, in_memory_bytes_estimate, mix_seed, parse_mem_budget, synth_store,
    write_store, CachePolicy, GraphStore, OocStore, StoreOptions, StoreStats, SynthStoreConfig,
    SynthTruth, DEFAULT_ATTR_BLOCK_NODES, DEFAULT_CACHE_SHARDS, DEFAULT_EDGE_BLOCK_ENTRIES,
    STORE_MAGIC,
};

use rand::SeedableRng;

/// A deterministic RNG from a seed — every stochastic routine in the
/// workspace takes one of these so experiments are reproducible.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}
