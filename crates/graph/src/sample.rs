//! Detector-agnostic neighbour sampling over any [`GraphStore`].
//!
//! Generalises the VGOD-only mini-batch machinery into the shared
//! out-of-core loader: k-hop fan-out sampling (GraphSAGE/shaDow style)
//! producing small [`AttributedGraph`] subgraphs that every detector's
//! ordinary `fit`/`score` path can consume. Each batch draws from its own
//! RNG stream mixed from `(seed, stream, batch index)`, so sampled runs are
//! reproducible regardless of iteration order or worker-pool thread count
//! (the sampler itself never touches the pool).

use rand::Rng;

use crate::store::{mix_seed, GraphStore};
use crate::{seeded_rng, AttributedGraph};

const STREAM_SCORE: u64 = 0x0005_C08E;
const STREAM_TRAIN: u64 = 0x0007_8A14;

/// Sampling schedule shared by every detector's store-backed fit/score
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Graphs at or below this node count bypass sampling entirely: the
    /// store is materialised (or borrowed) and the detector's full-graph
    /// path runs, keeping results bit-identical to the pre-store code.
    pub full_graph_threshold: usize,
    /// Seed nodes per scoring batch.
    pub batch_size: usize,
    /// Maximum sampled neighbours per node per hop (fan-out).
    pub fanout: usize,
    /// Sampling depth: how many hops around the seeds are gathered.
    pub hops: usize,
    /// Seed nodes for the training subgraph of the generic `fit_store`
    /// path.
    pub train_seeds: usize,
    /// Master seed for every per-batch RNG stream.
    pub seed: u64,
    /// Worker threads for scoring sampled batches in parallel (stores that
    /// support shared access only). `0` defers to the tensor pool's
    /// configured thread count; `1` forces the sequential path. Scores are
    /// bit-identical at every setting — per-batch RNG streams depend only
    /// on `(seed, batch index)` and each batch writes a pre-assigned
    /// output slice.
    pub ooc_threads: usize,
    /// Overlap I/O with compute: while batch `k` scores, a background
    /// thread pages batch `k+1`'s blocks into the cache.
    pub prefetch: bool,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            full_graph_threshold: 20_000,
            batch_size: 1024,
            fanout: 8,
            hops: 2,
            train_seeds: 2048,
            seed: 0,
            ooc_threads: 0,
            prefetch: false,
        }
    }
}

impl SamplingConfig {
    /// Whether `store` is small enough for the bit-identical full-graph
    /// fast path.
    pub fn below_threshold(&self, store: &dyn GraphStore) -> bool {
        store.num_nodes() <= self.full_graph_threshold
    }

    /// The effective scoring thread count: `ooc_threads`, with `0`
    /// deferring to the tensor pool's configured size.
    pub fn score_threads(&self) -> usize {
        if self.ooc_threads == 0 {
            vgod_tensor::threading::num_threads()
        } else {
            self.ooc_threads
        }
    }

    /// The seed-node range `[lo, hi)` of scoring batch `b` at `n` nodes
    /// (matches [`NeighborSampler::score_batch`]).
    pub fn batch_seed_range(&self, n: usize, b: usize) -> (u32, u32) {
        let lo = b * self.batch_size;
        let hi = n.min(lo + self.batch_size);
        (lo as u32, hi as u32)
    }
}

/// One sampled subgraph: the seeds occupy local ids `0..num_seeds` (in
/// request order), followed by the sampled neighbourhood. `global_ids[i]`
/// is the store node behind local node `i`.
#[derive(Clone, Debug)]
pub struct SampledBatch {
    /// The local subgraph (attributes gathered; no labels).
    pub graph: AttributedGraph,
    /// Store id of each local node, seeds first.
    pub global_ids: Vec<u32>,
    /// How many leading local nodes are seeds.
    pub num_seeds: usize,
}

/// K-hop fan-out sampler over a [`GraphStore`] (see the module docs).
pub struct NeighborSampler<'a> {
    store: &'a dyn GraphStore,
    cfg: SamplingConfig,
}

fn sample_up_to(pool: &[u32], cap: usize, rng: &mut impl Rng) -> Vec<u32> {
    if pool.len() <= cap {
        pool.to_vec()
    } else {
        rand::seq::index::sample(rng, pool.len(), cap)
            .iter()
            .map(|i| pool[i])
            .collect()
    }
}

impl<'a> NeighborSampler<'a> {
    /// A sampler over `store` with the given schedule.
    ///
    /// # Panics
    /// Panics on a degenerate schedule (zero batch size or fan-out).
    pub fn new(store: &'a dyn GraphStore, cfg: SamplingConfig) -> Self {
        assert!(
            cfg.batch_size >= 1 && cfg.fanout >= 1,
            "degenerate sampling config"
        );
        Self { store, cfg }
    }

    /// The schedule this sampler runs.
    pub fn config(&self) -> &SamplingConfig {
        &self.cfg
    }

    /// Number of scoring batches covering every node once.
    pub fn num_score_batches(&self) -> usize {
        self.store.num_nodes().div_ceil(self.cfg.batch_size)
    }

    /// The `b`-th scoring batch: seeds are the contiguous node range
    /// `[b·batch_size, min(n, (b+1)·batch_size))`, so the batches tile the
    /// node set exactly once and concatenated seed scores line up with node
    /// ids. Deterministic: the batch RNG depends only on `(seed, b)`.
    pub fn score_batch(&self, b: usize) -> SampledBatch {
        let n = self.store.num_nodes();
        let lo = b * self.cfg.batch_size;
        assert!(lo < n, "batch {b} out of range");
        let hi = (lo + self.cfg.batch_size).min(n);
        let seeds: Vec<u32> = (lo as u32..hi as u32).collect();
        let mut rng = seeded_rng(mix_seed(self.cfg.seed, STREAM_SCORE, b as u64));
        self.subgraph(&seeds, &mut rng)
    }

    /// The training subgraph of the generic `fit_store` path:
    /// `train_seeds` distinct seeds drawn uniformly, plus their sampled
    /// k-hop neighbourhood.
    pub fn training_subgraph(&self) -> SampledBatch {
        let mut rng = seeded_rng(mix_seed(self.cfg.seed, STREAM_TRAIN, 0));
        let seeds = self.draw_training_seeds(&mut rng);
        self.subgraph(&seeds, &mut rng)
    }

    /// Just the training seed node ids (for detectors that run their own
    /// mini-batch loop over the seeds instead of one materialised
    /// subgraph). Deterministic: same ids as [`Self::training_subgraph`]
    /// uses.
    pub fn training_seeds(&self) -> Vec<u32> {
        let mut rng = seeded_rng(mix_seed(self.cfg.seed, STREAM_TRAIN, 0));
        self.draw_training_seeds(&mut rng)
    }

    fn draw_training_seeds(&self, rng: &mut impl Rng) -> Vec<u32> {
        let n = self.store.num_nodes();
        let want = self.cfg.train_seeds.clamp(1, n);
        rand::seq::index::sample(rng, n, want)
            .iter()
            .map(|i| i as u32)
            .collect()
    }

    /// Sample the subgraph around explicit seeds with this sampler's
    /// fan-out schedule and a caller-provided RNG.
    pub fn subgraph_around(&self, seeds: &[u32], rng: &mut impl Rng) -> SampledBatch {
        self.subgraph(seeds, rng)
    }

    fn subgraph(&self, seeds: &[u32], rng: &mut impl Rng) -> SampledBatch {
        let mut local_of: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::with_capacity(seeds.len() * (self.cfg.fanout + 1));
        let mut global_ids: Vec<u32> = Vec::with_capacity(seeds.len() * (self.cfg.fanout + 1));
        for &u in seeds {
            assert!(
                local_of.insert(u, global_ids.len() as u32).is_none(),
                "duplicate seed {u}"
            );
            global_ids.push(u);
        }
        let num_seeds = global_ids.len();

        // BFS expansion with per-hop fan-out sampling.
        let mut nbrs: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = global_ids.clone();
        for _ in 0..self.cfg.hops {
            let mut next: Vec<u32> = Vec::new();
            for &u in &frontier {
                self.store.neighbors_into(u, &mut nbrs);
                for v in sample_up_to(&nbrs, self.cfg.fanout, rng) {
                    if let std::collections::hash_map::Entry::Vacant(slot) = local_of.entry(v) {
                        slot.insert(global_ids.len() as u32);
                        global_ids.push(v);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }

        // Induced edges among the touched nodes (shaDow-style: the local
        // graph is the full induced subgraph, not just the sampled tree).
        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(global_ids.len());
        for &u in &global_ids {
            self.store.neighbors_into(u, &mut nbrs);
            let mut row: Vec<u32> = nbrs
                .iter()
                .filter_map(|v| local_of.get(v).copied())
                .collect();
            row.sort_unstable();
            adj.push(row);
        }
        let x = self.store.gather_attrs(&global_ids);
        SampledBatch {
            graph: AttributedGraph::from_sorted_adj(adj, x, None),
            global_ids,
            num_seeds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};

    fn graph(n: usize, seed: u64) -> AttributedGraph {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(&CommunityGraphConfig::homogeneous(n, 4, 5.0, 0.9), &mut rng);
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 6, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        g
    }

    fn cfg() -> SamplingConfig {
        SamplingConfig {
            full_graph_threshold: 100,
            batch_size: 64,
            fanout: 4,
            hops: 2,
            train_seeds: 100,
            seed: 7,
            ooc_threads: 0,
            prefetch: false,
        }
    }

    #[test]
    fn score_batches_tile_the_node_set() {
        let g = graph(300, 1);
        let sampler = NeighborSampler::new(&g, cfg());
        assert_eq!(sampler.num_score_batches(), 5);
        let mut covered = Vec::new();
        for b in 0..sampler.num_score_batches() {
            let batch = sampler.score_batch(b);
            assert!(batch.graph.check_invariants());
            assert!(batch.num_seeds <= 64);
            covered.extend_from_slice(&batch.global_ids[..batch.num_seeds]);
            // Seeds keep their store attributes.
            for i in 0..batch.num_seeds {
                let u = batch.global_ids[i] as usize;
                assert_eq!(batch.graph.attrs().row(i), g.attrs().row(u));
            }
            // Induced edges exist in the original graph.
            for (lu, lv) in batch.graph.undirected_edges() {
                assert!(g.has_edge(batch.global_ids[lu as usize], batch.global_ids[lv as usize]));
            }
        }
        assert_eq!(covered, (0..300u32).collect::<Vec<_>>());
    }

    #[test]
    fn batches_are_deterministic_across_samplers() {
        let g = graph(250, 2);
        let a = NeighborSampler::new(&g, cfg());
        let b = NeighborSampler::new(&g, cfg());
        for i in 0..a.num_score_batches() {
            let x = a.score_batch(i);
            let y = b.score_batch(i);
            assert_eq!(x.global_ids, y.global_ids);
            assert_eq!(x.graph.attrs().as_slice(), y.graph.attrs().as_slice());
            assert_eq!(x.graph.undirected_edges(), y.graph.undirected_edges());
        }
        let t1 = a.training_subgraph();
        let t2 = b.training_subgraph();
        assert_eq!(t1.global_ids, t2.global_ids);
    }

    #[test]
    fn batch_rng_streams_are_order_independent() {
        let g = graph(250, 3);
        let sampler = NeighborSampler::new(&g, cfg());
        let forward: Vec<_> = (0..sampler.num_score_batches())
            .map(|b| sampler.score_batch(b).global_ids)
            .collect();
        let backward: Vec<_> = (0..sampler.num_score_batches())
            .rev()
            .map(|b| sampler.score_batch(b).global_ids)
            .collect();
        for (b, ids) in forward.iter().enumerate() {
            assert_eq!(ids, &backward[forward.len() - 1 - b], "batch {b}");
        }
    }

    #[test]
    fn training_subgraph_has_distinct_seeds() {
        let g = graph(200, 4);
        let sampler = NeighborSampler::new(&g, cfg());
        let t = sampler.training_subgraph();
        assert_eq!(t.num_seeds, 100);
        let mut seeds = t.global_ids[..t.num_seeds].to_vec();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 100);
        assert!(t.graph.check_invariants());
    }

    #[test]
    #[should_panic(expected = "degenerate sampling config")]
    fn zero_fanout_panics() {
        let g = graph(120, 5);
        let _ = NeighborSampler::new(&g, SamplingConfig { fanout: 0, ..cfg() });
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn batches_of(g: &AttributedGraph, cfg: SamplingConfig) -> Vec<SampledBatch> {
            let sampler = NeighborSampler::new(g, cfg);
            let mut out: Vec<SampledBatch> = (0..sampler.num_score_batches())
                .map(|b| sampler.score_batch(b))
                .collect();
            out.push(sampler.training_subgraph());
            out
        }

        proptest! {
            /// Satellite: a fixed seed yields identical batches across
            /// independent runs AND across worker-pool thread counts — the
            /// sampler draws every batch from its own `(seed, stream, index)`
            /// RNG stream and never touches the pool, so squeezing the pool
            /// to one thread must not change a single sampled id or edge.
            #[test]
            fn fixed_seed_is_reproducible_across_runs_and_threads(
                n in 40usize..220,
                graph_seed in 0u64..50,
                sample_seed in 0u64..50,
                fanout in 1usize..6,
                hops in 1usize..4,
                batch_size in 8usize..96,
            ) {
                let g = graph(n, graph_seed);
                let cfg = SamplingConfig {
                    full_graph_threshold: 1,
                    batch_size,
                    fanout,
                    hops,
                    train_seeds: (n / 2).max(1),
                    seed: sample_seed,
                    ..SamplingConfig::default()
                };
                let first = batches_of(&g, cfg);
                let rerun = batches_of(&g, cfg);
                vgod_tensor::threading::force_sequential(true);
                let sequential = batches_of(&g, cfg);
                vgod_tensor::threading::force_sequential(false);
                for ((a, b), c) in first.iter().zip(&rerun).zip(&sequential) {
                    prop_assert_eq!(&a.global_ids, &b.global_ids);
                    prop_assert_eq!(&a.global_ids, &c.global_ids);
                    prop_assert_eq!(a.num_seeds, b.num_seeds);
                    prop_assert_eq!(a.graph.attrs().as_slice(), b.graph.attrs().as_slice());
                    prop_assert_eq!(a.graph.attrs().as_slice(), c.graph.attrs().as_slice());
                    prop_assert_eq!(a.graph.undirected_edges(), b.graph.undirected_edges());
                    prop_assert_eq!(a.graph.undirected_edges(), c.graph.undirected_edges());
                }
            }

            /// Satellite: below the threshold the full-graph fast path is
            /// what runs — `below_threshold` gates it, and the materialised
            /// store view agrees with the original graph exactly, so
            /// full-graph and "sampled" scoring coincide there.
            #[test]
            fn below_threshold_full_view_matches_graph(
                n in 20usize..120,
                graph_seed in 0u64..50,
            ) {
                let g = graph(n, graph_seed);
                let cfg = SamplingConfig {
                    full_graph_threshold: n,
                    ..SamplingConfig::default()
                };
                let store: &dyn GraphStore = &g;
                prop_assert!(cfg.below_threshold(store));
                let full = store.materialize();
                prop_assert_eq!(full.num_nodes(), g.num_nodes());
                prop_assert_eq!(full.attrs().as_slice(), g.attrs().as_slice());
                prop_assert_eq!(full.undirected_edges(), g.undirected_edges());
            }
        }
    }
}
