//! Community-conditioned attribute generators for the synthetic replicas.

use rand::Rng;
use vgod_tensor::Matrix;

/// Sample from a standard normal distribution via Box–Muller (rand 0.8 has
/// no normal distribution without `rand_distr`, which we avoid depending
/// on).
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Dense Gaussian-mixture attributes: each community `c` gets a random
/// centre `μ_c` with `‖μ_c‖ ≈ center_scale`, and node `i` samples
/// `x_i = μ_{label(i)} + noise · ε`, `ε ~ N(0, I)`.
///
/// Mimics attribute homophily in dense-feature graphs (Weibo-, Flickr-like
/// replicas).
pub fn gaussian_mixture_attributes(
    labels: &[u32],
    dim: usize,
    center_scale: f32,
    noise: f32,
    rng: &mut impl Rng,
) -> Matrix {
    let n_comm = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut centers = Matrix::zeros(n_comm, dim);
    for c in 0..n_comm {
        let row = centers.row_mut(c);
        for v in row.iter_mut() {
            *v = standard_normal(rng);
        }
        let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        let scale = center_scale / norm;
        for v in row.iter_mut() {
            *v *= scale;
        }
    }
    let mut x = Matrix::zeros(labels.len(), dim);
    for (i, &c) in labels.iter().enumerate() {
        let center: Vec<f32> = centers.row(c as usize).to_vec();
        let row = x.row_mut(i);
        for (v, &mu) in row.iter_mut().zip(&center) {
            *v = mu + noise * standard_normal(rng);
        }
    }
    x
}

/// Sparse binary bag-of-words attributes: each community prefers a block of
/// `dim / n_comm` words; node `i` draws `words_i` distinct word slots
/// (uniform in `words_range`), each taken from its community's preferred
/// block with probability `topic_affinity`, otherwise uniformly.
///
/// Mimics the citation networks (Cora/Citeseer/PubMed): binary features,
/// node-varying word counts (so attribute L2 norms vary — the property that
/// the contextual-injection leakage of §IV-B exploits), and
/// community-correlated supports.
pub fn binary_topic_attributes(
    labels: &[u32],
    dim: usize,
    words_range: (usize, usize),
    topic_affinity: f64,
    rng: &mut impl Rng,
) -> Matrix {
    assert!(words_range.0 >= 1 && words_range.1 >= words_range.0);
    assert!(
        words_range.1 <= dim,
        "cannot draw more distinct words than dimensions"
    );
    let n_comm = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
    let block = (dim / n_comm).max(1);
    let mut x = Matrix::zeros(labels.len(), dim);
    for (i, &c) in labels.iter().enumerate() {
        let n_words = rng.gen_range(words_range.0..=words_range.1);
        let block_start = (c as usize * block).min(dim - 1);
        let block_end = (block_start + block).min(dim);
        let row = x.row_mut(i);
        let mut placed = 0usize;
        let mut guard = 0usize;
        while placed < n_words && guard < n_words * 50 + 100 {
            guard += 1;
            let w = if rng.gen_bool(topic_affinity) && block_end > block_start {
                rng.gen_range(block_start..block_end)
            } else {
                rng.gen_range(0..dim)
            };
            if row[w] == 0.0 {
                row[w] = 1.0;
                placed += 1;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = seeded_rng(0);
        let samples: Vec<f32> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gaussian_attrs_cluster_by_community() {
        let mut rng = seeded_rng(1);
        let labels: Vec<u32> = (0..200).map(|i| (i % 4) as u32).collect();
        let x = gaussian_mixture_attributes(&labels, 16, 5.0, 0.5, &mut rng);
        // Same-community pairs should be closer than cross-community pairs
        // on average.
        let dist = |a: usize, b: usize| -> f32 {
            x.row(a)
                .iter()
                .zip(x.row(b))
                .map(|(&p, &q)| (p - q) * (p - q))
                .sum::<f32>()
        };
        let same = dist(0, 4) + dist(1, 5) + dist(2, 6);
        let cross = dist(0, 1) + dist(1, 2) + dist(2, 3);
        assert!(same < cross, "same {same} !< cross {cross}");
    }

    #[test]
    fn binary_attrs_are_binary_with_requested_word_counts() {
        let mut rng = seeded_rng(2);
        let labels: Vec<u32> = (0..50).map(|i| (i % 3) as u32).collect();
        let x = binary_topic_attributes(&labels, 60, (5, 15), 0.8, &mut rng);
        for r in 0..x.rows() {
            let ones = x.row(r).iter().filter(|&&v| v == 1.0).count();
            let zeros = x.row(r).iter().filter(|&&v| v == 0.0).count();
            assert_eq!(ones + zeros, 60);
            assert!((5..=15).contains(&ones), "row {r} has {ones} words");
        }
    }

    #[test]
    fn binary_attrs_prefer_community_block() {
        let mut rng = seeded_rng(3);
        let labels = vec![0u32; 100];
        let x = binary_topic_attributes(&labels, 100, (10, 10), 0.9, &mut rng);
        // Community 0's block is words 0..100/1... with one community the
        // whole space is the block; use two communities instead.
        let labels2: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let x2 = binary_topic_attributes(&labels2, 100, (10, 10), 0.9, &mut rng);
        let mut in_block = 0usize;
        let mut total = 0usize;
        for (r, &lab) in labels2.iter().enumerate() {
            let c = lab as usize;
            for (w, &v) in x2.row(r).iter().enumerate() {
                if v == 1.0 {
                    total += 1;
                    if w / 50 == c {
                        in_block += 1;
                    }
                }
            }
        }
        assert!(in_block as f32 / total as f32 > 0.8, "{in_block}/{total}");
        let _ = x;
    }
}
