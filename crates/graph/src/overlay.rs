//! Streaming graph mutations: an immutable packed base plus a versioned
//! copy-on-write overlay, composing into one [`GraphStore`].
//!
//! The serving engine's deployment graph is frozen at startup; streaming
//! mode replaces it with an [`OverlayGraph`]:
//!
//! * [`FrozenGraph`] — the packed base snapshot: CSR adjacency, dense
//!   attribute matrix, optional labels. Immutable and `Send + Sync`, so a
//!   compaction thread can read it while the mutation thread keeps
//!   serving.
//! * [`OverlayGraph`] — the base behind an `Arc`, plus per-row overlays:
//!   a mutated adjacency row is copied out of the base once and edited in
//!   place thereafter; attribute updates override whole rows; appended
//!   nodes live entirely in the overlay. Reads consult the overlay first
//!   and fall through to the packed base, so untouched rows stay on the
//!   fast path.
//! * Compaction — past a size threshold the owner snapshots the overlay
//!   ([`OverlayGraph::delta_snapshot`]), folds it into a fresh base off
//!   thread ([`FrozenGraph::compact`]), and swaps it back in
//!   ([`OverlayGraph::adopt_base`]). Every overlay entry is stamped with
//!   the version of the batch that last wrote it, so adoption drops
//!   exactly the entries the new base already covers and keeps rows
//!   mutated after the snapshot.
//!
//! Node removal is a *tombstone*: the node is detached from every
//! neighbour and its attribute row zeroed, but ids never shift and the
//! node count never shrinks. This keeps score vectors aligned across the
//! whole mutation history (and matches how the offline pipeline would see
//! the final graph written by the replay generator).

use std::collections::HashMap;
use std::sync::Arc;

use crate::{AttributedGraph, GraphStore};
use vgod_tensor::Matrix;

/// Heap-accounting overhead charged per overlay entry (hash-map slot +
/// `Vec` header); the byte gauge is an estimate for the compaction
/// trigger, not an allocator audit.
const ENTRY_OVERHEAD: usize = 48;

/// One mutation of a streaming graph (`POST /graph/update` op).
#[derive(Clone, Debug, PartialEq)]
pub enum GraphMutation {
    /// Append a node with the given attribute row (and label, when the
    /// graph carries labels). The new node's id is the current node count.
    AddNode {
        /// Attribute row, `d` entries.
        attrs: Vec<f32>,
        /// Community label for labelled graphs (defaults to 0).
        label: Option<u32>,
    },
    /// Tombstone a node: detach it from every neighbour and zero its
    /// attribute row. Ids never shift.
    RemoveNode {
        /// The node to tombstone.
        node: u32,
    },
    /// Insert the undirected edge `{u, v}` (no-op if present).
    AddEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Remove the undirected edge `{u, v}` (no-op if absent).
    RemoveEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Replace a node's attribute row.
    SetAttrs {
        /// The node to update.
        node: u32,
        /// New attribute row, `d` entries.
        attrs: Vec<f32>,
    },
}

/// What applying one mutation batch did.
#[derive(Clone, Debug, Default)]
pub struct BatchEffect {
    /// Ops that changed the graph (duplicate edge inserts and absent-edge
    /// removals apply cleanly but count as no-ops).
    pub applied: usize,
    /// Sorted, deduplicated nodes whose row, attributes or incident edges
    /// changed — including the *former* neighbours of removed edges and
    /// tombstoned nodes, so a k-hop ball around `touched` on the
    /// post-mutation graph covers every node whose score can have moved.
    pub touched: Vec<u32>,
    /// The overlay version after the batch (bumped once per batch that
    /// changed anything).
    pub version: u64,
}

/// The packed immutable base of a streaming graph: CSR adjacency plus a
/// dense attribute matrix. `Send + Sync` (plain owned data), so compaction
/// can rebuild a new base on a background thread while the mutation thread
/// keeps reading the old one through its `Arc`.
#[derive(Clone, Debug)]
pub struct FrozenGraph {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    x: Matrix,
    labels: Option<Vec<u32>>,
}

impl FrozenGraph {
    /// Pack any store into a frozen base (one adjacency sweep, one
    /// attribute sweep).
    pub fn from_store(store: &dyn GraphStore) -> FrozenGraph {
        let n = store.num_nodes();
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(2 * store.num_edges());
        store.visit_adjacency(&mut |_, nbrs| {
            indices.extend_from_slice(nbrs);
            indptr.push(indices.len());
        });
        let mut x = Matrix::zeros(n, store.num_attrs());
        store.visit_attrs(&mut |u, row| x.row_mut(u as usize).copy_from_slice(row));
        FrozenGraph {
            indptr,
            indices,
            x,
            labels: store.labels_vec(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len() / 2
    }

    /// Attribute dimension.
    pub fn num_attrs(&self) -> usize {
        self.x.cols()
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.indices[self.indptr[u as usize]..self.indptr[u as usize + 1]]
    }

    /// Attribute row of `u`.
    pub fn attr_row(&self, u: u32) -> &[f32] {
        self.x.row(u as usize)
    }

    /// Community labels, when present.
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Fold an overlay snapshot into a fresh packed base. Runs on the
    /// compaction thread; the mutation thread keeps serving from `base`
    /// (shared via `Arc`) plus its live overlay meanwhile.
    pub fn compact(base: &FrozenGraph, delta: &OverlayDelta) -> FrozenGraph {
        let n = delta.num_nodes;
        let d = base.num_attrs();
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        for u in 0..n as u32 {
            match delta.rows.get(&u) {
                Some(row) => indices.extend_from_slice(row),
                None if (u as usize) < base.num_nodes() => {
                    indices.extend_from_slice(base.neighbors(u));
                }
                None => {} // appended node never wired up: isolated
            }
            indptr.push(indices.len());
        }
        let mut x = Matrix::zeros(n, d);
        let shared = base.num_nodes().min(n);
        for u in 0..shared {
            x.row_mut(u).copy_from_slice(base.x.row(u));
        }
        for (&u, row) in &delta.attrs {
            x.row_mut(u as usize).copy_from_slice(row);
        }
        let labels = base.labels.as_ref().map(|base_labels| {
            let mut labels = Vec::with_capacity(n);
            labels.extend_from_slice(base_labels);
            for u in base_labels.len()..n {
                labels.push(delta.labels.get(&(u as u32)).copied().unwrap_or(0));
            }
            labels
        });
        FrozenGraph {
            indptr,
            indices,
            x,
            labels,
        }
    }
}

impl GraphStore for FrozenGraph {
    fn num_nodes(&self) -> usize {
        FrozenGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        FrozenGraph::num_edges(self)
    }

    fn num_attrs(&self) -> usize {
        FrozenGraph::num_attrs(self)
    }

    fn degree(&self, u: u32) -> usize {
        self.indptr[u as usize + 1] - self.indptr[u as usize]
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.neighbors(u));
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        out.copy_from_slice(self.attr_row(u));
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        for u in 0..self.num_nodes() as u32 {
            cb(u, self.neighbors(u));
        }
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        for u in 0..self.num_nodes() as u32 {
            cb(u, self.attr_row(u));
        }
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        self.labels.clone()
    }
}

#[derive(Clone, Debug)]
struct RowOverlay {
    neighbors: Vec<u32>,
    version: u64,
}

#[derive(Clone, Debug)]
struct AttrOverlay {
    row: Vec<f32>,
    version: u64,
}

/// A plain-data snapshot of the overlay, handed to the compaction thread
/// (everything in it is owned, so it is `Send`).
#[derive(Clone, Debug)]
pub struct OverlayDelta {
    rows: HashMap<u32, Vec<u32>>,
    attrs: HashMap<u32, Vec<f32>>,
    labels: HashMap<u32, u32>,
    num_nodes: usize,
    /// The overlay version this snapshot captures; pass it back to
    /// [`OverlayGraph::adopt_base`] so adoption drops exactly the entries
    /// the compacted base covers.
    pub version: u64,
}

/// A mutable graph: an `Arc`-shared [`FrozenGraph`] base under a versioned
/// copy-on-write overlay. Implements [`GraphStore`], so every detector
/// scoring path (full, sampled, range) runs against it unchanged.
#[derive(Clone, Debug)]
pub struct OverlayGraph {
    base: Arc<FrozenGraph>,
    rows: HashMap<u32, RowOverlay>,
    attrs: HashMap<u32, AttrOverlay>,
    labels: HashMap<u32, u32>,
    num_nodes: usize,
    num_edges: usize,
    version: u64,
    overlay_bytes: usize,
}

impl OverlayGraph {
    /// An overlay with no pending mutations over the given base.
    pub fn new(base: Arc<FrozenGraph>) -> OverlayGraph {
        OverlayGraph {
            num_nodes: base.num_nodes(),
            num_edges: base.num_edges(),
            base,
            rows: HashMap::new(),
            attrs: HashMap::new(),
            labels: HashMap::new(),
            version: 0,
            overlay_bytes: 0,
        }
    }

    /// The current base snapshot.
    pub fn base(&self) -> &Arc<FrozenGraph> {
        &self.base
    }

    /// Monotonic version, bumped once per applied batch.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Estimated heap bytes held by the overlay (the compaction trigger).
    pub fn overlay_bytes(&self) -> usize {
        self.overlay_bytes
    }

    /// Number of overlaid adjacency rows.
    pub fn overlay_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sorted neighbours of `u` (overlay row if touched, else base).
    pub fn neighbors_of(&self, u: u32) -> &[u32] {
        match self.rows.get(&u) {
            Some(row) => &row.neighbors,
            None if (u as usize) < self.base.num_nodes() => self.base.neighbors(u),
            None => &[],
        }
    }

    fn attr_row_of(&self, u: u32) -> &[f32] {
        match self.attrs.get(&u) {
            Some(over) => &over.row,
            None => self.base.attr_row(u),
        }
    }

    /// Copy-on-write handle to `u`'s adjacency row, stamped with the
    /// version the current batch will commit as.
    fn row_mut(&mut self, u: u32, version: u64) -> &mut Vec<u32> {
        let over = self.rows.entry(u).or_insert_with(|| {
            let neighbors = if (u as usize) < self.base.num_nodes() {
                self.base.neighbors(u).to_vec()
            } else {
                Vec::new()
            };
            self.overlay_bytes += ENTRY_OVERHEAD + 4 * neighbors.len();
            RowOverlay {
                neighbors,
                version,
            }
        });
        over.version = version;
        &mut over.neighbors
    }

    /// Apply one batch of mutations. The whole batch is validated first
    /// ([`OverlayGraph::validate_batch`]); an invalid op rejects the batch
    /// with the graph unchanged, so callers never observe a partially
    /// applied batch. Returns which nodes were touched, for frontier
    /// computation.
    pub fn apply_batch(&mut self, ops: &[GraphMutation]) -> Result<BatchEffect, String> {
        self.validate_batch(ops)?;
        let version = self.version + 1;
        let mut effect = BatchEffect {
            version: self.version,
            ..BatchEffect::default()
        };
        for (i, op) in ops.iter().enumerate() {
            let changed = self
                .apply_one(op, version, &mut effect.touched)
                .map_err(|e| format!("op {i}: {e}"))?;
            effect.applied += usize::from(changed);
        }
        if effect.applied > 0 {
            self.version = version;
        }
        effect.version = self.version;
        effect.touched.sort_unstable();
        effect.touched.dedup();
        Ok(effect)
    }

    /// Check every op in a batch without mutating anything, tracking the
    /// node count as `AddNode` ops would grow it. Covers every error
    /// `apply_one` can raise (out-of-range id, self-loop, attribute shape
    /// mismatch), which is what makes batch application atomic: a batch
    /// that passes validation cannot fail mid-way.
    pub fn validate_batch(&self, ops: &[GraphMutation]) -> Result<(), String> {
        fn check(u: u32, num_nodes: usize, i: usize) -> Result<(), String> {
            if (u as usize) < num_nodes {
                Ok(())
            } else {
                Err(format!(
                    "op {i}: node {u} out of range (graph has {num_nodes} nodes)"
                ))
            }
        }
        let mut num_nodes = self.num_nodes;
        let d = self.base.num_attrs();
        for (i, op) in ops.iter().enumerate() {
            match op {
                GraphMutation::AddEdge { u, v } => {
                    check(*u, num_nodes, i)?;
                    check(*v, num_nodes, i)?;
                    if u == v {
                        return Err(format!("op {i}: self-loop on node {u} not supported"));
                    }
                }
                GraphMutation::RemoveEdge { u, v } => {
                    check(*u, num_nodes, i)?;
                    check(*v, num_nodes, i)?;
                }
                GraphMutation::AddNode { attrs, .. } => {
                    if attrs.len() != d {
                        return Err(format!(
                            "op {i}: attribute row has {} entries, graph has {d} attributes",
                            attrs.len()
                        ));
                    }
                    num_nodes += 1;
                }
                GraphMutation::RemoveNode { node } => check(*node, num_nodes, i)?,
                GraphMutation::SetAttrs { node, attrs } => {
                    check(*node, num_nodes, i)?;
                    if attrs.len() != d {
                        return Err(format!(
                            "op {i}: attribute row has {} entries, graph has {d} attributes",
                            attrs.len()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_node(&self, u: u32) -> Result<(), String> {
        if (u as usize) < self.num_nodes {
            Ok(())
        } else {
            Err(format!("node {u} out of range (graph has {} nodes)", self.num_nodes))
        }
    }

    fn apply_one(
        &mut self,
        op: &GraphMutation,
        version: u64,
        touched: &mut Vec<u32>,
    ) -> Result<bool, String> {
        match op {
            GraphMutation::AddEdge { u, v } => {
                let (u, v) = (*u, *v);
                self.check_node(u)?;
                self.check_node(v)?;
                if u == v {
                    return Err(format!("self-loop on node {u} not supported"));
                }
                if self.neighbors_of(u).binary_search(&v).is_ok() {
                    return Ok(false);
                }
                for (a, b) in [(u, v), (v, u)] {
                    let row = self.row_mut(a, version);
                    let pos = row.binary_search(&b).expect_err("undirected invariant");
                    row.insert(pos, b);
                    self.overlay_bytes += 4;
                }
                self.num_edges += 1;
                touched.extend_from_slice(&[u, v]);
                Ok(true)
            }
            GraphMutation::RemoveEdge { u, v } => {
                let (u, v) = (*u, *v);
                self.check_node(u)?;
                self.check_node(v)?;
                if self.neighbors_of(u).binary_search(&v).is_err() {
                    return Ok(false);
                }
                for (a, b) in [(u, v), (v, u)] {
                    let row = self.row_mut(a, version);
                    let pos = row.binary_search(&b).expect("undirected invariant");
                    row.remove(pos);
                    self.overlay_bytes = self.overlay_bytes.saturating_sub(4);
                }
                self.num_edges -= 1;
                touched.extend_from_slice(&[u, v]);
                Ok(true)
            }
            GraphMutation::AddNode { attrs, label } => {
                if attrs.len() != self.base.num_attrs() {
                    return Err(format!(
                        "attribute row has {} entries, graph has {} attributes",
                        attrs.len(),
                        self.base.num_attrs()
                    ));
                }
                let u = self.num_nodes as u32;
                self.num_nodes += 1;
                self.rows.insert(
                    u,
                    RowOverlay {
                        neighbors: Vec::new(),
                        version,
                    },
                );
                self.attrs.insert(
                    u,
                    AttrOverlay {
                        row: attrs.clone(),
                        version,
                    },
                );
                self.overlay_bytes += 2 * ENTRY_OVERHEAD + 4 * attrs.len();
                if self.base.labels().is_some() {
                    self.labels.insert(u, label.unwrap_or(0));
                }
                touched.push(u);
                Ok(true)
            }
            GraphMutation::RemoveNode { node } => {
                let u = *node;
                self.check_node(u)?;
                let old = std::mem::take(self.row_mut(u, version));
                self.overlay_bytes = self.overlay_bytes.saturating_sub(4 * old.len());
                for &v in &old {
                    let row = self.row_mut(v, version);
                    let pos = row.binary_search(&u).expect("undirected invariant");
                    row.remove(pos);
                    self.overlay_bytes = self.overlay_bytes.saturating_sub(4);
                }
                self.num_edges -= old.len();
                let d = self.base.num_attrs();
                if self
                    .attrs
                    .insert(
                        u,
                        AttrOverlay {
                            row: vec![0.0; d],
                            version,
                        },
                    )
                    .is_none()
                {
                    self.overlay_bytes += ENTRY_OVERHEAD + 4 * d;
                }
                touched.push(u);
                touched.extend_from_slice(&old);
                Ok(true)
            }
            GraphMutation::SetAttrs { node, attrs } => {
                let u = *node;
                self.check_node(u)?;
                if attrs.len() != self.base.num_attrs() {
                    return Err(format!(
                        "attribute row has {} entries, graph has {} attributes",
                        attrs.len(),
                        self.base.num_attrs()
                    ));
                }
                if self
                    .attrs
                    .insert(
                        u,
                        AttrOverlay {
                            row: attrs.clone(),
                            version,
                        },
                    )
                    .is_none()
                {
                    self.overlay_bytes += ENTRY_OVERHEAD + 4 * attrs.len();
                }
                touched.push(u);
                Ok(true)
            }
        }
    }

    /// Snapshot the overlay for compaction (plain owned data, `Send`).
    pub fn delta_snapshot(&self) -> OverlayDelta {
        OverlayDelta {
            rows: self
                .rows
                .iter()
                .map(|(&u, r)| (u, r.neighbors.clone()))
                .collect(),
            attrs: self.attrs.iter().map(|(&u, a)| (u, a.row.clone())).collect(),
            labels: self.labels.clone(),
            num_nodes: self.num_nodes,
            version: self.version,
        }
    }

    /// Adopt a compacted base built from the snapshot taken at version
    /// `upto` ([`OverlayDelta::version`]): entries last written at or
    /// before `upto` are covered by the new base and dropped; entries
    /// written since stay overlaid (a row overlay always holds the *whole*
    /// current row, so it remains correct over any base).
    pub fn adopt_base(&mut self, base: Arc<FrozenGraph>, upto: u64) {
        self.rows.retain(|_, r| r.version > upto);
        self.attrs.retain(|_, a| a.version > upto);
        self.labels.retain(|&u, _| (u as usize) >= base.num_nodes());
        self.base = base;
        self.overlay_bytes = self
            .rows
            .values()
            .map(|r| ENTRY_OVERHEAD + 4 * r.neighbors.len())
            .sum::<usize>()
            + self
                .attrs
                .values()
                .map(|a| ENTRY_OVERHEAD + 4 * a.row.len())
                .sum::<usize>();
    }
}

impl GraphStore for OverlayGraph {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn num_attrs(&self) -> usize {
        self.base.num_attrs()
    }

    fn degree(&self, u: u32) -> usize {
        self.neighbors_of(u).len()
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.neighbors_of(u));
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors_of(u).binary_search(&v).is_ok()
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        out.copy_from_slice(self.attr_row_of(u));
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        for u in 0..self.num_nodes as u32 {
            cb(u, self.neighbors_of(u));
        }
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        for u in 0..self.num_nodes as u32 {
            cb(u, self.attr_row_of(u));
        }
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        let base_labels = self.base.labels()?;
        let mut labels = Vec::with_capacity(self.num_nodes);
        labels.extend_from_slice(base_labels);
        for u in base_labels.len()..self.num_nodes {
            labels.push(self.labels.get(&(u as u32)).copied().unwrap_or(0));
        }
        Some(labels)
    }
}

/// The ball `B_k(seeds)`: every node within `k` hops of a seed (including
/// the seeds), sorted. `k = 0` returns the seeds themselves.
pub fn k_hop_ball(store: &dyn GraphStore, seeds: &[u32], k: usize) -> Vec<u32> {
    let mut seen: std::collections::HashSet<u32> = seeds.iter().copied().collect();
    let mut frontier: Vec<u32> = seen.iter().copied().collect();
    let mut nbrs = Vec::new();
    for _ in 0..k {
        let mut next = Vec::new();
        for &u in &frontier {
            store.neighbors_into(u, &mut nbrs);
            for &v in &nbrs {
                if seen.insert(v) {
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut ball: Vec<u32> = seen.into_iter().collect();
    ball.sort_unstable();
    ball
}

/// The exact subgraph induced on `nodes` (sorted, unique): local id `i`
/// maps to `nodes[i]`, every neighbour list is complete within the set,
/// and — because both `nodes` and the store's neighbour lists are sorted —
/// local adjacency preserves the relative order of the full graph. That
/// ordering is what keeps per-row kernel accumulation (SpMM, GAT edge
/// aggregation) bit-identical between a closure subgraph and the full
/// graph, the invariant the delta rescoring path is built on. Labels are
/// deliberately not carried: detectors never read them, and skipping the
/// `O(n)` label materialisation keeps closure extraction proportional to
/// the closure, not the graph.
///
/// # Panics
/// Panics (in debug builds) if `nodes` is not strictly sorted.
pub fn induced_store_subgraph(store: &dyn GraphStore, nodes: &[u32]) -> AttributedGraph {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must be sorted");
    let mut adj = Vec::with_capacity(nodes.len());
    let mut nbrs = Vec::new();
    for &u in nodes {
        store.neighbors_into(u, &mut nbrs);
        let mut row = Vec::new();
        for &v in &nbrs {
            if let Ok(local) = nodes.binary_search(&v) {
                row.push(local as u32);
            }
        }
        adj.push(row);
    }
    let x = store.gather_attrs(nodes);
    AttributedGraph::from_sorted_adj(adj, x, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use rand::Rng;

    fn random_graph(n: usize, d: usize, seed: u64) -> AttributedGraph {
        let mut rng = seeded_rng(seed);
        let mut x = Matrix::zeros(n, d);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut g = AttributedGraph::new(x);
        for _ in 0..3 * n {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    }

    fn assert_same(store: &OverlayGraph, g: &AttributedGraph) {
        assert_eq!(GraphStore::num_nodes(store), g.num_nodes());
        assert_eq!(GraphStore::num_edges(store), g.num_edges());
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(store.neighbors_of(u), g.neighbors(u), "row {u}");
            let mut row = vec![0.0; g.num_attrs()];
            store.attr_row_into(u, &mut row);
            assert_eq!(row.as_slice(), g.attrs().row(u as usize), "attrs {u}");
        }
    }

    /// A random mutation against both the overlay and a mirror
    /// `AttributedGraph`, for equivalence checking.
    fn random_op(g: &AttributedGraph, rng: &mut impl Rng) -> GraphMutation {
        let n = g.num_nodes() as u32;
        match rng.gen_range(0..5) {
            0 => {
                let u = rng.gen_range(0..n);
                let v = (u + rng.gen_range(1..n)) % n;
                GraphMutation::AddEdge { u, v }
            }
            1 => GraphMutation::RemoveEdge {
                u: rng.gen_range(0..n),
                v: rng.gen_range(0..n),
            },
            2 => GraphMutation::SetAttrs {
                node: rng.gen_range(0..n),
                attrs: (0..g.num_attrs()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            },
            3 => GraphMutation::AddNode {
                attrs: (0..g.num_attrs()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                label: None,
            },
            _ => GraphMutation::RemoveNode {
                node: rng.gen_range(0..n),
            },
        }
    }

    fn mirror_apply(g: &mut AttributedGraph, op: &GraphMutation) {
        match op {
            GraphMutation::AddEdge { u, v } => {
                if u != v {
                    g.add_edge(*u, *v);
                }
            }
            GraphMutation::RemoveEdge { u, v } => {
                g.remove_edge(*u, *v);
            }
            GraphMutation::SetAttrs { node, attrs } => {
                g.attrs_mut().row_mut(*node as usize).copy_from_slice(attrs);
            }
            GraphMutation::AddNode { attrs, .. } => {
                let mut x = Matrix::zeros(g.num_nodes() + 1, g.num_attrs());
                x.as_mut_slice()[..g.attrs().as_slice().len()]
                    .copy_from_slice(g.attrs().as_slice());
                x.row_mut(g.num_nodes()).copy_from_slice(attrs);
                let mut adj: Vec<Vec<u32>> = (0..g.num_nodes() as u32)
                    .map(|u| g.neighbors(u).to_vec())
                    .collect();
                adj.push(Vec::new());
                *g = AttributedGraph::from_sorted_adj(adj, x, None);
            }
            GraphMutation::RemoveNode { node } => {
                g.detach_node(*node);
                g.attrs_mut().row_mut(*node as usize).fill(0.0);
            }
        }
    }

    #[test]
    fn frozen_round_trips_a_graph() {
        let g = random_graph(60, 3, 1);
        let f = FrozenGraph::from_store(&g);
        assert_eq!(f.num_nodes(), g.num_nodes());
        assert_eq!(f.num_edges(), g.num_edges());
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(f.neighbors(u), g.neighbors(u));
            assert_eq!(f.attr_row(u), g.attrs().row(u as usize));
        }
        assert_eq!(f.labels(), g.labels());
    }

    #[test]
    fn overlay_tracks_random_mutations() {
        let mut mirror = random_graph(50, 4, 2);
        let mut overlay = OverlayGraph::new(Arc::new(FrozenGraph::from_store(&mirror)));
        let mut rng = seeded_rng(9);
        for round in 0..20 {
            let ops: Vec<GraphMutation> =
                (0..5).map(|_| random_op(&mirror, &mut rng)).collect();
            // Apply op-by-op to the mirror so node counts stay in sync for
            // op generation inside the batch.
            for op in &ops {
                mirror_apply(&mut mirror, op);
            }
            overlay.apply_batch(&ops).unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_same(&overlay, &mirror);
        }
        assert!(overlay.overlay_bytes() > 0);
    }

    #[test]
    fn compaction_preserves_the_graph_and_prunes_the_overlay() {
        let mut mirror = random_graph(40, 3, 3);
        let mut overlay = OverlayGraph::new(Arc::new(FrozenGraph::from_store(&mirror)));
        let mut rng = seeded_rng(11);
        let ops: Vec<GraphMutation> = (0..30).map(|_| random_op(&mirror, &mut rng)).collect();
        for op in &ops {
            mirror_apply(&mut mirror, op);
        }
        overlay.apply_batch(&ops).unwrap();

        let snapshot = overlay.delta_snapshot();
        // Mutations applied between snapshot and adoption must survive.
        let late: Vec<GraphMutation> = (0..8).map(|_| random_op(&mirror, &mut rng)).collect();
        for op in &late {
            mirror_apply(&mut mirror, op);
        }
        overlay.apply_batch(&late).unwrap();

        let compacted = Arc::new(FrozenGraph::compact(overlay.base(), &snapshot));
        overlay.adopt_base(compacted, snapshot.version);
        assert_same(&overlay, &mirror);

        // A fully folded overlay (no late batch) drops to zero bytes.
        let snapshot = overlay.delta_snapshot();
        let compacted = Arc::new(FrozenGraph::compact(overlay.base(), &snapshot));
        overlay.adopt_base(compacted, snapshot.version);
        assert_eq!(overlay.overlay_bytes(), 0);
        assert_eq!(overlay.overlay_rows(), 0);
        assert_same(&overlay, &mirror);
    }

    #[test]
    fn batch_effect_reports_touched_and_noops() {
        let g = random_graph(20, 2, 4);
        let (u, v) = (0u32, 1u32);
        let mut overlay = OverlayGraph::new(Arc::new(FrozenGraph::from_store(&g)));
        let had = g.has_edge(u, v);
        let ops = vec![
            GraphMutation::AddEdge { u, v },
            GraphMutation::AddEdge { u, v }, // duplicate: no-op
        ];
        let effect = overlay.apply_batch(&ops).unwrap();
        assert_eq!(effect.applied, usize::from(!had));
        if !had {
            assert_eq!(effect.touched, vec![u, v]);
            assert_eq!(effect.version, 1);
        }

        // Tombstone: former neighbours are in the touched set.
        let w = 5u32;
        let former: Vec<u32> = overlay.neighbors_of(w).to_vec();
        let effect = overlay
            .apply_batch(&[GraphMutation::RemoveNode { node: w }])
            .unwrap();
        let mut expect = former;
        expect.push(w);
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(effect.touched, expect);
        assert_eq!(overlay.degree(w), 0);

        // Invalid ops abort with a message.
        assert!(overlay
            .apply_batch(&[GraphMutation::AddEdge { u: 0, v: 10_000 }])
            .is_err());
        assert!(overlay
            .apply_batch(&[GraphMutation::SetAttrs {
                node: 0,
                attrs: vec![1.0; 7],
            }])
            .is_err());
    }

    #[test]
    fn invalid_batch_rejects_atomically() {
        let g = random_graph(20, 2, 6);
        let mut overlay = OverlayGraph::new(Arc::new(FrozenGraph::from_store(&g)));
        // A valid op followed by an invalid one: nothing may apply.
        let err = overlay
            .apply_batch(&[
                GraphMutation::AddEdge { u: 0, v: 10 },
                GraphMutation::AddEdge { u: 4, v: 4 },
            ])
            .unwrap_err();
        assert!(err.contains("op 1"), "{err}");
        assert_eq!(overlay.version(), 0);
        assert_eq!(overlay.overlay_rows(), 0);
        assert_eq!(overlay.overlay_bytes(), 0);
        assert_same(&overlay, &g);

        // AddNode grows the id space for later ops in the same batch...
        let n = g.num_nodes() as u32;
        overlay
            .validate_batch(&[
                GraphMutation::AddNode {
                    attrs: vec![0.0; 2],
                    label: None,
                },
                GraphMutation::AddEdge { u: 0, v: n },
            ])
            .unwrap();
        // ...but without the append the same edge is out of range.
        assert!(overlay
            .validate_batch(&[GraphMutation::AddEdge { u: 0, v: n }])
            .is_err());
    }

    #[test]
    fn k_hop_ball_and_induced_subgraph_are_exact() {
        let g = random_graph(80, 3, 5);
        // Hand-rolled BFS reference.
        let seeds = [3u32, 40u32];
        for k in 0..4 {
            let ball = k_hop_ball(&g, &seeds, k);
            let mut expect: std::collections::HashSet<u32> = seeds.iter().copied().collect();
            for _ in 0..k {
                for u in expect.clone() {
                    expect.extend(g.neighbors(u).iter().copied());
                }
            }
            let mut expect: Vec<u32> = expect.into_iter().collect();
            expect.sort_unstable();
            assert_eq!(ball, expect, "k={k}");
        }

        let ball = k_hop_ball(&g, &seeds, 2);
        let sub = induced_store_subgraph(&g, &ball);
        let reference = g.induced_subgraph(&ball);
        assert_eq!(sub.num_nodes(), reference.num_nodes());
        assert_eq!(sub.num_edges(), reference.num_edges());
        for u in 0..sub.num_nodes() as u32 {
            assert_eq!(sub.neighbors(u), reference.neighbors(u));
        }
        assert_eq!(sub.attrs().as_slice(), reference.attrs().as_slice());
    }
}
