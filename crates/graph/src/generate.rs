//! Synthetic community-structured graph generators.

use rand::Rng;

use crate::AttributedGraph;
use vgod_tensor::Matrix;

/// Configuration for [`community_graph`], a planted-partition generator with
/// optional degree heterogeneity.
///
/// Edges are drawn one at a time: a source endpoint is sampled proportional
/// to node weight; with probability `intra_fraction` the target is sampled
/// (by weight) from the same community, otherwise from a different one.
/// With `degree_exponent = None` all weights are 1 (Poisson-like degrees, as
/// in citation networks); with `Some(γ)` node weights follow a truncated
/// power law, yielding the heavy-tailed degree distributions of the
/// social-network replicas (Flickr, Weibo).
#[derive(Clone, Debug)]
pub struct CommunityGraphConfig {
    /// Number of nodes.
    pub n: usize,
    /// Number of equal-size communities.
    pub communities: usize,
    /// Target average degree (`2|E| / |V|`).
    pub avg_degree: f32,
    /// Fraction of edges whose endpoints share a community (structural
    /// homophily knob).
    pub intra_fraction: f64,
    /// Power-law exponent for node weights (`w ∝ u^{-1/(γ-1)}`); `None`
    /// for homogeneous weights.
    pub degree_exponent: Option<f32>,
}

impl CommunityGraphConfig {
    /// A homogeneous planted-partition configuration.
    pub fn homogeneous(n: usize, communities: usize, avg_degree: f32, intra_fraction: f64) -> Self {
        Self {
            n,
            communities,
            avg_degree,
            intra_fraction,
            degree_exponent: None,
        }
    }
}

/// Generate an undirected community-structured graph. Node `i` belongs to
/// community `i % communities`; labels are attached to the returned graph.
/// Attributes are left zero-dimensional callers attach them afterwards via
/// [`AttributedGraph::set_attrs`].
pub fn community_graph(cfg: &CommunityGraphConfig, rng: &mut impl Rng) -> AttributedGraph {
    assert!(
        cfg.communities >= 1 && cfg.n >= cfg.communities * 2,
        "need ≥2 nodes per community"
    );
    let n = cfg.n;
    let labels: Vec<u32> = (0..n).map(|i| (i % cfg.communities) as u32).collect();

    // Node weights (degree propensities).
    let weights: Vec<f32> = match cfg.degree_exponent {
        None => vec![1.0; n],
        Some(gamma) => {
            let alpha = 1.0 / (gamma - 1.0);
            (0..n)
                .map(|_| {
                    let u: f32 = rng.gen_range(0.01f32..1.0);
                    u.powf(-alpha).min(1_000.0)
                })
                .collect()
        }
    };

    // Per-community cumulative weight tables for O(log n) sampling.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.communities];
    for (i, &c) in labels.iter().enumerate() {
        members[c as usize].push(i as u32);
    }
    let cumw: Vec<Vec<f32>> = members
        .iter()
        .map(|ms| {
            let mut acc = 0.0;
            ms.iter()
                .map(|&i| {
                    acc += weights[i as usize];
                    acc
                })
                .collect()
        })
        .collect();

    let sample_from = |c: usize, rng: &mut dyn rand::RngCore| -> u32 {
        let table = &cumw[c];
        let total = *table.last().expect("non-empty community");
        let t = rand::Rng::gen_range(rng, 0.0..total);
        let pos = table.partition_point(|&w| w < t);
        members[c][pos.min(table.len() - 1)]
    };

    let target_edges = ((cfg.avg_degree as f64) * n as f64 / 2.0).round() as usize;
    let mut g = AttributedGraph::new(Matrix::zeros(n, 0));
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = target_edges * 30 + 1000;
    while added < target_edges && attempts < max_attempts {
        attempts += 1;
        let cu = rng.gen_range(0..cfg.communities);
        let u = sample_from(cu, rng);
        let cv = if rng.gen_bool(cfg.intra_fraction) || cfg.communities == 1 {
            cu
        } else {
            let mut c = rng.gen_range(0..cfg.communities - 1);
            if c >= cu {
                c += 1;
            }
            c
        };
        let v = sample_from(cv, rng);
        if g.add_edge(u, v) {
            added += 1;
        }
    }
    g.set_labels(labels);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{edge_homophily, seeded_rng};

    #[test]
    fn hits_target_density() {
        let mut rng = seeded_rng(0);
        let cfg = CommunityGraphConfig::homogeneous(500, 5, 4.0, 0.9);
        let g = community_graph(&cfg, &mut rng);
        assert!(g.check_invariants());
        let avg = g.avg_degree();
        assert!((avg - 4.0).abs() < 0.5, "avg degree {avg}");
    }

    #[test]
    fn intra_fraction_controls_homophily() {
        let mut rng = seeded_rng(1);
        let tight = community_graph(
            &CommunityGraphConfig::homogeneous(400, 4, 6.0, 0.95),
            &mut rng,
        );
        let loose = community_graph(
            &CommunityGraphConfig::homogeneous(400, 4, 6.0, 0.4),
            &mut rng,
        );
        let h_tight = edge_homophily(&tight);
        let h_loose = edge_homophily(&loose);
        assert!(h_tight > 0.85, "tight homophily {h_tight}");
        assert!(h_loose < 0.6, "loose homophily {h_loose}");
    }

    #[test]
    fn power_law_weights_give_skewed_degrees() {
        let mut rng = seeded_rng(2);
        let mut cfg = CommunityGraphConfig::homogeneous(800, 4, 10.0, 0.8);
        cfg.degree_exponent = Some(2.5);
        let g = community_graph(&cfg, &mut rng);
        let max_deg = (0..800u32).map(|u| g.degree(u)).max().unwrap();
        // Heavy tail: max degree far above the mean.
        assert!(
            max_deg as f32 > 4.0 * g.avg_degree(),
            "max {max_deg}, avg {}",
            g.avg_degree()
        );
    }

    #[test]
    fn labels_partition_nodes_evenly() {
        let mut rng = seeded_rng(3);
        let g = community_graph(
            &CommunityGraphConfig::homogeneous(100, 4, 3.0, 0.8),
            &mut rng,
        );
        let labels = g.labels().unwrap();
        for c in 0..4u32 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 25);
        }
    }
}
