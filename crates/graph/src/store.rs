//! Graph storage backends: one trait over in-memory and out-of-core graphs.
//!
//! [`GraphStore`] is the read-side abstraction every detector consumes via
//! the sampled fit/score paths: neighbour lists, attribute rows, and
//! streaming visitors, with no assumption that the whole graph fits in RAM.
//! Two backends implement it:
//!
//! * [`AttributedGraph`] — the existing in-memory representation (the
//!   small-graph fast path; `as_full_graph` exposes it so callers can keep
//!   the bit-identical full-graph code path).
//! * [`OocStore`] — a chunked on-disk CSR + attribute store with an explicit
//!   memory budget. Fixed-size blocks are demand-paged with `pread` into a
//!   budgeted LRU block cache; only the row-pointer array stays resident.
//!
//! `OocStore` deliberately pages with positioned reads instead of `mmap`:
//! the scale-smoke CI job proves the budget under `ulimit -v`, and a mapping
//! of a multi-gigabyte store would count against the address-space limit
//! even when mostly non-resident. Explicit paging keeps both RSS *and*
//! virtual size bounded by the budget.
//!
//! ## On-disk layout (`VGODSTR1`)
//!
//! ```text
//! magic   8 B   "VGODSTR1"
//! header  7 × u64 LE: n, m_directed, d, attr_block_nodes,
//!                     edge_block_entries, flags (bit 0 = labels), reserved
//! indptr  (n+1) × u64 LE   — resident, counted against the budget
//! indices m_directed × u32 LE — sorted neighbour lists, concatenated
//! attrs   n × d × f32 LE      — row-major
//! labels  n × u32 LE          — only when flags bit 0 is set
//! ```
//!
//! Attribute blocks are row-aligned (`attr_block_nodes` rows per block), so
//! an attribute row never spans blocks; edge rows may, and are copied
//! per-block.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::attributes::standard_normal;
use crate::{seeded_rng, AttributedGraph};
use vgod_tensor::Matrix;

/// Magic bytes opening every on-disk store file.
pub const STORE_MAGIC: &[u8; 8] = b"VGODSTR1";

/// Default attribute rows per block (`attr_block_nodes`).
pub const DEFAULT_ATTR_BLOCK_NODES: usize = 2048;

/// Default edge entries per block (`edge_block_entries`).
pub const DEFAULT_EDGE_BLOCK_ENTRIES: usize = 65_536;

const HEADER_BYTES: u64 = 8 + 7 * 8;
const FLAG_LABELS: u64 = 1;

// ---------------------------------------------------------------------
// Store statistics
// ---------------------------------------------------------------------

/// Memory/IO counters for a store (or, via [`global_store_stats`], for every
/// store in the process — the serving `/metrics` view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Cached blocks currently resident.
    pub resident_blocks: u64,
    /// Bytes of cached block data currently resident (excluding `indptr`).
    pub resident_bytes: u64,
    /// The configured budget in bytes (0 for in-memory stores).
    pub budget_bytes: u64,
    /// Total bytes read from disk since the store was opened.
    pub bytes_read: u64,
    /// Blocks evicted to stay under the budget.
    pub evictions: u64,
}

static G_RESIDENT_BLOCKS: AtomicU64 = AtomicU64::new(0);
static G_RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);
static G_BYTES_READ: AtomicU64 = AtomicU64::new(0);
static G_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide out-of-core store counters, aggregated across every
/// [`OocStore`] ever opened (serving exposes these on `/metrics`).
pub fn global_store_stats() -> StoreStats {
    StoreStats {
        resident_blocks: G_RESIDENT_BLOCKS.load(Ordering::Relaxed),
        resident_bytes: G_RESIDENT_BYTES.load(Ordering::Relaxed),
        budget_bytes: 0,
        bytes_read: G_BYTES_READ.load(Ordering::Relaxed),
        evictions: G_EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Parse a human memory size: plain bytes, or a `K`/`M`/`G` suffix
/// (powers of 1024), e.g. `"96M"`, `"2G"`, `"4096"`.
pub fn parse_mem_budget(s: &str) -> Result<usize, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('K' | 'k') => (&s[..s.len() - 1], 1usize << 10),
        Some('M' | 'm') => (&s[..s.len() - 1], 1usize << 20),
        Some('G' | 'g') => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1usize),
    };
    let v: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad memory size {s:?} (expected e.g. 96M, 2G, or bytes)"))?;
    v.checked_mul(mult)
        .ok_or_else(|| format!("memory size {s:?} overflows"))
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix independent stream identifiers into one RNG seed, so per-batch RNG
/// streams are decorrelated and independent of iteration order.
pub fn mix_seed(seed: u64, stream: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ index)
}

// ---------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------

/// Read-only access to an attributed graph, independent of whether it lives
/// in memory or on disk. Object-safe: the sampled fit/score paths take
/// `&dyn GraphStore`.
pub trait GraphStore {
    /// Number of nodes `|V|`.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `|E|`.
    fn num_edges(&self) -> usize;

    /// Attribute dimension `d`.
    fn num_attrs(&self) -> usize;

    /// Degree of `u` (no IO for either backend: derived from row pointers).
    fn degree(&self, u: u32) -> usize;

    /// Replace `out` with the sorted neighbour list of `u`.
    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>);

    /// Whether the undirected edge `{u, v}` exists.
    fn has_edge(&self, u: u32, v: u32) -> bool;

    /// Copy node `u`'s attribute row into `out` (`out.len() == d`).
    fn attr_row_into(&self, u: u32, out: &mut [f32]);

    /// Stream every adjacency row in node order: `cb(u, sorted_neighbors)`.
    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32]));

    /// Stream every attribute row in node order: `cb(u, row)`.
    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32]));

    /// Community labels as an owned vector, when the store carries them.
    fn labels_vec(&self) -> Option<Vec<u32>> {
        None
    }

    /// The in-memory graph behind this store, when there is one (the
    /// zero-copy fast path below the sampling threshold).
    fn as_full_graph(&self) -> Option<&AttributedGraph> {
        None
    }

    /// Memory/IO counters (all zero for in-memory stores).
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Gather attribute rows for `nodes` (in order) into a dense matrix.
    fn gather_attrs(&self, nodes: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(nodes.len(), self.num_attrs());
        for (i, &u) in nodes.iter().enumerate() {
            self.attr_row_into(u, out.row_mut(i));
        }
        out
    }

    /// Materialise the whole store as an [`AttributedGraph`]. Only sensible
    /// below the sampling threshold; allocates `O(n·d + m)`.
    fn materialize(&self) -> AttributedGraph {
        let n = self.num_nodes();
        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
        self.visit_adjacency(&mut |_, nbrs| adj.push(nbrs.to_vec()));
        let mut x = Matrix::zeros(n, self.num_attrs());
        self.visit_attrs(&mut |u, row| x.row_mut(u as usize).copy_from_slice(row));
        AttributedGraph::from_sorted_adj(adj, x, self.labels_vec())
    }
}

impl GraphStore for AttributedGraph {
    fn num_nodes(&self) -> usize {
        AttributedGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        AttributedGraph::num_edges(self)
    }

    fn num_attrs(&self) -> usize {
        AttributedGraph::num_attrs(self)
    }

    fn degree(&self, u: u32) -> usize {
        AttributedGraph::degree(self, u)
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.neighbors(u));
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        AttributedGraph::has_edge(self, u, v)
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        out.copy_from_slice(self.attrs().row(u as usize));
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        for u in 0..self.num_nodes() as u32 {
            cb(u, self.neighbors(u));
        }
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        for u in 0..self.num_nodes() {
            cb(u as u32, self.attrs().row(u));
        }
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        self.labels().map(<[u32]>::to_vec)
    }

    fn as_full_graph(&self) -> Option<&AttributedGraph> {
        Some(self)
    }

    fn gather_attrs(&self, nodes: &[u32]) -> Matrix {
        // Same values as the default, but through the tuned (arena-backed)
        // gather kernel the full-graph paths already use.
        self.attrs().gather_rows(nodes)
    }
}

// ---------------------------------------------------------------------
// The out-of-core backend
// ---------------------------------------------------------------------

struct Entry<T> {
    data: Rc<Vec<T>>,
    tick: u64,
}

#[derive(Default)]
struct BlockCache {
    edge: HashMap<usize, Entry<u32>>,
    attr: HashMap<usize, Entry<f32>>,
    resident_bytes: usize,
    tick: u64,
    bytes_read: u64,
    evictions: u64,
}

impl BlockCache {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict least-recently-used blocks until `need` more bytes fit in
    /// `budget`. Linear scan: the block count is budget/block-size, a few
    /// hundred at realistic settings.
    fn make_room(&mut self, need: usize, budget: usize) {
        while self.resident_bytes + need > budget && !(self.edge.is_empty() && self.attr.is_empty())
        {
            let oldest_edge = self.edge.iter().min_by_key(|(_, e)| e.tick);
            let oldest_attr = self.attr.iter().min_by_key(|(_, e)| e.tick);
            let evict_edge = match (oldest_edge, oldest_attr) {
                (Some((_, e)), Some((_, a))) => e.tick <= a.tick,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop guard checked non-empty"),
            };
            let freed = if evict_edge {
                let key = *self.edge.iter().min_by_key(|(_, e)| e.tick).unwrap().0;
                let e = self.edge.remove(&key).unwrap();
                e.data.len() * 4
            } else {
                let key = *self.attr.iter().min_by_key(|(_, e)| e.tick).unwrap().0;
                let e = self.attr.remove(&key).unwrap();
                e.data.len() * 4
            };
            self.resident_bytes -= freed;
            self.evictions += 1;
            G_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            G_RESIDENT_BLOCKS.fetch_sub(1, Ordering::Relaxed);
            G_RESIDENT_BYTES.fetch_sub(freed as u64, Ordering::Relaxed);
        }
    }

    fn admit(&mut self, bytes: usize) {
        self.resident_bytes += bytes;
        G_RESIDENT_BLOCKS.fetch_add(1, Ordering::Relaxed);
        G_RESIDENT_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_read(&mut self, bytes: usize) {
        self.bytes_read += bytes as u64;
        G_BYTES_READ.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// A demand-paged on-disk graph store (see the module docs for the format
/// and the paging strategy). Single-threaded by design — each scoring
/// replica or trainer opens its own handle.
pub struct OocStore {
    file: RefCell<File>,
    n: usize,
    m_directed: usize,
    d: usize,
    attr_block_nodes: usize,
    edge_block_entries: usize,
    off_indices: u64,
    off_attrs: u64,
    off_labels: Option<u64>,
    /// Row pointers, fully resident (counted against the budget at `open`).
    indptr: Vec<u64>,
    /// Budget available to the block cache (total minus `indptr`).
    cache_budget: usize,
    budget: usize,
    cache: RefCell<BlockCache>,
    scratch: RefCell<Vec<u32>>,
}

impl Drop for OocStore {
    fn drop(&mut self) {
        let cache = self.cache.get_mut();
        let blocks = (cache.edge.len() + cache.attr.len()) as u64;
        G_RESIDENT_BLOCKS.fetch_sub(blocks, Ordering::Relaxed);
        G_RESIDENT_BYTES.fetch_sub(cache.resident_bytes as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for OocStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OocStore")
            .field("n", &self.n)
            .field("m_directed", &self.m_directed)
            .field("d", &self.d)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

fn read_exact_at(file: &RefCell<File>, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.borrow().read_exact_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        let mut f = file.borrow_mut();
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

fn bytes_to_u32s(buf: &[u8]) -> Vec<u32> {
    buf.chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn bytes_to_f32s(buf: &[u8]) -> Vec<f32> {
    buf.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

impl OocStore {
    /// Open a `VGODSTR1` store with a total memory budget in bytes.
    ///
    /// The budget covers the resident row-pointer array plus the block
    /// cache; it must fit `indptr` plus at least one edge block and one
    /// attribute block, or `open` refuses with a message stating the
    /// minimum.
    pub fn open(path: &Path, budget: usize) -> Result<OocStore, String> {
        let mut file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        let mut head = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut head)
            .map_err(|e| format!("read header of {}: {e}", path.display()))?;
        if &head[..8] != STORE_MAGIC {
            return Err(format!("{} is not a VGODSTR1 store", path.display()));
        }
        let word = |i: usize| -> u64 {
            let at = 8 + i * 8;
            u64::from_le_bytes(head[at..at + 8].try_into().unwrap())
        };
        let n = word(0) as usize;
        let m_directed = word(1) as usize;
        let d = word(2) as usize;
        let attr_block_nodes = word(3) as usize;
        let edge_block_entries = word(4) as usize;
        let flags = word(5);
        if attr_block_nodes == 0 || edge_block_entries == 0 {
            return Err("store header has zero block size".to_string());
        }

        let indptr_bytes = (n + 1) * 8;
        let off_indices = HEADER_BYTES + indptr_bytes as u64;
        let off_attrs = off_indices + (m_directed * 4) as u64;
        let off_labels = if flags & FLAG_LABELS != 0 {
            Some(off_attrs + (n * d * 4) as u64)
        } else {
            None
        };
        let expect_len = off_labels.unwrap_or(off_attrs + (n * d * 4) as u64)
            + if flags & FLAG_LABELS != 0 {
                (n * 4) as u64
            } else {
                0
            };
        let actual_len = file
            .metadata()
            .map_err(|e| format!("stat {}: {e}", path.display()))?
            .len();
        if actual_len != expect_len {
            return Err(format!(
                "{}: truncated or corrupt store ({actual_len} bytes, expected {expect_len})",
                path.display()
            ));
        }

        let edge_block_bytes = edge_block_entries.min(m_directed.max(1)) * 4;
        let attr_block_bytes = attr_block_nodes.min(n.max(1)) * d.max(1) * 4;
        let min_budget = indptr_bytes + edge_block_bytes + attr_block_bytes;
        if budget < min_budget {
            return Err(format!(
                "memory budget {budget} B is below the minimum {min_budget} B \
                 (indptr {indptr_bytes} B + one edge block {edge_block_bytes} B \
                 + one attribute block {attr_block_bytes} B)"
            ));
        }

        let mut indptr_buf = vec![0u8; indptr_bytes];
        file.seek(SeekFrom::Start(HEADER_BYTES))
            .and_then(|_| file.read_exact(&mut indptr_buf))
            .map_err(|e| format!("read indptr of {}: {e}", path.display()))?;
        let indptr: Vec<u64> = indptr_buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if indptr.first() != Some(&0) || indptr.last() != Some(&(m_directed as u64)) {
            return Err(format!("{}: inconsistent row pointers", path.display()));
        }
        G_BYTES_READ.fetch_add(
            (HEADER_BYTES as usize + indptr_bytes) as u64,
            Ordering::Relaxed,
        );

        Ok(OocStore {
            file: RefCell::new(file),
            n,
            m_directed,
            d,
            attr_block_nodes,
            edge_block_entries,
            off_indices,
            off_attrs,
            off_labels,
            indptr,
            cache_budget: budget - indptr_bytes,
            budget,
            cache: RefCell::new(BlockCache::default()),
            scratch: RefCell::new(Vec::new()),
        })
    }

    /// Serialise an in-memory graph to `path` in store format.
    pub fn create_from_graph(
        g: &AttributedGraph,
        path: &Path,
        attr_block_nodes: usize,
        edge_block_entries: usize,
    ) -> std::io::Result<()> {
        write_store(
            path,
            g.num_nodes(),
            g.num_attrs(),
            attr_block_nodes,
            edge_block_entries,
            g.labels().is_some(),
            |u, out| {
                out.clear();
                out.extend_from_slice(g.neighbors(u));
            },
            |u, row| row.copy_from_slice(g.attrs().row(u as usize)),
            |u| g.labels().map_or(0, |l| l[u as usize]),
        )
    }

    /// Number of attribute rows per block.
    pub fn attr_block_nodes(&self) -> usize {
        self.attr_block_nodes
    }

    /// Number of edge entries per block.
    pub fn edge_block_entries(&self) -> usize {
        self.edge_block_entries
    }

    /// The configured total memory budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn row_range(&self, u: u32) -> (usize, usize) {
        (
            self.indptr[u as usize] as usize,
            self.indptr[u as usize + 1] as usize,
        )
    }

    fn edge_block_len(&self, b: usize) -> usize {
        (self.m_directed - b * self.edge_block_entries).min(self.edge_block_entries)
    }

    fn attr_block_rows(&self, b: usize) -> usize {
        (self.n - b * self.attr_block_nodes).min(self.attr_block_nodes)
    }

    fn edge_block(&self, b: usize) -> Rc<Vec<u32>> {
        let mut cache = self.cache.borrow_mut();
        let tick = cache.next_tick();
        if let Some(e) = cache.edge.get_mut(&b) {
            e.tick = tick;
            return Rc::clone(&e.data);
        }
        let len = self.edge_block_len(b);
        let bytes = len * 4;
        cache.make_room(bytes, self.cache_budget);
        let mut buf = vec![0u8; bytes];
        let off = self.off_indices + (b * self.edge_block_entries * 4) as u64;
        read_exact_at(&self.file, &mut buf, off).expect("store read failed (edge block)");
        cache.record_read(bytes);
        let data = Rc::new(bytes_to_u32s(&buf));
        cache.admit(bytes);
        cache.edge.insert(
            b,
            Entry {
                data: Rc::clone(&data),
                tick,
            },
        );
        data
    }

    fn attr_block(&self, b: usize) -> Rc<Vec<f32>> {
        let mut cache = self.cache.borrow_mut();
        let tick = cache.next_tick();
        if let Some(e) = cache.attr.get_mut(&b) {
            e.tick = tick;
            return Rc::clone(&e.data);
        }
        let rows = self.attr_block_rows(b);
        let bytes = rows * self.d * 4;
        cache.make_room(bytes, self.cache_budget);
        let mut buf = vec![0u8; bytes];
        let off = self.off_attrs + (b * self.attr_block_nodes * self.d * 4) as u64;
        read_exact_at(&self.file, &mut buf, off).expect("store read failed (attr block)");
        cache.record_read(bytes);
        let data = Rc::new(bytes_to_f32s(&buf));
        cache.admit(bytes);
        cache.attr.insert(
            b,
            Entry {
                data: Rc::clone(&data),
                tick,
            },
        );
        data
    }
}

impl GraphStore for OocStore {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m_directed / 2
    }

    fn num_attrs(&self) -> usize {
        self.d
    }

    fn degree(&self, u: u32) -> usize {
        let (start, end) = self.row_range(u);
        end - start
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        out.clear();
        let (start, end) = self.row_range(u);
        if start == end {
            return;
        }
        let eb = self.edge_block_entries;
        for b in start / eb..=(end - 1) / eb {
            let block = self.edge_block(b);
            let lo = start.max(b * eb) - b * eb;
            let hi = end.min((b + 1) * eb) - b * eb;
            out.extend_from_slice(&block[lo..hi]);
        }
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        let mut scratch = self.scratch.borrow_mut();
        let mut nbrs = std::mem::take(&mut *scratch);
        self.neighbors_into(u, &mut nbrs);
        let hit = nbrs.binary_search(&v).is_ok();
        *scratch = nbrs;
        hit
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.d, "attribute row buffer has wrong width");
        let b = u as usize / self.attr_block_nodes;
        let at = (u as usize % self.attr_block_nodes) * self.d;
        let block = self.attr_block(b);
        out.copy_from_slice(&block[at..at + self.d]);
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        // Sequential streaming pass, bypassing the block cache so a full
        // sweep does not evict the sampler's working set. One positioned
        // read per group of rows, bounded by the edge block size.
        let mut u = 0usize;
        let mut buf: Vec<u8> = Vec::new();
        while u < self.n {
            let start = self.indptr[u] as usize;
            let mut stop_node = u + 1;
            while stop_node < self.n
                && (self.indptr[stop_node + 1] as usize - start) <= self.edge_block_entries
            {
                stop_node += 1;
            }
            let end = self.indptr[stop_node] as usize;
            let bytes = (end - start) * 4;
            buf.resize(bytes, 0);
            if bytes > 0 {
                read_exact_at(&self.file, &mut buf, self.off_indices + (start * 4) as u64)
                    .expect("store read failed (adjacency sweep)");
                self.cache.borrow_mut().record_read(bytes);
            }
            let entries = bytes_to_u32s(&buf);
            for node in u..stop_node {
                let lo = self.indptr[node] as usize - start;
                let hi = self.indptr[node + 1] as usize - start;
                cb(node as u32, &entries[lo..hi]);
            }
            u = stop_node;
        }
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        let mut buf: Vec<u8> = Vec::new();
        let blocks = self.n.div_ceil(self.attr_block_nodes);
        for b in 0..blocks {
            let rows = self.attr_block_rows(b);
            let bytes = rows * self.d * 4;
            buf.resize(bytes, 0);
            let off = self.off_attrs + (b * self.attr_block_nodes * self.d * 4) as u64;
            read_exact_at(&self.file, &mut buf, off).expect("store read failed (attr sweep)");
            self.cache.borrow_mut().record_read(bytes);
            let floats = bytes_to_f32s(&buf);
            for r in 0..rows {
                let u = (b * self.attr_block_nodes + r) as u32;
                cb(u, &floats[r * self.d..(r + 1) * self.d]);
            }
        }
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        let off = self.off_labels?;
        let mut buf = vec![0u8; self.n * 4];
        read_exact_at(&self.file, &mut buf, off).expect("store read failed (labels)");
        self.cache.borrow_mut().record_read(buf.len());
        Some(bytes_to_u32s(&buf))
    }

    fn stats(&self) -> StoreStats {
        let cache = self.cache.borrow();
        StoreStats {
            resident_blocks: (cache.edge.len() + cache.attr.len()) as u64,
            resident_bytes: cache.resident_bytes as u64 + (self.indptr.len() * 8) as u64,
            budget_bytes: self.budget as u64,
            bytes_read: cache.bytes_read,
            evictions: cache.evictions,
        }
    }
}

// ---------------------------------------------------------------------
// Writing stores
// ---------------------------------------------------------------------

/// Write a store from per-node callbacks, in two streaming passes (degrees
/// then rows) — the whole graph never has to exist in memory. `neighbors_of`
/// must fill a *sorted* neighbour list and be deterministic: it is called
/// twice per node.
#[allow(clippy::too_many_arguments)]
pub fn write_store(
    path: &Path,
    n: usize,
    d: usize,
    attr_block_nodes: usize,
    edge_block_entries: usize,
    has_labels: bool,
    mut neighbors_of: impl FnMut(u32, &mut Vec<u32>),
    mut attrs_of: impl FnMut(u32, &mut [f32]),
    mut label_of: impl FnMut(u32) -> u32,
) -> std::io::Result<()> {
    assert!(
        attr_block_nodes > 0 && edge_block_entries > 0,
        "zero block size"
    );
    let mut out = BufWriter::new(File::create(path)?);
    let mut nbrs: Vec<u32> = Vec::new();

    // Pass 1: degrees → row pointers.
    let mut m_directed = 0u64;
    let mut indptr_bytes: Vec<u8> = Vec::with_capacity((n + 1) * 8);
    indptr_bytes.extend_from_slice(&0u64.to_le_bytes());
    for u in 0..n as u32 {
        neighbors_of(u, &mut nbrs);
        debug_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
        m_directed += nbrs.len() as u64;
        indptr_bytes.extend_from_slice(&m_directed.to_le_bytes());
    }

    out.write_all(STORE_MAGIC)?;
    for word in [
        n as u64,
        m_directed,
        d as u64,
        attr_block_nodes as u64,
        edge_block_entries as u64,
        u64::from(has_labels) * FLAG_LABELS,
        0u64,
    ] {
        out.write_all(&word.to_le_bytes())?;
    }
    out.write_all(&indptr_bytes)?;
    drop(indptr_bytes);

    // Pass 2: neighbour lists.
    for u in 0..n as u32 {
        neighbors_of(u, &mut nbrs);
        for &v in &nbrs {
            out.write_all(&v.to_le_bytes())?;
        }
    }

    // Pass 3: attribute rows.
    let mut row = vec![0f32; d];
    for u in 0..n as u32 {
        attrs_of(u, &mut row);
        for &x in &row {
            out.write_all(&x.to_le_bytes())?;
        }
    }

    // Pass 4: labels.
    if has_labels {
        for u in 0..n as u32 {
            out.write_all(&label_of(u).to_le_bytes())?;
        }
    }
    out.flush()
}

// ---------------------------------------------------------------------
// Streaming synthetic stores
// ---------------------------------------------------------------------

/// Configuration for [`synth_store`]: a deterministic synthetic graph that
/// can be written at any size without ever materialising it.
///
/// The base topology is a ring lattice (every node links to its
/// `avg_degree/2` nearest ids on each side — symmetric by construction,
/// uniform degree). Structural outliers are planted cliques on disjoint
/// contiguous id ranges; contextual outliers are nodes whose attribute
/// noise is scaled by `contextual_scale` away from their community mean.
#[derive(Clone, Debug)]
pub struct SynthStoreConfig {
    /// Node count `n`.
    pub nodes: usize,
    /// Target average degree (ring lattice degree, before cliques).
    pub avg_degree: usize,
    /// Attribute dimension `d`.
    pub attrs: usize,
    /// Number of communities (contiguous id blocks, attribute means differ).
    pub communities: usize,
    /// Number of planted cliques (structural outliers).
    pub clique_count: usize,
    /// Nodes per planted clique.
    pub clique_size: usize,
    /// Number of contextual outliers.
    pub contextual_count: usize,
    /// Noise multiplier for contextual outliers (≫ 1 makes them stand out).
    pub contextual_scale: f32,
    /// Master seed; every derived stream is mixed from it.
    pub seed: u64,
}

impl SynthStoreConfig {
    /// A configuration scaled to `n` nodes with paper-like proportions:
    /// average degree 20 (so `|E| = 10·n`), 32 attributes, and ~0.5% of
    /// nodes outliers split between the two types.
    pub fn scaled(n: usize, seed: u64) -> Self {
        let clique_size = 10usize;
        let clique_count = (n / 400).clamp(1, 1000);
        Self {
            nodes: n,
            avg_degree: 20,
            attrs: 32,
            communities: 8.min(n.max(1)),
            clique_count,
            clique_size,
            contextual_count: (n / 40).clamp(1, 25_000),
            contextual_scale: 6.0,
            seed,
        }
    }
}

/// Ground truth for a synthetic store: planted outlier node ids.
#[derive(Clone, Debug, Default)]
pub struct SynthTruth {
    /// Clique members (structural outliers).
    pub structural: Vec<u32>,
    /// Attribute outliers (contextual).
    pub contextual: Vec<u32>,
}

/// Write a synthetic store to `path` (see [`SynthStoreConfig`]) and return
/// the planted ground truth. Memory use is `O(cliques + outliers + d)`,
/// independent of `n`.
pub fn synth_store(
    path: &Path,
    cfg: &SynthStoreConfig,
    attr_block_nodes: usize,
    edge_block_entries: usize,
) -> std::io::Result<SynthTruth> {
    let n = cfg.nodes;
    assert!(n >= 4, "synthetic store needs at least 4 nodes");
    let k = (cfg.avg_degree / 2).max(1).min((n - 1) / 2);
    let communities = cfg.communities.max(1);

    // Disjoint clique ranges: one per stride of ids, offset pseudo-randomly.
    let mut clique_count = cfg.clique_count;
    let clique_size = cfg.clique_size.max(2);
    let stride = n.checked_div(clique_count).unwrap_or(n);
    if clique_count > 0 && stride < 2 * clique_size {
        clique_count = (n / (2 * clique_size)).max(1).min(clique_count);
    }
    let stride = n.checked_div(clique_count).unwrap_or(n);
    let clique_base: Vec<usize> = (0..clique_count)
        .map(|c| {
            let slack = stride.saturating_sub(clique_size).max(1);
            c * stride + (splitmix64(cfg.seed ^ 0xC110_u64 ^ c as u64) as usize) % slack
        })
        .collect();
    let clique_of = |u: usize| -> Option<(usize, usize)> {
        if clique_count == 0 || stride == 0 {
            return None;
        }
        let c = (u / stride).min(clique_count - 1);
        let base = clique_base[c];
        (u >= base && u < base + clique_size).then_some((base, clique_size))
    };

    // Contextual outliers: pseudo-random ids outside the cliques.
    let mut contextual: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut attempt = 0u64;
    while contextual.len() < cfg.contextual_count.min(n / 2)
        && attempt < 100 * (cfg.contextual_count as u64 + 1)
    {
        let u = (splitmix64(cfg.seed ^ 0xA77Du64 ^ attempt) as usize) % n;
        attempt += 1;
        if clique_of(u).is_none() {
            contextual.insert(u as u32);
        }
    }

    // Community attribute means, separated enough to be learnable.
    let mut mu = vec![0f32; communities * cfg.attrs.max(1)];
    for c in 0..communities {
        let mut rng = seeded_rng(splitmix64(cfg.seed ^ 0x3EA2u64 ^ c as u64));
        for j in 0..cfg.attrs {
            mu[c * cfg.attrs + j] = 3.0 * standard_normal(&mut rng);
        }
    }
    let community_of = move |u: usize| -> usize { u * communities / n };

    let neighbors_of = {
        move |u: u32, out: &mut Vec<u32>| {
            let u = u as usize;
            out.clear();
            for s in 1..=k {
                out.push(((u + s) % n) as u32);
                out.push(((u + n - s) % n) as u32);
            }
            if let Some((base, size)) = clique_of(u) {
                for v in base..base + size {
                    if v != u {
                        out.push(v as u32);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
        }
    };

    let contextual_set = contextual.clone();
    let seed = cfg.seed;
    let scale = cfg.contextual_scale;
    let d = cfg.attrs;
    let attrs_of = move |u: u32, row: &mut [f32]| {
        let c = community_of(u as usize);
        let noise = if contextual_set.contains(&u) {
            scale
        } else {
            1.0
        };
        let mut rng = seeded_rng(splitmix64(seed ^ 0xF00Du64 ^ u as u64));
        for (j, x) in row.iter_mut().enumerate() {
            *x = mu[c * d + j] + noise * standard_normal(&mut rng);
        }
    };

    write_store(
        path,
        n,
        d,
        attr_block_nodes,
        edge_block_entries,
        true,
        neighbors_of,
        attrs_of,
        |u| community_of(u as usize) as u32,
    )?;

    let mut structural: Vec<u32> = clique_base
        .iter()
        .flat_map(|&b| b as u32..(b + clique_size) as u32)
        .collect();
    structural.sort_unstable();
    let mut contextual: Vec<u32> = contextual.into_iter().collect();
    contextual.sort_unstable();
    Ok(SynthTruth {
        structural,
        contextual,
    })
}

/// Estimated resident bytes of the in-memory path for an `n`-node,
/// `m`-undirected-edge, `d`-attribute graph: the dense attribute matrix,
/// both directions of every neighbour list (plus `Vec` headers), and the
/// binary-adjacency CSR that `GraphContext` materialises up front. Used by
/// the scale bench to prove a budget is genuinely out of reach in-core.
pub fn in_memory_bytes_estimate(n: usize, m: usize, d: usize) -> u64 {
    let attrs = (n * d * 4) as u64;
    let adj = (2 * m * 4 + n * 24) as u64;
    let csr = (2 * m * 8 + (n + 1) * 8) as u64;
    attrs + adj + csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vgod-store-test-{}-{name}", std::process::id()));
        p
    }

    fn small_graph(seed: u64) -> AttributedGraph {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(120, 3, 5.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 7, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        g
    }

    #[test]
    fn roundtrip_preserves_graph_exactly() {
        let g = small_graph(3);
        let path = temp_path("roundtrip.gstore");
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        assert_eq!(GraphStore::num_nodes(&store), g.num_nodes());
        assert_eq!(GraphStore::num_edges(&store), g.num_edges());
        assert_eq!(GraphStore::num_attrs(&store), g.num_attrs());
        let back = store.materialize();
        assert!(back.check_invariants());
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(back.neighbors(u), g.neighbors(u), "row {u}");
            assert_eq!(back.attrs().row(u as usize), g.attrs().row(u as usize));
        }
        assert_eq!(back.labels(), g.labels());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn point_reads_match_in_memory_backend() {
        let g = small_graph(4);
        let path = temp_path("point.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        // Budget sized to hold only a handful of blocks, forcing paging.
        let min = (g.num_nodes() + 1) * 8 + 32 * 4 + 8 * g.num_attrs() * 4;
        let store = OocStore::open(&path, min + 256).unwrap();
        let mut nbrs = Vec::new();
        let mut row = vec![0f32; g.num_attrs()];
        for u in (0..g.num_nodes() as u32).rev() {
            store.neighbors_into(u, &mut nbrs);
            assert_eq!(nbrs.as_slice(), g.neighbors(u));
            store.attr_row_into(u, &mut row);
            assert_eq!(row.as_slice(), g.attrs().row(u as usize));
            assert_eq!(GraphStore::degree(&store, u), g.degree(u));
        }
        for &(u, v) in &[(0u32, 1u32), (5, 80), (100, 3)] {
            assert_eq!(GraphStore::has_edge(&store, u, v), g.has_edge(u, v));
        }
        let stats = store.stats();
        assert!(stats.evictions > 0, "tight budget must evict: {stats:?}");
        assert!(
            stats.resident_bytes <= store.budget() as u64,
            "resident {} over budget {}",
            stats.resident_bytes,
            store.budget()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_refuses_budget_below_minimum() {
        let g = small_graph(5);
        let path = temp_path("minbudget.gstore");
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let err = OocStore::open(&path, 64).unwrap_err();
        assert!(err.contains("below the minimum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_truncated_and_foreign_files() {
        let path = temp_path("corrupt.gstore");
        std::fs::write(&path, [b'x'; 128]).unwrap();
        assert!(OocStore::open(&path, 1 << 20)
            .unwrap_err()
            .contains("not a VGODSTR1"));
        let g = small_graph(6);
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(OocStore::open(&path, 1 << 20)
            .unwrap_err()
            .contains("truncated"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gather_attrs_matches_full_graph_gather() {
        let g = small_graph(7);
        let nodes = [5u32, 0, 17, 99, 3];
        let via_store = GraphStore::gather_attrs(&g, &nodes);
        let direct = g.attrs().gather_rows(&nodes);
        assert_eq!(via_store.as_slice(), direct.as_slice());
        let path = temp_path("gather.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        assert_eq!(store.gather_attrs(&nodes).as_slice(), direct.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synth_store_is_valid_and_deterministic() {
        let cfg = SynthStoreConfig {
            nodes: 600,
            avg_degree: 8,
            attrs: 5,
            communities: 3,
            clique_count: 2,
            clique_size: 6,
            contextual_count: 10,
            contextual_scale: 5.0,
            seed: 9,
        };
        let p1 = temp_path("synth1.gstore");
        let p2 = temp_path("synth2.gstore");
        let t1 = synth_store(&p1, &cfg, 64, 256).unwrap();
        let t2 = synth_store(&p2, &cfg, 64, 256).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        assert_eq!(t1.structural, t2.structural);
        assert_eq!(t1.contextual, t2.contextual);
        assert_eq!(t1.structural.len(), 12);
        assert_eq!(t1.contextual.len(), 10);

        let store = OocStore::open(&p1, 1 << 20).unwrap();
        let g = store.materialize();
        assert!(g.check_invariants());
        assert_eq!(g.num_nodes(), 600);
        // Clique members must be mutually connected.
        let (a, b) = (t1.structural[0], t1.structural[1]);
        assert!(g.has_edge(a, b));
        // Ring lattice gives every non-clique node degree 2k.
        let plain = (0..600u32).find(|u| !t1.structural.contains(u)).unwrap();
        assert_eq!(g.degree(plain), 8);
        assert!(g.labels().is_some());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn parse_mem_budget_understands_suffixes() {
        assert_eq!(parse_mem_budget("4096").unwrap(), 4096);
        assert_eq!(parse_mem_budget("64K").unwrap(), 64 << 10);
        assert_eq!(parse_mem_budget("96M").unwrap(), 96 << 20);
        assert_eq!(parse_mem_budget("2g").unwrap(), 2 << 30);
        assert!(parse_mem_budget("lots").is_err());
    }

    #[test]
    fn global_stats_track_reads() {
        let g = small_graph(8);
        let path = temp_path("globalstats.gstore");
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let before = global_store_stats();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        let mut nbrs = Vec::new();
        store.neighbors_into(0, &mut nbrs);
        let after = global_store_stats();
        assert!(after.bytes_read > before.bytes_read);
        drop(store);
        let dropped = global_store_stats();
        assert_eq!(dropped.resident_blocks, before.resident_blocks);
        std::fs::remove_file(&path).ok();
    }
}
