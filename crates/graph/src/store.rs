//! Graph storage backends: one trait over in-memory and out-of-core graphs.
//!
//! [`GraphStore`] is the read-side abstraction every detector consumes via
//! the sampled fit/score paths: neighbour lists, attribute rows, and
//! streaming visitors, with no assumption that the whole graph fits in RAM.
//! Two backends implement it:
//!
//! * [`AttributedGraph`] — the existing in-memory representation (the
//!   small-graph fast path; `as_full_graph` exposes it so callers can keep
//!   the bit-identical full-graph code path).
//! * [`OocStore`] — a chunked on-disk CSR + attribute store with an explicit
//!   memory budget. Fixed-size blocks are demand-paged with `pread` into a
//!   budgeted, sharded (mutex-per-shard) block cache shared by every reader
//!   thread; only the row-pointer array stays resident. Replacement is
//!   scan-resistant segmented LRU by default ([`CachePolicy`]), so one
//!   cold sweep cannot evict the sampler's hot working set.
//!
//! `OocStore` deliberately pages with positioned reads instead of `mmap`:
//! the scale-smoke CI job proves the budget under `ulimit -v`, and a mapping
//! of a multi-gigabyte store would count against the address-space limit
//! even when mostly non-resident. Explicit paging keeps both RSS *and*
//! virtual size bounded by the budget.
//!
//! ## On-disk layout (`VGODSTR1`)
//!
//! ```text
//! magic   8 B   "VGODSTR1"
//! header  7 × u64 LE: n, m_directed, d, attr_block_nodes,
//!                     edge_block_entries, flags (bit 0 = labels), reserved
//! indptr  (n+1) × u64 LE   — resident, counted against the budget
//! indices m_directed × u32 LE — sorted neighbour lists, concatenated
//! attrs   n × d × f32 LE      — row-major
//! labels  n × u32 LE          — only when flags bit 0 is set
//! ```
//!
//! Attribute blocks are row-aligned (`attr_block_nodes` rows per block), so
//! an attribute row never spans blocks; edge rows may, and are copied
//! per-block.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::attributes::standard_normal;
use crate::{seeded_rng, AttributedGraph};
use vgod_tensor::Matrix;

/// Magic bytes opening every on-disk store file.
pub const STORE_MAGIC: &[u8; 8] = b"VGODSTR1";

/// Default attribute rows per block (`attr_block_nodes`).
pub const DEFAULT_ATTR_BLOCK_NODES: usize = 2048;

/// Default edge entries per block (`edge_block_entries`).
pub const DEFAULT_EDGE_BLOCK_ENTRIES: usize = 65_536;

const HEADER_BYTES: u64 = 8 + 7 * 8;
const FLAG_LABELS: u64 = 1;

// ---------------------------------------------------------------------
// Store statistics
// ---------------------------------------------------------------------

/// Memory/IO counters for a store (or, via [`global_store_stats`], for every
/// store in the process — the serving `/metrics` view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Cached blocks currently resident.
    pub resident_blocks: u64,
    /// Bytes of cached block data currently resident (the per-store view
    /// adds the always-resident `indptr`; the global view counts cache
    /// blocks only).
    pub resident_bytes: u64,
    /// The configured budget in bytes (0 for in-memory stores).
    pub budget_bytes: u64,
    /// Total bytes read from disk since the store was opened.
    pub bytes_read: u64,
    /// Blocks evicted to stay under the budget.
    pub evictions: u64,
    /// Block fetches served from the cache.
    pub hits: u64,
    /// Block fetches that had to read from disk.
    pub misses: u64,
}

impl StoreStats {
    /// Cache hit rate in `[0, 1]` (0 when no block was ever fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The single source of truth for one store's counters. `OocStore::stats`
/// reads these directly, and [`global_store_stats`] sums the same atomics
/// across a process-wide registry — the two views can never disagree.
#[derive(Debug, Default)]
struct StoreCounters {
    resident_blocks: AtomicU64,
    resident_bytes: AtomicU64,
    budget_bytes: AtomicU64,
    bytes_read: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StoreCounters {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            resident_blocks: self.resident_blocks.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            budget_bytes: self.budget_bytes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Live stores (weak, so `Drop` needs no unregistration) plus monotonic
/// totals folded in from already-dropped stores.
static REGISTRY: Mutex<Vec<Weak<StoreCounters>>> = Mutex::new(Vec::new());
static RETIRED_BYTES_READ: AtomicU64 = AtomicU64::new(0);
static RETIRED_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static RETIRED_HITS: AtomicU64 = AtomicU64::new(0);
static RETIRED_MISSES: AtomicU64 = AtomicU64::new(0);

fn register_counters(counters: &Arc<StoreCounters>) {
    let mut reg = REGISTRY.lock().expect("store registry poisoned");
    reg.retain(|w| w.strong_count() > 0);
    reg.push(Arc::downgrade(counters));
}

fn retire_counters(counters: &StoreCounters) {
    RETIRED_BYTES_READ.fetch_add(
        counters.bytes_read.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
    RETIRED_EVICTIONS.fetch_add(
        counters.evictions.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
    RETIRED_HITS.fetch_add(counters.hits.load(Ordering::Relaxed), Ordering::Relaxed);
    RETIRED_MISSES.fetch_add(counters.misses.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Process-wide out-of-core store counters, aggregated across every
/// [`OocStore`] in the process (serving exposes these on `/metrics`).
/// Resident figures cover live stores; read/eviction/hit/miss totals also
/// include stores that have since been dropped. Reads the exact same
/// per-store atomics as [`GraphStore::stats`].
pub fn global_store_stats() -> StoreStats {
    let mut total = StoreStats {
        bytes_read: RETIRED_BYTES_READ.load(Ordering::Relaxed),
        evictions: RETIRED_EVICTIONS.load(Ordering::Relaxed),
        hits: RETIRED_HITS.load(Ordering::Relaxed),
        misses: RETIRED_MISSES.load(Ordering::Relaxed),
        ..StoreStats::default()
    };
    let mut reg = REGISTRY.lock().expect("store registry poisoned");
    reg.retain(|w| w.strong_count() > 0);
    for weak in reg.iter() {
        let Some(c) = weak.upgrade() else { continue };
        let s = c.snapshot();
        total.resident_blocks += s.resident_blocks;
        total.resident_bytes += s.resident_bytes;
        total.budget_bytes += s.budget_bytes;
        total.bytes_read += s.bytes_read;
        total.evictions += s.evictions;
        total.hits += s.hits;
        total.misses += s.misses;
    }
    total
}

/// Parse a human memory size: plain bytes, or a `K`/`M`/`G` suffix
/// (powers of 1024), e.g. `"96M"`, `"2G"`, `"4096"`.
pub fn parse_mem_budget(s: &str) -> Result<usize, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('K' | 'k') => (&s[..s.len() - 1], 1usize << 10),
        Some('M' | 'm') => (&s[..s.len() - 1], 1usize << 20),
        Some('G' | 'g') => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1usize),
    };
    let v: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad memory size {s:?} (expected e.g. 96M, 2G, or bytes)"))?;
    v.checked_mul(mult)
        .ok_or_else(|| format!("memory size {s:?} overflows"))
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix independent stream identifiers into one RNG seed, so per-batch RNG
/// streams are decorrelated and independent of iteration order.
pub fn mix_seed(seed: u64, stream: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ index)
}

// ---------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------

/// Read-only access to an attributed graph, independent of whether it lives
/// in memory or on disk. Object-safe: the sampled fit/score paths take
/// `&dyn GraphStore`.
pub trait GraphStore {
    /// Number of nodes `|V|`.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `|E|`.
    fn num_edges(&self) -> usize;

    /// Attribute dimension `d`.
    fn num_attrs(&self) -> usize;

    /// Degree of `u` (no IO for either backend: derived from row pointers).
    fn degree(&self, u: u32) -> usize;

    /// Replace `out` with the sorted neighbour list of `u`.
    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>);

    /// Whether the undirected edge `{u, v}` exists.
    fn has_edge(&self, u: u32, v: u32) -> bool;

    /// Copy node `u`'s attribute row into `out` (`out.len() == d`).
    fn attr_row_into(&self, u: u32, out: &mut [f32]);

    /// Stream every adjacency row in node order: `cb(u, sorted_neighbors)`.
    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32]));

    /// Stream every attribute row in node order: `cb(u, row)`.
    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32]));

    /// Community labels as an owned vector, when the store carries them.
    fn labels_vec(&self) -> Option<Vec<u32>> {
        None
    }

    /// The in-memory graph behind this store, when there is one (the
    /// zero-copy fast path below the sampling threshold).
    fn as_full_graph(&self) -> Option<&AttributedGraph> {
        None
    }

    /// Memory/IO counters (all zero for in-memory stores).
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// A `Sync` view of this store, when the backend supports shared
    /// multi-threaded access. [`OocStore`] returns `Some`; the in-memory
    /// [`AttributedGraph`] deliberately returns `None` — its per-detector
    /// context cache is single-threaded by design. Parallel batch
    /// dispatch only engages when this returns `Some`.
    fn as_shared(&self) -> Option<&(dyn GraphStore + Sync)> {
        None
    }

    /// Hint that rows `lo..hi` are about to be read: warm their edge and
    /// attribute blocks into the cache. Default: no-op (in-memory stores
    /// have nothing to warm).
    fn prefetch_nodes(&self, _lo: u32, _hi: u32) {}

    /// Gather attribute rows for `nodes` (in order) into a dense matrix.
    fn gather_attrs(&self, nodes: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(nodes.len(), self.num_attrs());
        for (i, &u) in nodes.iter().enumerate() {
            self.attr_row_into(u, out.row_mut(i));
        }
        out
    }

    /// Materialise the whole store as an [`AttributedGraph`]. Only sensible
    /// below the sampling threshold; allocates `O(n·d + m)`.
    fn materialize(&self) -> AttributedGraph {
        let n = self.num_nodes();
        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
        self.visit_adjacency(&mut |_, nbrs| adj.push(nbrs.to_vec()));
        let mut x = Matrix::zeros(n, self.num_attrs());
        self.visit_attrs(&mut |u, row| x.row_mut(u as usize).copy_from_slice(row));
        AttributedGraph::from_sorted_adj(adj, x, self.labels_vec())
    }
}

impl GraphStore for AttributedGraph {
    fn num_nodes(&self) -> usize {
        AttributedGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        AttributedGraph::num_edges(self)
    }

    fn num_attrs(&self) -> usize {
        AttributedGraph::num_attrs(self)
    }

    fn degree(&self, u: u32) -> usize {
        AttributedGraph::degree(self, u)
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.neighbors(u));
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        AttributedGraph::has_edge(self, u, v)
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        out.copy_from_slice(self.attrs().row(u as usize));
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        for u in 0..self.num_nodes() as u32 {
            cb(u, self.neighbors(u));
        }
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        for u in 0..self.num_nodes() {
            cb(u as u32, self.attrs().row(u));
        }
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        self.labels().map(<[u32]>::to_vec)
    }

    fn as_full_graph(&self) -> Option<&AttributedGraph> {
        Some(self)
    }

    fn gather_attrs(&self, nodes: &[u32]) -> Matrix {
        // Same values as the default, but through the tuned (arena-backed)
        // gather kernel the full-graph paths already use.
        self.attrs().gather_rows(nodes)
    }
}

// ---------------------------------------------------------------------
// The out-of-core backend
// ---------------------------------------------------------------------

/// Block replacement policy for the out-of-core cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Plain least-recently-used replacement.
    Lru,
    /// Scan-resistant segmented LRU (the default). Blocks are admitted on
    /// probation; a *non-correlated* cache hit (a revisit, not the next
    /// row of the same block during streaming iteration) promotes a block
    /// to the protected segment (capped at ~80% of the cache budget per
    /// shard, demoting its own LRU back to probation when full). Eviction
    /// takes the probationary LRU first, so one cold sweep of single-use
    /// blocks cannot flush the hot sampled working set.
    #[default]
    Segmented,
}

impl CachePolicy {
    /// Parse a CLI name: `lru` or `segmented`.
    pub fn parse(s: &str) -> Result<CachePolicy, String> {
        match s {
            "lru" => Ok(CachePolicy::Lru),
            "segmented" | "slru" => Ok(CachePolicy::Segmented),
            other => Err(format!(
                "unknown cache policy {other:?} (expected lru or segmented)"
            )),
        }
    }

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Segmented => "segmented",
        }
    }
}

/// Default number of cache shards (mutex granularity for concurrent
/// readers).
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Options for [`OocStore::open_with`]: the byte budget plus cache tuning.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Total memory budget in bytes (resident `indptr` + block cache).
    pub budget: usize,
    /// Block replacement policy.
    pub policy: CachePolicy,
    /// Number of cache shards; `0` selects [`DEFAULT_CACHE_SHARDS`].
    pub shards: usize,
}

impl StoreOptions {
    /// Defaults (segmented LRU, auto shard count) at the given budget.
    pub fn new(budget: usize) -> StoreOptions {
        StoreOptions {
            budget,
            policy: CachePolicy::default(),
            shards: 0,
        }
    }
}

/// Block payload types, tying each cached element type to its map within a
/// [`Shard`] and a shard-selection salt (so edge and attribute blocks with
/// equal ids land on decorrelated shards).
trait BlockKind: Sized {
    const SALT: u64;
    fn map(shard: &mut Shard) -> &mut HashMap<usize, Slot<Self>>;
    fn last_ref(cache: &ShardedCache) -> &AtomicU64;
}

impl BlockKind for u32 {
    const SALT: u64 = 0xED6E_0000;
    fn map(shard: &mut Shard) -> &mut HashMap<usize, Slot<u32>> {
        &mut shard.edge
    }
    fn last_ref(cache: &ShardedCache) -> &AtomicU64 {
        &cache.last_edge_ref
    }
}

impl BlockKind for f32 {
    const SALT: u64 = 0xA77A_0000;
    fn map(shard: &mut Shard) -> &mut HashMap<usize, Slot<f32>> {
        &mut shard.attr
    }
    fn last_ref(cache: &ShardedCache) -> &AtomicU64 {
        &cache.last_attr_ref
    }
}

struct Slot<T> {
    data: Arc<Vec<T>>,
    tick: u64,
    protected: bool,
}

#[derive(Default)]
struct Shard {
    edge: HashMap<usize, Slot<u32>>,
    attr: HashMap<usize, Slot<f32>>,
    protected_bytes: usize,
}

/// The shared block cache: one mutex per shard so concurrent readers only
/// contend when they touch the same shard, one global byte budget tracked
/// in the store's [`StoreCounters`] (so `stats()` and eviction agree).
struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    evict_cursor: AtomicUsize,
    policy: CachePolicy,
    /// Budget available to cached blocks (total minus resident `indptr`).
    budget: usize,
    /// Per-shard cap on protected bytes (segmented policy only).
    protected_cap: usize,
    /// Most recently referenced edge/attr block ids. Consecutive accesses
    /// to the same block (streaming row iteration) collapse into one
    /// logical reference, so a sequential scan that touches each block a
    /// handful of times in a row never earns promotion — only genuine
    /// revisits do. Approximate under concurrency, which only costs an
    /// occasional spurious promotion.
    last_edge_ref: AtomicU64,
    last_attr_ref: AtomicU64,
}

impl ShardedCache {
    fn new(shards: usize, policy: CachePolicy, budget: usize) -> ShardedCache {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            tick: AtomicU64::new(0),
            evict_cursor: AtomicUsize::new(0),
            policy,
            budget,
            protected_cap: budget * 4 / 5 / shards,
            last_edge_ref: AtomicU64::new(u64::MAX),
            last_attr_ref: AtomicU64::new(u64::MAX),
        }
    }

    fn shard_of<T: BlockKind>(&self, b: usize) -> usize {
        splitmix64(b as u64 ^ T::SALT) as usize % self.shards.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Residency probe that leaves every replacement signal untouched —
    /// no recency bump, no promotion, no correlated-reference update. The
    /// prefetcher uses this so warming ahead of the compute threads never
    /// distorts the policy state their own accesses are building.
    fn contains<T: BlockKind>(&self, b: usize) -> bool {
        let shard_index = self.shard_of::<T>(b);
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("cache shard poisoned");
        T::map(&mut shard).contains_key(&b)
    }

    /// Cache lookup. On a hit the slot's recency is refreshed and (under
    /// the segmented policy) a non-correlated revisit promotes the block
    /// to the protected segment.
    fn lookup<T: BlockKind>(&self, b: usize) -> Option<Arc<Vec<T>>> {
        let correlated = T::last_ref(self).swap(b as u64, Ordering::Relaxed) == b as u64;
        let shard_index = self.shard_of::<T>(b);
        let tick = self.next_tick();
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("cache shard poisoned");
        let (data, promoted_bytes) = {
            let slot = T::map(&mut shard).get_mut(&b)?;
            slot.tick = tick;
            let mut promoted = 0usize;
            if self.policy == CachePolicy::Segmented && !slot.protected && !correlated {
                slot.protected = true;
                promoted = slot.data.len() * 4;
            }
            (Arc::clone(&slot.data), promoted)
        };
        if promoted_bytes > 0 {
            shard.protected_bytes += promoted_bytes;
            self.rebalance_protected(&mut shard);
        }
        Some(data)
    }

    /// Admit a freshly read block on probation. If another thread admitted
    /// the same block while this one was reading it from disk, the earlier
    /// copy wins (and is returned) so both threads share one allocation.
    fn insert<T: BlockKind>(
        &self,
        b: usize,
        data: Arc<Vec<T>>,
        counters: &StoreCounters,
    ) -> Arc<Vec<T>> {
        let shard_index = self.shard_of::<T>(b);
        let tick = self.next_tick();
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("cache shard poisoned");
        if let Some(slot) = T::map(&mut shard).get_mut(&b) {
            slot.tick = tick;
            return Arc::clone(&slot.data);
        }
        let bytes = data.len() * 4;
        T::map(&mut shard).insert(
            b,
            Slot {
                data: Arc::clone(&data),
                tick,
                protected: false,
            },
        );
        drop(shard);
        counters.resident_blocks.fetch_add(1, Ordering::Relaxed);
        counters
            .resident_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.evict_to_budget(counters);
        data
    }

    /// Demote the protected LRU back to probation until the shard's
    /// protected segment fits its cap.
    fn rebalance_protected(&self, shard: &mut Shard) {
        while shard.protected_bytes > self.protected_cap {
            let Some((is_edge, key)) = Self::victim(shard, true) else {
                break;
            };
            let freed = if is_edge {
                let slot = shard.edge.get_mut(&key).unwrap();
                slot.protected = false;
                slot.data.len() * 4
            } else {
                let slot = shard.attr.get_mut(&key).unwrap();
                slot.protected = false;
                slot.data.len() * 4
            };
            shard.protected_bytes -= freed;
        }
    }

    /// The LRU slot with the given protection status, if any.
    fn victim(shard: &Shard, protected: bool) -> Option<(bool, usize)> {
        let edge = shard
            .edge
            .iter()
            .filter(|(_, s)| s.protected == protected)
            .min_by_key(|(_, s)| s.tick)
            .map(|(k, s)| (*k, s.tick));
        let attr = shard
            .attr
            .iter()
            .filter(|(_, s)| s.protected == protected)
            .min_by_key(|(_, s)| s.tick)
            .map(|(k, s)| (*k, s.tick));
        match (edge, attr) {
            (Some((ke, te)), Some((ka, ta))) => {
                Some(if te <= ta { (true, ke) } else { (false, ka) })
            }
            (Some((ke, _)), None) => Some((true, ke)),
            (None, Some((ka, _))) => Some((false, ka)),
            (None, None) => None,
        }
    }

    /// Drop one block from this shard — probationary LRU first, protected
    /// LRU only when probation is empty. Returns the bytes freed.
    fn evict_one(shard: &mut Shard) -> Option<usize> {
        let (is_edge, key, was_protected) = Self::victim(shard, false)
            .map(|(e, k)| (e, k, false))
            .or_else(|| Self::victim(shard, true).map(|(e, k)| (e, k, true)))?;
        let freed = if is_edge {
            shard.edge.remove(&key).unwrap().data.len() * 4
        } else {
            shard.attr.remove(&key).unwrap().data.len() * 4
        };
        if was_protected {
            shard.protected_bytes -= freed;
        }
        Some(freed)
    }

    /// Evict round-robin across shards until the cache fits its budget.
    /// Only one shard lock is held at a time; concurrent admissions may
    /// transiently overshoot the budget, but every admitting thread runs
    /// this loop, so the cache settles back under budget.
    fn evict_to_budget(&self, counters: &StoreCounters) {
        let n = self.shards.len();
        let mut empty_streak = 0usize;
        while counters.resident_bytes.load(Ordering::Relaxed) > self.budget as u64
            && empty_streak < n
        {
            let shard_index = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % n;
            let mut shard = self.shards[shard_index]
                .lock()
                .expect("cache shard poisoned");
            match Self::evict_one(&mut shard) {
                Some(freed) => {
                    drop(shard);
                    empty_streak = 0;
                    counters.resident_blocks.fetch_sub(1, Ordering::Relaxed);
                    counters
                        .resident_bytes
                        .fetch_sub(freed as u64, Ordering::Relaxed);
                    counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => empty_streak += 1,
            }
        }
    }
}

/// A demand-paged on-disk graph store (see the module docs for the format
/// and the paging strategy). `Send + Sync`: any number of reader threads
/// may share one handle, paging through the sharded block cache under one
/// byte budget.
pub struct OocStore {
    file: StoreFile,
    n: usize,
    m_directed: usize,
    d: usize,
    attr_block_nodes: usize,
    edge_block_entries: usize,
    off_indices: u64,
    off_attrs: u64,
    off_labels: Option<u64>,
    /// Row pointers, fully resident (counted against the budget at `open`).
    indptr: Vec<u64>,
    budget: usize,
    cache: ShardedCache,
    counters: Arc<StoreCounters>,
}

impl Drop for OocStore {
    fn drop(&mut self) {
        // Fold the monotonic counters into the process-wide totals; the
        // resident figures vanish with the registry's weak reference.
        retire_counters(&self.counters);
    }
}

impl std::fmt::Debug for OocStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OocStore")
            .field("n", &self.n)
            .field("m_directed", &self.m_directed)
            .field("d", &self.d)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// Positioned reads over the store file. On Unix a plain [`File`] suffices
/// (`pread` never moves the cursor, so concurrent readers need no lock);
/// elsewhere seek+read pairs are serialised behind a mutex.
struct StoreFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl StoreFile {
    fn new(file: File) -> StoreFile {
        StoreFile {
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: Mutex::new(file),
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)
        }
        #[cfg(not(unix))]
        {
            let mut f = self.file.lock().expect("store file poisoned");
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)
        }
    }
}

fn bytes_to_u32s(buf: &[u8]) -> Vec<u32> {
    buf.chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn bytes_to_f32s(buf: &[u8]) -> Vec<f32> {
    buf.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

impl OocStore {
    /// Open a `VGODSTR1` store with a total memory budget in bytes and
    /// default cache options (segmented LRU, auto shard count).
    ///
    /// The budget covers the resident row-pointer array plus the block
    /// cache; it must fit `indptr` plus at least one edge block and one
    /// attribute block, or `open` refuses with a message stating the
    /// minimum.
    pub fn open(path: &Path, budget: usize) -> Result<OocStore, String> {
        Self::open_with(path, StoreOptions::new(budget))
    }

    /// Open a `VGODSTR1` store with explicit cache options (see [`open`]
    /// for the budget contract).
    ///
    /// [`open`]: OocStore::open
    pub fn open_with(path: &Path, opts: StoreOptions) -> Result<OocStore, String> {
        let budget = opts.budget;
        let mut file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        let mut head = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut head)
            .map_err(|e| format!("read header of {}: {e}", path.display()))?;
        if &head[..8] != STORE_MAGIC {
            return Err(format!("{} is not a VGODSTR1 store", path.display()));
        }
        let word = |i: usize| -> u64 {
            let at = 8 + i * 8;
            u64::from_le_bytes(head[at..at + 8].try_into().unwrap())
        };
        let n = word(0) as usize;
        let m_directed = word(1) as usize;
        let d = word(2) as usize;
        let attr_block_nodes = word(3) as usize;
        let edge_block_entries = word(4) as usize;
        let flags = word(5);
        if attr_block_nodes == 0 || edge_block_entries == 0 {
            return Err("store header has zero block size".to_string());
        }

        let indptr_bytes = (n + 1) * 8;
        let off_indices = HEADER_BYTES + indptr_bytes as u64;
        let off_attrs = off_indices + (m_directed * 4) as u64;
        let off_labels = if flags & FLAG_LABELS != 0 {
            Some(off_attrs + (n * d * 4) as u64)
        } else {
            None
        };
        let expect_len = off_labels.unwrap_or(off_attrs + (n * d * 4) as u64)
            + if flags & FLAG_LABELS != 0 {
                (n * 4) as u64
            } else {
                0
            };
        let actual_len = file
            .metadata()
            .map_err(|e| format!("stat {}: {e}", path.display()))?
            .len();
        if actual_len != expect_len {
            return Err(format!(
                "{}: truncated or corrupt store ({actual_len} bytes, expected {expect_len})",
                path.display()
            ));
        }

        let edge_block_bytes = edge_block_entries.min(m_directed.max(1)) * 4;
        let attr_block_bytes = attr_block_nodes.min(n.max(1)) * d.max(1) * 4;
        let min_budget = indptr_bytes + edge_block_bytes + attr_block_bytes;
        if budget < min_budget {
            return Err(format!(
                "memory budget {budget} B is below the minimum {min_budget} B \
                 (indptr {indptr_bytes} B + one edge block {edge_block_bytes} B \
                 + one attribute block {attr_block_bytes} B)"
            ));
        }

        let mut indptr_buf = vec![0u8; indptr_bytes];
        file.seek(SeekFrom::Start(HEADER_BYTES))
            .and_then(|_| file.read_exact(&mut indptr_buf))
            .map_err(|e| format!("read indptr of {}: {e}", path.display()))?;
        let indptr: Vec<u64> = indptr_buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if indptr.first() != Some(&0) || indptr.last() != Some(&(m_directed as u64)) {
            return Err(format!("{}: inconsistent row pointers", path.display()));
        }

        let counters = Arc::new(StoreCounters::default());
        counters
            .budget_bytes
            .store(budget as u64, Ordering::Relaxed);
        counters.bytes_read.store(
            (HEADER_BYTES as usize + indptr_bytes) as u64,
            Ordering::Relaxed,
        );
        register_counters(&counters);

        let shards = if opts.shards == 0 {
            DEFAULT_CACHE_SHARDS
        } else {
            opts.shards
        };
        Ok(OocStore {
            file: StoreFile::new(file),
            n,
            m_directed,
            d,
            attr_block_nodes,
            edge_block_entries,
            off_indices,
            off_attrs,
            off_labels,
            indptr,
            budget,
            cache: ShardedCache::new(shards, opts.policy, budget - indptr_bytes),
            counters,
        })
    }

    /// Serialise an in-memory graph to `path` in store format.
    pub fn create_from_graph(
        g: &AttributedGraph,
        path: &Path,
        attr_block_nodes: usize,
        edge_block_entries: usize,
    ) -> std::io::Result<()> {
        write_store(
            path,
            g.num_nodes(),
            g.num_attrs(),
            attr_block_nodes,
            edge_block_entries,
            g.labels().is_some(),
            |u, out| {
                out.clear();
                out.extend_from_slice(g.neighbors(u));
            },
            |u, row| row.copy_from_slice(g.attrs().row(u as usize)),
            |u| g.labels().map_or(0, |l| l[u as usize]),
        )
    }

    /// Number of attribute rows per block.
    pub fn attr_block_nodes(&self) -> usize {
        self.attr_block_nodes
    }

    /// Number of edge entries per block.
    pub fn edge_block_entries(&self) -> usize {
        self.edge_block_entries
    }

    /// The configured total memory budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The block replacement policy the cache runs.
    pub fn policy(&self) -> CachePolicy {
        self.cache.policy
    }

    /// Number of mutex-guarded cache shards.
    pub fn shard_count(&self) -> usize {
        self.cache.shards.len()
    }

    /// Bytes of the budget available to cached blocks (total budget minus
    /// the resident row-pointer array).
    pub fn cache_budget(&self) -> usize {
        self.cache.budget
    }

    /// Total number of edge blocks in the file.
    pub fn num_edge_blocks(&self) -> usize {
        self.m_directed.div_ceil(self.edge_block_entries)
    }

    /// Total number of attribute blocks in the file.
    pub fn num_attr_blocks(&self) -> usize {
        self.n.div_ceil(self.attr_block_nodes)
    }

    /// Sorted ids of the currently cached `(edge, attr)` blocks — cache
    /// *contents* irrespective of recency order, for tests that compare
    /// prefetch-on against prefetch-off runs.
    pub fn resident_block_ids(&self) -> (Vec<usize>, Vec<usize>) {
        let mut edges = Vec::new();
        let mut attrs = Vec::new();
        for shard in &self.cache.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            edges.extend(shard.edge.keys().copied());
            attrs.extend(shard.attr.keys().copied());
        }
        edges.sort_unstable();
        attrs.sort_unstable();
        (edges, attrs)
    }

    fn row_range(&self, u: u32) -> (usize, usize) {
        (
            self.indptr[u as usize] as usize,
            self.indptr[u as usize + 1] as usize,
        )
    }

    fn edge_block_len(&self, b: usize) -> usize {
        (self.m_directed - b * self.edge_block_entries).min(self.edge_block_entries)
    }

    fn attr_block_rows(&self, b: usize) -> usize {
        (self.n - b * self.attr_block_nodes).min(self.attr_block_nodes)
    }

    fn record_read(&self, bytes: usize) {
        self.counters
            .bytes_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Read and admit one edge block (the miss path: the shard lock is
    /// *not* held across the disk read — unlock, `pread` + decode, re-lock
    /// with a double-check where a racing thread's copy wins).
    fn load_edge_block(&self, b: usize) -> Arc<Vec<u32>> {
        let bytes = self.edge_block_len(b) * 4;
        let mut buf = vec![0u8; bytes];
        let off = self.off_indices + (b * self.edge_block_entries * 4) as u64;
        self.file
            .read_exact_at(&mut buf, off)
            .expect("store read failed (edge block)");
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.record_read(bytes);
        self.cache
            .insert(b, Arc::new(bytes_to_u32s(&buf)), &self.counters)
    }

    /// Fetch one edge block through the cache.
    fn edge_block(&self, b: usize) -> Arc<Vec<u32>> {
        if let Some(data) = self.cache.lookup::<u32>(b) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return data;
        }
        self.load_edge_block(b)
    }

    /// Read and admit one attribute block (same locking protocol as
    /// [`load_edge_block`](Self::load_edge_block)).
    fn load_attr_block(&self, b: usize) -> Arc<Vec<f32>> {
        let bytes = self.attr_block_rows(b) * self.d * 4;
        let mut buf = vec![0u8; bytes];
        let off = self.off_attrs + (b * self.attr_block_nodes * self.d * 4) as u64;
        self.file
            .read_exact_at(&mut buf, off)
            .expect("store read failed (attr block)");
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.record_read(bytes);
        self.cache
            .insert(b, Arc::new(bytes_to_f32s(&buf)), &self.counters)
    }

    /// Fetch one attribute block through the cache.
    fn attr_block(&self, b: usize) -> Arc<Vec<f32>> {
        if let Some(data) = self.cache.lookup::<f32>(b) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return data;
        }
        self.load_attr_block(b)
    }
}

impl GraphStore for OocStore {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m_directed / 2
    }

    fn num_attrs(&self) -> usize {
        self.d
    }

    fn degree(&self, u: u32) -> usize {
        let (start, end) = self.row_range(u);
        end - start
    }

    fn neighbors_into(&self, u: u32, out: &mut Vec<u32>) {
        out.clear();
        let (start, end) = self.row_range(u);
        if start == end {
            return;
        }
        let eb = self.edge_block_entries;
        for b in start / eb..=(end - 1) / eb {
            let block = self.edge_block(b);
            let lo = start.max(b * eb) - b * eb;
            let hi = end.min((b + 1) * eb) - b * eb;
            out.extend_from_slice(&block[lo..hi]);
        }
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        // Rows are sorted, so each block's sub-slice is searchable in
        // place — no scratch copy of the neighbour list needed.
        let (start, end) = self.row_range(u);
        if start == end {
            return false;
        }
        let eb = self.edge_block_entries;
        for b in start / eb..=(end - 1) / eb {
            let block = self.edge_block(b);
            let lo = start.max(b * eb) - b * eb;
            let hi = end.min((b + 1) * eb) - b * eb;
            if block[lo..hi].binary_search(&v).is_ok() {
                return true;
            }
        }
        false
    }

    fn attr_row_into(&self, u: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.d, "attribute row buffer has wrong width");
        let b = u as usize / self.attr_block_nodes;
        let at = (u as usize % self.attr_block_nodes) * self.d;
        let block = self.attr_block(b);
        out.copy_from_slice(&block[at..at + self.d]);
    }

    fn visit_adjacency(&self, cb: &mut dyn FnMut(u32, &[u32])) {
        // Sequential streaming pass, bypassing the block cache so a full
        // sweep does not evict the sampler's working set. One positioned
        // read per group of rows, bounded by the edge block size.
        let mut u = 0usize;
        let mut buf: Vec<u8> = Vec::new();
        while u < self.n {
            let start = self.indptr[u] as usize;
            let mut stop_node = u + 1;
            while stop_node < self.n
                && (self.indptr[stop_node + 1] as usize - start) <= self.edge_block_entries
            {
                stop_node += 1;
            }
            let end = self.indptr[stop_node] as usize;
            let bytes = (end - start) * 4;
            buf.resize(bytes, 0);
            if bytes > 0 {
                self.file
                    .read_exact_at(&mut buf, self.off_indices + (start * 4) as u64)
                    .expect("store read failed (adjacency sweep)");
                self.record_read(bytes);
            }
            let entries = bytes_to_u32s(&buf);
            for node in u..stop_node {
                let lo = self.indptr[node] as usize - start;
                let hi = self.indptr[node + 1] as usize - start;
                cb(node as u32, &entries[lo..hi]);
            }
            u = stop_node;
        }
    }

    fn visit_attrs(&self, cb: &mut dyn FnMut(u32, &[f32])) {
        let mut buf: Vec<u8> = Vec::new();
        let blocks = self.n.div_ceil(self.attr_block_nodes);
        for b in 0..blocks {
            let rows = self.attr_block_rows(b);
            let bytes = rows * self.d * 4;
            buf.resize(bytes, 0);
            let off = self.off_attrs + (b * self.attr_block_nodes * self.d * 4) as u64;
            self.file
                .read_exact_at(&mut buf, off)
                .expect("store read failed (attr sweep)");
            self.record_read(bytes);
            let floats = bytes_to_f32s(&buf);
            for r in 0..rows {
                let u = (b * self.attr_block_nodes + r) as u32;
                cb(u, &floats[r * self.d..(r + 1) * self.d]);
            }
        }
    }

    fn labels_vec(&self) -> Option<Vec<u32>> {
        let off = self.off_labels?;
        let mut buf = vec![0u8; self.n * 4];
        self.file
            .read_exact_at(&mut buf, off)
            .expect("store read failed (labels)");
        self.record_read(buf.len());
        Some(bytes_to_u32s(&buf))
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.counters.snapshot();
        // The per-store view also charges the always-resident row pointers.
        stats.resident_bytes += (self.indptr.len() * 8) as u64;
        stats
    }

    fn as_shared(&self) -> Option<&(dyn GraphStore + Sync)> {
        Some(self)
    }

    fn prefetch_nodes(&self, lo: u32, hi: u32) {
        let hi = hi.min(self.n as u32);
        if lo >= hi {
            return;
        }
        // Warm-only probes: resident blocks are left completely untouched
        // (no recency bump, no promotion, no correlated-reference update),
        // so warming ahead of the compute threads cannot distort the
        // replacement decisions their own accesses drive. Missing blocks
        // are read and admitted on probation exactly like a demand miss.
        let (start, end) = (
            self.indptr[lo as usize] as usize,
            self.indptr[hi as usize] as usize,
        );
        if start < end {
            let eb = self.edge_block_entries;
            for b in start / eb..=(end - 1) / eb {
                if !self.cache.contains::<u32>(b) {
                    drop(self.load_edge_block(b));
                }
            }
        }
        let abn = self.attr_block_nodes;
        for b in lo as usize / abn..=(hi as usize - 1) / abn {
            if !self.cache.contains::<f32>(b) {
                drop(self.load_attr_block(b));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Writing stores
// ---------------------------------------------------------------------

/// Write a store from per-node callbacks, in two streaming passes (degrees
/// then rows) — the whole graph never has to exist in memory. `neighbors_of`
/// must fill a *sorted* neighbour list and be deterministic: it is called
/// twice per node.
#[allow(clippy::too_many_arguments)]
pub fn write_store(
    path: &Path,
    n: usize,
    d: usize,
    attr_block_nodes: usize,
    edge_block_entries: usize,
    has_labels: bool,
    mut neighbors_of: impl FnMut(u32, &mut Vec<u32>),
    mut attrs_of: impl FnMut(u32, &mut [f32]),
    mut label_of: impl FnMut(u32) -> u32,
) -> std::io::Result<()> {
    assert!(
        attr_block_nodes > 0 && edge_block_entries > 0,
        "zero block size"
    );
    let mut out = BufWriter::new(File::create(path)?);
    let mut nbrs: Vec<u32> = Vec::new();

    // Pass 1: degrees → row pointers.
    let mut m_directed = 0u64;
    let mut indptr_bytes: Vec<u8> = Vec::with_capacity((n + 1) * 8);
    indptr_bytes.extend_from_slice(&0u64.to_le_bytes());
    for u in 0..n as u32 {
        neighbors_of(u, &mut nbrs);
        debug_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
        m_directed += nbrs.len() as u64;
        indptr_bytes.extend_from_slice(&m_directed.to_le_bytes());
    }

    out.write_all(STORE_MAGIC)?;
    for word in [
        n as u64,
        m_directed,
        d as u64,
        attr_block_nodes as u64,
        edge_block_entries as u64,
        u64::from(has_labels) * FLAG_LABELS,
        0u64,
    ] {
        out.write_all(&word.to_le_bytes())?;
    }
    out.write_all(&indptr_bytes)?;
    drop(indptr_bytes);

    // Pass 2: neighbour lists.
    for u in 0..n as u32 {
        neighbors_of(u, &mut nbrs);
        for &v in &nbrs {
            out.write_all(&v.to_le_bytes())?;
        }
    }

    // Pass 3: attribute rows.
    let mut row = vec![0f32; d];
    for u in 0..n as u32 {
        attrs_of(u, &mut row);
        for &x in &row {
            out.write_all(&x.to_le_bytes())?;
        }
    }

    // Pass 4: labels.
    if has_labels {
        for u in 0..n as u32 {
            out.write_all(&label_of(u).to_le_bytes())?;
        }
    }
    out.flush()
}

// ---------------------------------------------------------------------
// Streaming synthetic stores
// ---------------------------------------------------------------------

/// Configuration for [`synth_store`]: a deterministic synthetic graph that
/// can be written at any size without ever materialising it.
///
/// The base topology is a ring lattice (every node links to its
/// `avg_degree/2` nearest ids on each side — symmetric by construction,
/// uniform degree). Structural outliers are planted cliques on disjoint
/// contiguous id ranges; contextual outliers are nodes whose attribute
/// noise is scaled by `contextual_scale` away from their community mean.
#[derive(Clone, Debug)]
pub struct SynthStoreConfig {
    /// Node count `n`.
    pub nodes: usize,
    /// Target average degree (ring lattice degree, before cliques).
    pub avg_degree: usize,
    /// Attribute dimension `d`.
    pub attrs: usize,
    /// Number of communities (contiguous id blocks, attribute means differ).
    pub communities: usize,
    /// Number of planted cliques (structural outliers).
    pub clique_count: usize,
    /// Nodes per planted clique.
    pub clique_size: usize,
    /// Number of contextual outliers.
    pub contextual_count: usize,
    /// Noise multiplier for contextual outliers (≫ 1 makes them stand out).
    pub contextual_scale: f32,
    /// Master seed; every derived stream is mixed from it.
    pub seed: u64,
}

impl SynthStoreConfig {
    /// A configuration scaled to `n` nodes with paper-like proportions:
    /// average degree 20 (so `|E| = 10·n`), 32 attributes, and ~0.5% of
    /// nodes outliers split between the two types.
    pub fn scaled(n: usize, seed: u64) -> Self {
        let clique_size = 10usize;
        let clique_count = (n / 400).clamp(1, 1000);
        Self {
            nodes: n,
            avg_degree: 20,
            attrs: 32,
            communities: 8.min(n.max(1)),
            clique_count,
            clique_size,
            contextual_count: (n / 40).clamp(1, 25_000),
            contextual_scale: 6.0,
            seed,
        }
    }
}

/// Ground truth for a synthetic store: planted outlier node ids.
#[derive(Clone, Debug, Default)]
pub struct SynthTruth {
    /// Clique members (structural outliers).
    pub structural: Vec<u32>,
    /// Attribute outliers (contextual).
    pub contextual: Vec<u32>,
}

/// Write a synthetic store to `path` (see [`SynthStoreConfig`]) and return
/// the planted ground truth. Memory use is `O(cliques + outliers + d)`,
/// independent of `n`.
pub fn synth_store(
    path: &Path,
    cfg: &SynthStoreConfig,
    attr_block_nodes: usize,
    edge_block_entries: usize,
) -> std::io::Result<SynthTruth> {
    let n = cfg.nodes;
    assert!(n >= 4, "synthetic store needs at least 4 nodes");
    let k = (cfg.avg_degree / 2).max(1).min((n - 1) / 2);
    let communities = cfg.communities.max(1);

    // Disjoint clique ranges: one per stride of ids, offset pseudo-randomly.
    let mut clique_count = cfg.clique_count;
    let clique_size = cfg.clique_size.max(2);
    let stride = n.checked_div(clique_count).unwrap_or(n);
    if clique_count > 0 && stride < 2 * clique_size {
        clique_count = (n / (2 * clique_size)).max(1).min(clique_count);
    }
    let stride = n.checked_div(clique_count).unwrap_or(n);
    let clique_base: Vec<usize> = (0..clique_count)
        .map(|c| {
            let slack = stride.saturating_sub(clique_size).max(1);
            c * stride + (splitmix64(cfg.seed ^ 0xC110_u64 ^ c as u64) as usize) % slack
        })
        .collect();
    let clique_of = |u: usize| -> Option<(usize, usize)> {
        if clique_count == 0 || stride == 0 {
            return None;
        }
        let c = (u / stride).min(clique_count - 1);
        let base = clique_base[c];
        (u >= base && u < base + clique_size).then_some((base, clique_size))
    };

    // Contextual outliers: pseudo-random ids outside the cliques.
    let mut contextual: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut attempt = 0u64;
    while contextual.len() < cfg.contextual_count.min(n / 2)
        && attempt < 100 * (cfg.contextual_count as u64 + 1)
    {
        let u = (splitmix64(cfg.seed ^ 0xA77Du64 ^ attempt) as usize) % n;
        attempt += 1;
        if clique_of(u).is_none() {
            contextual.insert(u as u32);
        }
    }

    // Community attribute means, separated enough to be learnable.
    let mut mu = vec![0f32; communities * cfg.attrs.max(1)];
    for c in 0..communities {
        let mut rng = seeded_rng(splitmix64(cfg.seed ^ 0x3EA2u64 ^ c as u64));
        for j in 0..cfg.attrs {
            mu[c * cfg.attrs + j] = 3.0 * standard_normal(&mut rng);
        }
    }
    let community_of = move |u: usize| -> usize { u * communities / n };

    let neighbors_of = {
        move |u: u32, out: &mut Vec<u32>| {
            let u = u as usize;
            out.clear();
            for s in 1..=k {
                out.push(((u + s) % n) as u32);
                out.push(((u + n - s) % n) as u32);
            }
            if let Some((base, size)) = clique_of(u) {
                for v in base..base + size {
                    if v != u {
                        out.push(v as u32);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
        }
    };

    let contextual_set = contextual.clone();
    let seed = cfg.seed;
    let scale = cfg.contextual_scale;
    let d = cfg.attrs;
    let attrs_of = move |u: u32, row: &mut [f32]| {
        let c = community_of(u as usize);
        let noise = if contextual_set.contains(&u) {
            scale
        } else {
            1.0
        };
        let mut rng = seeded_rng(splitmix64(seed ^ 0xF00Du64 ^ u as u64));
        for (j, x) in row.iter_mut().enumerate() {
            *x = mu[c * d + j] + noise * standard_normal(&mut rng);
        }
    };

    write_store(
        path,
        n,
        d,
        attr_block_nodes,
        edge_block_entries,
        true,
        neighbors_of,
        attrs_of,
        |u| community_of(u as usize) as u32,
    )?;

    let mut structural: Vec<u32> = clique_base
        .iter()
        .flat_map(|&b| b as u32..(b + clique_size) as u32)
        .collect();
    structural.sort_unstable();
    let mut contextual: Vec<u32> = contextual.into_iter().collect();
    contextual.sort_unstable();
    Ok(SynthTruth {
        structural,
        contextual,
    })
}

/// Estimated resident bytes of the in-memory path for an `n`-node,
/// `m`-undirected-edge, `d`-attribute graph: the dense attribute matrix,
/// both directions of every neighbour list (plus `Vec` headers), and the
/// binary-adjacency CSR that `GraphContext` materialises up front. Used by
/// the scale bench to prove a budget is genuinely out of reach in-core.
pub fn in_memory_bytes_estimate(n: usize, m: usize, d: usize) -> u64 {
    let attrs = (n * d * 4) as u64;
    let adj = (2 * m * 4 + n * 24) as u64;
    let csr = (2 * m * 8 + (n + 1) * 8) as u64;
    attrs + adj + csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{community_graph, gaussian_mixture_attributes, CommunityGraphConfig};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vgod-store-test-{}-{name}", std::process::id()));
        p
    }

    fn small_graph(seed: u64) -> AttributedGraph {
        let mut rng = seeded_rng(seed);
        let mut g = community_graph(
            &CommunityGraphConfig::homogeneous(120, 3, 5.0, 0.9),
            &mut rng,
        );
        let x = gaussian_mixture_attributes(g.labels().unwrap(), 7, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        g
    }

    #[test]
    fn roundtrip_preserves_graph_exactly() {
        let g = small_graph(3);
        let path = temp_path("roundtrip.gstore");
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        assert_eq!(GraphStore::num_nodes(&store), g.num_nodes());
        assert_eq!(GraphStore::num_edges(&store), g.num_edges());
        assert_eq!(GraphStore::num_attrs(&store), g.num_attrs());
        let back = store.materialize();
        assert!(back.check_invariants());
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(back.neighbors(u), g.neighbors(u), "row {u}");
            assert_eq!(back.attrs().row(u as usize), g.attrs().row(u as usize));
        }
        assert_eq!(back.labels(), g.labels());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn point_reads_match_in_memory_backend() {
        let g = small_graph(4);
        let path = temp_path("point.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        // Budget sized to hold only a handful of blocks, forcing paging.
        let min = (g.num_nodes() + 1) * 8 + 32 * 4 + 8 * g.num_attrs() * 4;
        let store = OocStore::open(&path, min + 256).unwrap();
        let mut nbrs = Vec::new();
        let mut row = vec![0f32; g.num_attrs()];
        for u in (0..g.num_nodes() as u32).rev() {
            store.neighbors_into(u, &mut nbrs);
            assert_eq!(nbrs.as_slice(), g.neighbors(u));
            store.attr_row_into(u, &mut row);
            assert_eq!(row.as_slice(), g.attrs().row(u as usize));
            assert_eq!(GraphStore::degree(&store, u), g.degree(u));
        }
        for &(u, v) in &[(0u32, 1u32), (5, 80), (100, 3)] {
            assert_eq!(GraphStore::has_edge(&store, u, v), g.has_edge(u, v));
        }
        let stats = store.stats();
        assert!(stats.evictions > 0, "tight budget must evict: {stats:?}");
        assert!(
            stats.resident_bytes <= store.budget() as u64,
            "resident {} over budget {}",
            stats.resident_bytes,
            store.budget()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_refuses_budget_below_minimum() {
        let g = small_graph(5);
        let path = temp_path("minbudget.gstore");
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let err = OocStore::open(&path, 64).unwrap_err();
        assert!(err.contains("below the minimum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_truncated_and_foreign_files() {
        let path = temp_path("corrupt.gstore");
        std::fs::write(&path, [b'x'; 128]).unwrap();
        assert!(OocStore::open(&path, 1 << 20)
            .unwrap_err()
            .contains("not a VGODSTR1"));
        let g = small_graph(6);
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(OocStore::open(&path, 1 << 20)
            .unwrap_err()
            .contains("truncated"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gather_attrs_matches_full_graph_gather() {
        let g = small_graph(7);
        let nodes = [5u32, 0, 17, 99, 3];
        let via_store = GraphStore::gather_attrs(&g, &nodes);
        let direct = g.attrs().gather_rows(&nodes);
        assert_eq!(via_store.as_slice(), direct.as_slice());
        let path = temp_path("gather.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        assert_eq!(store.gather_attrs(&nodes).as_slice(), direct.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synth_store_is_valid_and_deterministic() {
        let cfg = SynthStoreConfig {
            nodes: 600,
            avg_degree: 8,
            attrs: 5,
            communities: 3,
            clique_count: 2,
            clique_size: 6,
            contextual_count: 10,
            contextual_scale: 5.0,
            seed: 9,
        };
        let p1 = temp_path("synth1.gstore");
        let p2 = temp_path("synth2.gstore");
        let t1 = synth_store(&p1, &cfg, 64, 256).unwrap();
        let t2 = synth_store(&p2, &cfg, 64, 256).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        assert_eq!(t1.structural, t2.structural);
        assert_eq!(t1.contextual, t2.contextual);
        assert_eq!(t1.structural.len(), 12);
        assert_eq!(t1.contextual.len(), 10);

        let store = OocStore::open(&p1, 1 << 20).unwrap();
        let g = store.materialize();
        assert!(g.check_invariants());
        assert_eq!(g.num_nodes(), 600);
        // Clique members must be mutually connected.
        let (a, b) = (t1.structural[0], t1.structural[1]);
        assert!(g.has_edge(a, b));
        // Ring lattice gives every non-clique node degree 2k.
        let plain = (0..600u32).find(|u| !t1.structural.contains(u)).unwrap();
        assert_eq!(g.degree(plain), 8);
        assert!(g.labels().is_some());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn parse_mem_budget_understands_suffixes() {
        assert_eq!(parse_mem_budget("4096").unwrap(), 4096);
        assert_eq!(parse_mem_budget("64K").unwrap(), 64 << 10);
        assert_eq!(parse_mem_budget("96M").unwrap(), 96 << 20);
        assert_eq!(parse_mem_budget("2g").unwrap(), 2 << 30);
        assert!(parse_mem_budget("lots").is_err());
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OocStore>();
    }

    #[test]
    fn concurrent_readers_agree_under_tiny_budget() {
        let g = small_graph(11);
        let path = temp_path("stress.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        let n = g.num_nodes();
        let d = g.num_attrs();
        // Plain owned expectations: the in-memory graph itself is !Sync.
        let expected_adj: Vec<Vec<u32>> = (0..n as u32).map(|u| g.neighbors(u).to_vec()).collect();
        let expected_attr: Vec<Vec<f32>> = (0..n).map(|u| g.attrs().row(u).to_vec()).collect();
        let min = (n + 1) * 8 + 32 * 4 + 8 * d * 4;
        let store = OocStore::open_with(
            &path,
            StoreOptions {
                budget: min + 512,
                policy: CachePolicy::Segmented,
                shards: 4,
            },
        )
        .unwrap();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let store = &store;
                let expected_adj = &expected_adj;
                let expected_attr = &expected_attr;
                scope.spawn(move || {
                    let mut nbrs = Vec::new();
                    let mut row = vec![0f32; d];
                    for pass in 0..3u32 {
                        for i in 0..n as u32 {
                            // Thread-dependent visit order provokes
                            // eviction races on the shared cache.
                            let u = (i.wrapping_mul(2 * t + 1) + 7 * pass) % n as u32;
                            store.neighbors_into(u, &mut nbrs);
                            assert_eq!(
                                nbrs.as_slice(),
                                expected_adj[u as usize].as_slice(),
                                "row {u} (thread {t}, pass {pass})"
                            );
                            store.attr_row_into(u, &mut row);
                            assert_eq!(
                                row.as_slice(),
                                expected_attr[u as usize].as_slice(),
                                "attrs {u} (thread {t}, pass {pass})"
                            );
                            let v = (u + t) % n as u32;
                            assert_eq!(
                                GraphStore::has_edge(store, u, v),
                                expected_adj[u as usize].binary_search(&v).is_ok(),
                                "edge {u}-{v}"
                            );
                        }
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.evictions > 0, "tiny budget must evict: {stats:?}");
        assert!(stats.hits > 0 && stats.misses > 0, "{stats:?}");
        assert!(
            stats.resident_bytes <= store.budget() as u64,
            "resident {} over budget {}",
            stats.resident_bytes,
            store.budget()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segmented_cache_survives_scan_lru_does_not() {
        let g = small_graph(12);
        let path = temp_path("scan.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        let d = g.num_attrs();
        let indptr_bytes = (g.num_nodes() + 1) * 8;
        // Room for ~4 edge blocks plus ~3 attribute blocks: a full edge
        // sweep overflows the cache many times over.
        let budget = indptr_bytes + 4 * 32 * 4 + 3 * 8 * d * 4;
        let hot_rows = [0u32, 1, 8, 9]; // attribute blocks 0 and 1
        let hot_reread_bytes = |policy: CachePolicy| -> u64 {
            let store = OocStore::open_with(
                &path,
                StoreOptions {
                    budget,
                    policy,
                    shards: 1,
                },
            )
            .unwrap();
            let mut row = vec![0f32; d];
            // Touch the hot rows twice: the second access promotes their
            // blocks to the protected segment (under Segmented).
            for _ in 0..2 {
                for &u in &hot_rows {
                    store.attr_row_into(u, &mut row);
                }
            }
            // Cold scan: page every edge block through the cache once.
            let mut nbrs = Vec::new();
            for u in 0..GraphStore::num_nodes(&store) as u32 {
                store.neighbors_into(u, &mut nbrs);
            }
            let before = store.stats().bytes_read;
            for &u in &hot_rows {
                store.attr_row_into(u, &mut row);
            }
            store.stats().bytes_read - before
        };
        assert_eq!(
            hot_reread_bytes(CachePolicy::Segmented),
            0,
            "segmented LRU must keep the hot attribute blocks through a scan"
        );
        assert!(
            hot_reread_bytes(CachePolicy::Lru) > 0,
            "plain LRU is expected to lose the hot blocks to the scan"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_warms_exactly_the_touched_blocks() {
        let g = small_graph(13);
        let path = temp_path("prefetch.gstore");
        OocStore::create_from_graph(&g, &path, 8, 32).unwrap();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        store.prefetch_nodes(0, 16);
        let (_, attrs) = store.resident_block_ids();
        assert_eq!(attrs, vec![0, 1], "rows 0..16 span attribute blocks 0-1");
        let read_after_prefetch = store.stats().bytes_read;
        let mut row = vec![0f32; GraphStore::num_attrs(&store)];
        let mut nbrs = Vec::new();
        for u in 0..16u32 {
            store.attr_row_into(u, &mut row);
            store.neighbors_into(u, &mut nbrs);
        }
        assert_eq!(
            store.stats().bytes_read,
            read_after_prefetch,
            "reads of prefetched rows must all hit the cache"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn global_stats_track_reads() {
        let g = small_graph(8);
        let path = temp_path("globalstats.gstore");
        OocStore::create_from_graph(&g, &path, 16, 64).unwrap();
        let before = global_store_stats();
        let store = OocStore::open(&path, 1 << 20).unwrap();
        let mut nbrs = Vec::new();
        store.neighbors_into(0, &mut nbrs);
        let after = global_store_stats();
        assert!(after.bytes_read > before.bytes_read);
        drop(store);
        let dropped = global_store_stats();
        assert_eq!(dropped.resident_blocks, before.resident_blocks);
        std::fs::remove_file(&path).ok();
    }
}
