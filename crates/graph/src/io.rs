//! Plain-text serialisation of attributed graphs.
//!
//! A deliberately boring format so replicas and detection results can move
//! between this library, notebooks and spreadsheet tools without adding a
//! serde dependency:
//!
//! ```text
//! # vgod-graph v1
//! nodes <n> attrs <d>
//! labels <l_0> <l_1> … <l_{n-1}>        (optional line)
//! node <id> <x_0> <x_1> … <x_{d-1}>     (n lines)
//! edge <u> <v>                          (one per undirected edge, u < v)
//! ```

use std::io::{BufRead, Write};

use crate::AttributedGraph;
use vgod_tensor::Matrix;

/// Errors produced when parsing a serialised graph.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse(msg.into())
}

/// Write `g` in the v1 text format.
pub fn write_graph(g: &AttributedGraph, out: &mut impl Write) -> Result<(), GraphIoError> {
    writeln!(out, "# vgod-graph v1")?;
    writeln!(out, "nodes {} attrs {}", g.num_nodes(), g.num_attrs())?;
    if let Some(labels) = g.labels() {
        write!(out, "labels")?;
        for l in labels {
            write!(out, " {l}")?;
        }
        writeln!(out)?;
    }
    for i in 0..g.num_nodes() {
        write!(out, "node {i}")?;
        for v in g.attrs().row(i) {
            write!(out, " {v}")?;
        }
        writeln!(out)?;
    }
    for (u, v) in g.undirected_edges() {
        writeln!(out, "edge {u} {v}")?;
    }
    Ok(())
}

/// Read a graph written by [`write_graph`].
pub fn read_graph(input: &mut impl BufRead) -> Result<AttributedGraph, GraphIoError> {
    let mut lines = input.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    if header.trim() != "# vgod-graph v1" {
        return Err(parse_err(format!("unexpected header: {header:?}")));
    }
    let size_line = lines
        .next()
        .ok_or_else(|| parse_err("missing size line"))??;
    let parts: Vec<&str> = size_line.split_whitespace().collect();
    let (n, d) = match parts.as_slice() {
        ["nodes", n, "attrs", d] => (
            n.parse::<usize>()
                .map_err(|e| parse_err(format!("bad node count: {e}")))?,
            d.parse::<usize>()
                .map_err(|e| parse_err(format!("bad attr count: {e}")))?,
        ),
        _ => return Err(parse_err(format!("bad size line: {size_line:?}"))),
    };

    let mut x = Matrix::zeros(n, d);
    let mut labels: Option<Vec<u32>> = None;
    let mut seen_nodes = vec![false; n];
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("labels") => {
                let parsed: Result<Vec<u32>, _> = tokens.map(str::parse).collect();
                let parsed = parsed.map_err(|e| parse_err(format!("bad label: {e}")))?;
                if parsed.len() != n {
                    return Err(parse_err(format!(
                        "expected {n} labels, got {}",
                        parsed.len()
                    )));
                }
                labels = Some(parsed);
            }
            Some("node") => {
                let id: usize = tokens
                    .next()
                    .ok_or_else(|| parse_err("node line missing id"))?
                    .parse()
                    .map_err(|e| parse_err(format!("bad node id: {e}")))?;
                if id >= n {
                    return Err(parse_err(format!("node id {id} out of range")));
                }
                let values: Result<Vec<f32>, _> = tokens.map(str::parse).collect();
                let values = values.map_err(|e| parse_err(format!("bad attribute: {e}")))?;
                if values.len() != d {
                    return Err(parse_err(format!(
                        "node {id}: expected {d} attributes, got {}",
                        values.len()
                    )));
                }
                x.row_mut(id).copy_from_slice(&values);
                seen_nodes[id] = true;
            }
            Some("edge") => {
                let u: u32 = tokens
                    .next()
                    .ok_or_else(|| parse_err("edge line missing endpoint"))?
                    .parse()
                    .map_err(|e| parse_err(format!("bad edge endpoint: {e}")))?;
                let v: u32 = tokens
                    .next()
                    .ok_or_else(|| parse_err("edge line missing endpoint"))?
                    .parse()
                    .map_err(|e| parse_err(format!("bad edge endpoint: {e}")))?;
                if u as usize >= n || v as usize >= n {
                    return Err(parse_err(format!("edge {u}-{v} out of range")));
                }
                edges.push((u, v));
            }
            Some(other) => return Err(parse_err(format!("unknown record {other:?}"))),
            None => continue,
        }
    }
    if let Some(missing) = seen_nodes.iter().position(|&s| !s) {
        if d > 0 {
            return Err(parse_err(format!("node {missing} has no attribute line")));
        }
    }
    let mut g = AttributedGraph::from_edges(x, &edges);
    if let Some(labels) = labels {
        g.set_labels(labels);
    }
    Ok(g)
}

/// Convenience: write to a file path.
pub fn save_graph(
    g: &AttributedGraph,
    path: impl AsRef<std::path::Path>,
) -> Result<(), GraphIoError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_graph(g, &mut file)
}

/// Convenience: read from a file path.
pub fn load_graph(path: impl AsRef<std::path::Path>) -> Result<AttributedGraph, GraphIoError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_graph(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn sample_graph() -> AttributedGraph {
        let mut rng = seeded_rng(4);
        let mut g = crate::community_graph(
            &crate::CommunityGraphConfig::homogeneous(40, 4, 3.0, 0.9),
            &mut rng,
        );
        let x = crate::gaussian_mixture_attributes(g.labels().unwrap(), 5, 2.0, 0.5, &mut rng);
        g.set_attrs(x);
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.labels(), g.labels());
        assert!(g2.attrs().approx_eq(g.attrs(), 1e-5));
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(g2.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        let cases: [&str; 5] = [
            "",
            "# wrong header\nnodes 1 attrs 1\n",
            "# vgod-graph v1\nnodes x attrs 1\n",
            "# vgod-graph v1\nnodes 2 attrs 1\nnode 0 1.0\nnode 1 2.0\nedge 0 5\n",
            "# vgod-graph v1\nnodes 2 attrs 2\nnode 0 1.0\nnode 1 2.0 3.0\n",
        ];
        for case in cases {
            assert!(
                read_graph(&mut case.as_bytes()).is_err(),
                "should reject: {case:?}"
            );
        }
    }

    #[test]
    fn missing_attribute_line_is_detected() {
        let text = "# vgod-graph v1\nnodes 2 attrs 1\nnode 0 1.0\n";
        assert!(read_graph(&mut text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let path = std::env::temp_dir().join("vgod_graph_io_test.txt");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        let _ = std::fs::remove_file(&path);
    }
}
