//! Property tests for the contiguous-range partitioner: ranges tile the
//! node space exactly once, halo manifests list exactly the cross-shard
//! ghosts, and every shard slice reproduces its closure bit-for-bit.
//!
//! (The companion acceptance property — merged shard scores byte-identical
//! to single-process output for all 13 detectors — lives in
//! `crates/serve/tests/sharded_scoring.rs`, next to the detectors.)

use std::path::PathBuf;

use proptest::prelude::*;
use vgod_graph::{
    partition_store, seeded_rng, shard_ranges, AttributedGraph, GraphStore, HaloManifest,
    PartitionConfig, PartitionManifest, PartitionMode, SamplingConfig, ShardStore, StoreOptions,
};

use rand::Rng;
use vgod_tensor::Matrix;

fn random_graph(n: usize, avg_deg: usize, attrs: usize, seed: u64) -> AttributedGraph {
    let mut rng = seeded_rng(seed);
    let mut edges = Vec::new();
    for _ in 0..n * avg_deg / 2 {
        let u: u32 = rng.gen_range(0..n as u32);
        let v: u32 = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    let data: Vec<f32> = (0..n * attrs)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let x = Matrix::from_vec(n, attrs, data).unwrap();
    AttributedGraph::from_edges(x, &edges)
}

/// Ghosts of `[lo, hi)` by an independent level-by-level BFS (written
/// differently from the partitioner's visited-flag walk on purpose).
fn bfs_ghosts(g: &AttributedGraph, lo: u32, hi: u32, hops: usize) -> Vec<u32> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut frontier: Vec<u32> = (lo..hi).collect();
    for &u in &frontier {
        dist[u as usize] = 0;
    }
    for level in 1..=hops {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    (0..g.num_nodes() as u32)
        .filter(|&u| !(lo..hi).contains(&u) && dist[u as usize] != usize::MAX)
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("vgod_partition_props_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ranges tile `[0, n)` exactly once: contiguous, in order, and
    /// batch-aligned at every interior boundary.
    #[test]
    fn ranges_cover_every_node_exactly_once(
        n in 1usize..30_000,
        shards in 1usize..9,
        batch in 1usize..2048,
    ) {
        let ranges = shard_ranges(n, shards, batch);
        prop_assert_eq!(ranges.len(), shards);
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges.last().unwrap().1 as usize, n);
        let mut covered = 0usize;
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            prop_assert!(lo <= hi, "range {i} is inverted");
            if i > 0 {
                prop_assert_eq!(ranges[i - 1].1, lo, "gap/overlap before range {i}");
            }
            if (hi as usize) < n {
                prop_assert_eq!(hi as usize % batch, 0, "interior boundary off batch grid");
            }
            covered += (hi - lo) as usize;
        }
        prop_assert_eq!(covered, n);
    }
}

proptest! {
    // Each case writes a full partition to disk, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A sliced partition's halo manifests list exactly the cross-shard
    /// edges and BFS ghosts, and every slice reproduces its closure's
    /// adjacency and attribute rows bit-for-bit.
    #[test]
    fn sliced_partitions_carry_exact_halos_and_faithful_slices(
        n in 60usize..240,
        avg_deg in 2usize..7,
        graph_seed in 0u64..1000,
        shards in 2usize..5,
        batch in 16usize..64,
        hops in 1usize..4,
    ) {
        let g = random_graph(n, avg_deg, 6, graph_seed);
        let sampling = SamplingConfig {
            full_graph_threshold: 1, // force Sliced
            batch_size: batch,
            hops,
            ..SamplingConfig::default()
        };
        let dir = scratch_dir("sliced");
        let manifest = partition_store(&g, &dir, &PartitionConfig::new(shards, sampling)).unwrap();
        prop_assert_eq!(manifest.mode, PartitionMode::Sliced);
        prop_assert_eq!(manifest.num_nodes, n);
        prop_assert_eq!(PartitionManifest::load(&dir).unwrap(), manifest.clone());

        let mut covered = 0usize;
        let mut nbrs = Vec::new();
        let mut row = vec![0.0f32; g.num_attrs()];
        for meta in &manifest.shards {
            covered += (meta.hi - meta.lo) as usize;

            // Exact cross-shard edge count, by brute force.
            let cross: u64 = (meta.lo..meta.hi)
                .map(|u| {
                    g.neighbors(u)
                        .iter()
                        .filter(|&&v| !(meta.lo..meta.hi).contains(&v))
                        .count() as u64
                })
                .sum();
            prop_assert_eq!(meta.cross_edges, cross, "shard {} cross edges", meta.index);

            // The halo file lists exactly the hops-hop BFS ghosts, sorted.
            let halo = HaloManifest::load(&PartitionManifest::halo_path(&dir, meta.index)).unwrap();
            let expect = bfs_ghosts(&g, meta.lo, meta.hi, hops);
            prop_assert_eq!(&halo.ghosts, &expect, "shard {} ghosts", meta.index);
            prop_assert_eq!(meta.ghosts, expect.len() as u64);
            prop_assert_eq!(meta.closure, (meta.hi - meta.lo) as u64 + meta.ghosts);
            prop_assert_eq!(halo.cross_edges, meta.cross_edges);
            prop_assert_eq!(halo.halo_bytes, meta.halo_bytes);

            // The slice serves its whole closure bit-for-bit in global ids.
            let slice = ShardStore::open(&dir, meta.index, StoreOptions::new(8 << 20)).unwrap();
            prop_assert_eq!(slice.num_nodes(), n);
            let closure: Vec<u32> = (meta.lo..meta.hi).chain(expect.iter().copied()).collect();
            for u in closure {
                slice.neighbors_into(u, &mut nbrs);
                prop_assert_eq!(&nbrs[..], g.neighbors(u), "shard {} node {u} adjacency", meta.index);
                prop_assert_eq!(slice.degree(u), g.neighbors(u).len());
                slice.attr_row_into(u, &mut row);
                let want: Vec<u32> = g.attrs().row(u as usize).iter().map(|v| v.to_bits()).collect();
                let got: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "shard {} node {u} attrs", meta.index);
            }
        }
        prop_assert_eq!(covered, n, "shards must own every node exactly once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// At or below the threshold the partition degrades to one shared full
    /// copy with no ghosts and no halo traffic.
    #[test]
    fn full_copy_partitions_have_no_ghosts(
        n in 40usize..160,
        graph_seed in 0u64..1000,
        shards in 1usize..5,
    ) {
        let g = random_graph(n, 4, 5, graph_seed);
        let sampling = SamplingConfig {
            full_graph_threshold: 100_000,
            ..SamplingConfig::default()
        };
        let dir = scratch_dir("full");
        let manifest = partition_store(&g, &dir, &PartitionConfig::new(shards, sampling)).unwrap();
        prop_assert_eq!(manifest.mode, PartitionMode::FullCopy);
        prop_assert_eq!(manifest.total_ghosts(), 0);
        prop_assert_eq!(manifest.total_halo_bytes(), 0);
        let covered: usize = manifest.shards.iter().map(|m| (m.hi - m.lo) as usize).sum();
        prop_assert_eq!(covered, n);
        for meta in &manifest.shards {
            let slice = ShardStore::open(&dir, meta.index, StoreOptions::new(8 << 20)).unwrap();
            prop_assert_eq!(slice.num_nodes(), n);
            prop_assert_eq!(slice.num_edges(), g.num_edges());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
