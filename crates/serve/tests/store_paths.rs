//! Every detector the workspace ships scores through the [`GraphStore`]
//! path — in memory and against a demand-paged on-disk store — and stays
//! bit-identical to its plain full-graph output below the sampling
//! threshold.

use vgod::{Arm, Vbm, Vgod, VgodConfig};
use vgod_baselines::{
    AnomalyDae, Cola, Conad, DeepConfig, Deg, DegNorm, Dominant, Done, L2Norm, Radar,
    RandomDetector,
};
use vgod_eval::OutlierDetector;
use vgod_graph::{
    community_graph, gaussian_mixture_attributes, seeded_rng, AttributedGraph,
    CommunityGraphConfig, GraphStore, OocStore, SamplingConfig,
};
use vgod_serve::AnyDetector;

fn test_graph(n: usize, seed: u64) -> AttributedGraph {
    let mut rng = seeded_rng(seed);
    let mut g = community_graph(&CommunityGraphConfig::homogeneous(n, 4, 5.0, 0.9), &mut rng);
    let x = gaussian_mixture_attributes(g.labels().unwrap(), 8, 3.0, 0.5, &mut rng);
    g.set_attrs(x);
    g
}

/// One fresh, cheap-to-train detector of every kind the CLI exposes.
fn all_detectors() -> Vec<AnyDetector> {
    let deep = DeepConfig {
        epochs: 2,
        hidden: 4,
        ..DeepConfig::fast()
    };
    let mut vcfg = VgodConfig::default();
    vcfg.vbm.hidden_dim = 8;
    vcfg.vbm.epochs = 2;
    vcfg.arm.hidden_dim = 8;
    vcfg.arm.epochs = 2;
    vec![
        AnyDetector::Vgod(Vgod::new(vcfg.clone())),
        AnyDetector::Vbm(Vbm::new(vcfg.vbm)),
        AnyDetector::Arm(Arm::new(vcfg.arm)),
        AnyDetector::Dominant(Dominant::new(deep.clone())),
        AnyDetector::AnomalyDae(AnomalyDae::new(deep.clone())),
        AnyDetector::Done(Done::new(deep.clone())),
        AnyDetector::Cola(Cola::new(deep.clone())),
        AnyDetector::Conad(Conad::new(deep.clone())),
        AnyDetector::Radar(Radar::new(deep.clone())),
        AnyDetector::DegNorm(DegNorm),
        AnyDetector::Deg(Deg),
        AnyDetector::L2Norm(L2Norm),
        AnyDetector::Random(RandomDetector::new(3)),
    ]
}

fn tmp_store(name: &str, g: &AttributedGraph) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("vgod_store_paths_{name}_{}", std::process::id()));
    OocStore::create_from_graph(g, &path, 64, 256).unwrap();
    path
}

#[test]
fn every_detector_scores_through_the_sampled_store_path() {
    let g = test_graph(240, 11);
    let path = tmp_store("sampled", &g);
    let store = OocStore::open(&path, 1 << 20).unwrap();
    // Threshold below n forces the sampled path for every detector.
    let cfg = SamplingConfig {
        full_graph_threshold: 50,
        batch_size: 96,
        fanout: 5,
        hops: 2,
        train_seeds: 160,
        seed: 4,
        ..SamplingConfig::default()
    };
    for mut det in all_detectors() {
        det.fit_store(&store, &cfg);
        let scores = det.score_store(&store, &cfg);
        assert_eq!(
            scores.combined.len(),
            g.num_nodes(),
            "{} must score every node",
            det.kind()
        );
        assert!(
            scores.combined.iter().all(|s| s.is_finite()),
            "{} produced non-finite scores",
            det.kind()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn below_threshold_store_scoring_is_bit_identical_for_every_detector() {
    let g = test_graph(150, 12);
    let path = tmp_store("exact", &g);
    let store = OocStore::open(&path, 1 << 20).unwrap();
    let cfg = SamplingConfig {
        full_graph_threshold: 10_000, // n is far below: fast path everywhere
        ..SamplingConfig::default()
    };
    for mut det in all_detectors() {
        det.fit_store(&store, &cfg);
        let via_store = det.score_store(&store, &cfg).combined;
        let direct = det.score(&g).combined;
        assert_eq!(
            via_store,
            direct,
            "{} store path must be bit-identical below the threshold",
            det.kind()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ooc_store_and_in_memory_store_sample_identically() {
    let g = test_graph(220, 13);
    let path = tmp_store("parity", &g);
    let ooc = OocStore::open(&path, 1 << 18).unwrap(); // small budget: force paging
    let cfg = SamplingConfig {
        full_graph_threshold: 40,
        batch_size: 80,
        fanout: 4,
        hops: 2,
        train_seeds: 120,
        seed: 8,
        ..SamplingConfig::default()
    };
    // The sampler sees the same topology/attributes through either backend,
    // so a deterministic detector must score identically from both.
    for mut det in [
        AnyDetector::Deg(Deg),
        AnyDetector::L2Norm(L2Norm),
        AnyDetector::DegNorm(DegNorm),
        AnyDetector::Vbm(Vbm::new({
            let mut c = VgodConfig::default().vbm;
            c.hidden_dim = 8;
            c.epochs = 2;
            c
        })),
    ] {
        let mem_store: &dyn GraphStore = &g;
        let mut det_mem = det.clone();
        det_mem.fit_store(mem_store, &cfg);
        det.fit_store(&ooc, &cfg);
        let from_mem = det_mem.score_store(mem_store, &cfg).combined;
        let from_ooc = det.score_store(&ooc, &cfg).combined;
        assert_eq!(from_mem, from_ooc, "{} backend parity", det.kind());
    }
    let _ = std::fs::remove_file(&path);
}

mod concurrency {
    use super::*;
    use proptest::prelude::*;

    fn sampled_cfg(n: usize, batch_size: usize, seed: u64) -> SamplingConfig {
        SamplingConfig {
            full_graph_threshold: n / 4, // always force the sampled path
            batch_size,
            fanout: 4,
            hops: 2,
            train_seeds: 120,
            seed,
            ..SamplingConfig::default()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Tentpole guarantee: the batch-parallel runner is bit-identical to
        /// the sequential loop at every thread count, for every detector —
        /// including the globally-recombined (Vgod, DegNorm) and
        /// refit-per-batch (Radar, AnomalyDae) families.
        #[test]
        fn parallel_scoring_is_bit_identical_across_thread_counts(
            n in 180usize..240,
            batch_size in 48usize..96,
            seed in 0u64..1_000,
        ) {
            let g = test_graph(n, seed ^ 0x9e37);
            let path = tmp_store(&format!("par_{seed}_{n}"), &g);
            let store = OocStore::open(&path, 1 << 18).unwrap();
            for mut det in all_detectors() {
                let cfg1 = sampled_cfg(n, batch_size, seed);
                det.fit_store(&store, &cfg1);
                let sequential = det
                    .score_store(&store, &SamplingConfig { ooc_threads: 1, ..cfg1 })
                    .combined;
                for threads in [2usize, 8] {
                    let parallel = det
                        .score_store(&store, &SamplingConfig { ooc_threads: threads, ..cfg1 })
                        .combined;
                    prop_assert_eq!(
                        &sequential,
                        &parallel,
                        "{} diverged at {} threads",
                        det.kind(),
                        threads
                    );
                }
            }
            let _ = std::fs::remove_file(&path);
        }

        /// Prefetch is an overlap optimisation, not a semantic one: scores
        /// must be bit-identical with it on or off, and under a no-eviction
        /// budget both runs leave exactly the same blocks resident (prefetch
        /// may only change *when* a block is admitted, never *which*). On a
        /// single-hardware-thread host the stage self-disables (no spare
        /// core to overlap into) and the property holds trivially.
        #[test]
        fn prefetch_changes_timing_not_results(
            n in 180usize..240,
            seed in 0u64..1_000,
        ) {
            let g = test_graph(n, seed ^ 0x51ed);
            let path = tmp_store(&format!("pf_{seed}_{n}"), &g);
            let cfg = SamplingConfig { ooc_threads: 2, ..sampled_cfg(n, 64, seed) };
            let mut resident = Vec::new();
            let mut scores = Vec::new();
            for prefetch in [false, true] {
                // Generous budget: nothing evicts, so the final cache
                // contents are exactly the set of blocks ever touched.
                let store = OocStore::open(&path, 8 << 20).unwrap();
                let mut det = AnyDetector::DegNorm(DegNorm);
                det.fit_store(&store, &cfg);
                let run_cfg = SamplingConfig { prefetch, ..cfg };
                scores.push(det.score_store(&store, &run_cfg).combined);
                let (mut edges, mut attrs) = store.resident_block_ids();
                edges.sort_unstable();
                attrs.sort_unstable();
                prop_assert_eq!(store.stats().evictions, 0, "budget must avoid eviction");
                resident.push((edges, attrs));
            }
            prop_assert_eq!(&scores[0], &scores[1], "prefetch changed scores");
            prop_assert_eq!(&resident[0], &resident[1], "prefetch changed cache contents");
            let _ = std::fs::remove_file(&path);
        }
    }
}
