//! The streaming correctness invariant, property-tested: for every
//! detector that declares a local receptive field, rescoring only the
//! dirty k-hop frontier after a randomized mutation batch and patching a
//! score cache must reproduce — bit for bit — a from-scratch full rescore
//! of the post-mutation graph. Runs the real trained models (VGOD, VBM,
//! ARM) alongside the stateless baselines, over batches that mix edge
//! churn, node appends, tombstones, and attribute rewrites.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::Rng;
use vgod::{Vbm, Vgod, VgodConfig};
use vgod_baselines::{Deg, DegNorm, L2Norm};
use vgod_eval::{apply_mutation_rescore, DeltaCapability, OutlierDetector, ScoreCache};
use vgod_graph::{
    community_graph, gaussian_mixture_attributes, seeded_rng, AttributedGraph,
    CommunityGraphConfig, FrozenGraph, GraphMutation, GraphStore, OverlayGraph,
};
use vgod_serve::AnyDetector;

fn base_graph() -> AttributedGraph {
    let mut rng = seeded_rng(17);
    let mut g = community_graph(&CommunityGraphConfig::homogeneous(60, 3, 4.0, 0.9), &mut rng);
    let x = gaussian_mixture_attributes(g.labels().unwrap(), 6, 3.0, 0.5, &mut rng);
    g.set_attrs(x);
    g
}

/// Every Local-capability detector the workspace ships, fitted once on the
/// base graph (trained weights are what the delta path applies to mutated
/// topology, exactly like a served checkpoint).
fn fitted_local_detectors() -> &'static Vec<AnyDetector> {
    static DETS: OnceLock<Vec<AnyDetector>> = OnceLock::new();
    DETS.get_or_init(|| {
        let g = base_graph();
        let mut vcfg = VgodConfig::default();
        vcfg.vbm.hidden_dim = 8;
        vcfg.vbm.epochs = 2;
        vcfg.arm.hidden_dim = 8;
        vcfg.arm.epochs = 2;
        let mut dets = vec![
            AnyDetector::Vgod(Vgod::new(vcfg.clone())),
            AnyDetector::Vbm(Vbm::new(vcfg.vbm)),
            AnyDetector::Arm(vgod::Arm::new(vcfg.arm)),
            AnyDetector::DegNorm(DegNorm),
            AnyDetector::Deg(Deg),
            AnyDetector::L2Norm(L2Norm),
        ];
        for d in &mut dets {
            assert!(
                matches!(d.delta_capability(), DeltaCapability::Local { .. }),
                "{}: expected a local delta capability",
                d.kind()
            );
            d.fit(&g);
        }
        dets
    })
}

fn random_op(n: u32, d: usize, label_hi: u32, rng: &mut impl Rng) -> GraphMutation {
    match rng.gen_range(0..9) {
        0..=3 => {
            let u = rng.gen_range(0..n);
            let v = (u + rng.gen_range(1..n)) % n;
            GraphMutation::AddEdge { u, v }
        }
        4 | 5 => GraphMutation::RemoveEdge {
            u: rng.gen_range(0..n),
            v: rng.gen_range(0..n),
        },
        6 => GraphMutation::SetAttrs {
            node: rng.gen_range(0..n),
            attrs: (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        },
        7 => GraphMutation::AddNode {
            attrs: (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            label: Some(rng.gen_range(0..=label_hi)),
        },
        _ => GraphMutation::RemoveNode {
            node: rng.gen_range(0..n),
        },
    }
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// After every applied batch, each detector's patched cache equals a
    /// full rescore of the mutated graph, bit for bit — combined scores
    /// and both raw channels.
    #[test]
    fn delta_rescore_is_bit_identical_to_full_rescore(
        seed in 0u64..1_000_000,
        batches in 1usize..4,
        ops_per_batch in 1usize..7,
    ) {
        let g0 = base_graph();
        let d = g0.num_attrs();
        let label_hi = g0.labels().unwrap().iter().copied().max().unwrap();
        let dets = fitted_local_detectors();

        let mut overlay = OverlayGraph::new(Arc::new(FrozenGraph::from_store(&g0)));
        let mut caches: Vec<ScoreCache> = dets
            .iter()
            .map(|det| {
                let DeltaCapability::Local { merge, .. } = det.delta_capability() else {
                    unreachable!("filtered to local detectors");
                };
                ScoreCache::new(det.score(&g0), merge)
            })
            .collect();

        let mut rng = seeded_rng(seed);
        for _ in 0..batches {
            let n = GraphStore::num_nodes(&overlay) as u32;
            let ops: Vec<GraphMutation> = (0..ops_per_batch)
                .map(|_| random_op(n, d, label_hi, &mut rng))
                .collect();
            let effect = overlay.apply_batch(&ops).unwrap();
            if effect.applied == 0 {
                continue;
            }
            let full_graph = overlay.materialize();
            for (det, cache) in dets.iter().zip(&mut caches) {
                let frontier = apply_mutation_rescore(det, &overlay, &effect.touched, cache);
                prop_assert!(frontier > 0, "{}: local detector must use the delta path", det.kind());
                let want = det.score(&full_graph);
                prop_assert_eq!(
                    bits(cache.combined()),
                    bits(&want.combined),
                    "{}: combined scores diverged after batch {:?}",
                    det.kind(),
                    ops
                );
                let got = cache.scores();
                prop_assert_eq!(
                    got.structural.as_deref().map(bits),
                    want.structural.as_deref().map(bits),
                    "{}: structural channel diverged",
                    det.kind()
                );
                prop_assert_eq!(
                    got.contextual.as_deref().map(bits),
                    want.contextual.as_deref().map(bits),
                    "{}: contextual channel diverged",
                    det.kind()
                );
            }
        }
    }
}
