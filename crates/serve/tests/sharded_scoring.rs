//! Sharded scoring must be byte-identical to single-process scoring: the
//! partition → per-shard `score_store_range` → `merge_range_scores`
//! pipeline for every detector the workspace ships, and the full
//! worker/coordinator HTTP path end to end (including dead-shard `503`s
//! and the coordinator's partition metrics).

use vgod::{Arm, Vbm, Vgod, VgodConfig};
use vgod_baselines::{
    AnomalyDae, Cola, Conad, DeepConfig, Deg, DegNorm, Dominant, Done, L2Norm, Radar,
    RandomDetector,
};
use vgod_eval::{merge_range_scores, OutlierDetector};
use vgod_graph::{
    community_graph, gaussian_mixture_attributes, partition_store, seeded_rng, AttributedGraph,
    CommunityGraphConfig, OocStore, PartitionConfig, PartitionManifest, PartitionMode,
    SamplingConfig, ShardStore, StoreOptions,
};
use vgod_serve::http;
use vgod_serve::json::Json;
use vgod_serve::{
    run_shard_worker, serve, serve_sharded, AnyDetector, OocServeConfig, ServeConfig, ShardSpec,
    WorkerConfig,
};

fn test_graph(n: usize, seed: u64) -> AttributedGraph {
    let mut rng = seeded_rng(seed);
    let mut g = community_graph(&CommunityGraphConfig::homogeneous(n, 4, 5.0, 0.9), &mut rng);
    let x = gaussian_mixture_attributes(g.labels().unwrap(), 8, 3.0, 0.5, &mut rng);
    g.set_attrs(x);
    g
}

/// One fresh, cheap-to-train detector of every kind the CLI exposes.
fn all_detectors() -> Vec<AnyDetector> {
    let deep = DeepConfig {
        epochs: 2,
        hidden: 4,
        ..DeepConfig::fast()
    };
    let mut vcfg = VgodConfig::default();
    vcfg.vbm.hidden_dim = 8;
    vcfg.vbm.epochs = 2;
    vcfg.arm.hidden_dim = 8;
    vcfg.arm.epochs = 2;
    vec![
        AnyDetector::Vgod(Vgod::new(vcfg.clone())),
        AnyDetector::Vbm(Vbm::new(vcfg.vbm)),
        AnyDetector::Arm(Arm::new(vcfg.arm)),
        AnyDetector::Dominant(Dominant::new(deep.clone())),
        AnyDetector::AnomalyDae(AnomalyDae::new(deep.clone())),
        AnyDetector::Done(Done::new(deep.clone())),
        AnyDetector::Cola(Cola::new(deep.clone())),
        AnyDetector::Conad(Conad::new(deep.clone())),
        AnyDetector::Radar(Radar::new(deep)),
        AnyDetector::DegNorm(DegNorm),
        AnyDetector::Deg(Deg),
        AnyDetector::L2Norm(L2Norm),
        AnyDetector::Random(RandomDetector::new(3)),
    ]
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vgod_sharded_{tag}_{}", std::process::id()))
}

fn make_store(tag: &str, g: &AttributedGraph) -> std::path::PathBuf {
    let path = tmp(&format!("{tag}.vgodstore"));
    OocStore::create_from_graph(g, &path, 64, 256).unwrap();
    path
}

/// Tentpole guarantee at the library level: for every detector, scoring
/// each shard's owned range on its own [`ShardStore`] slice and merging
/// reproduces the single-process `score_store` output bit for bit — at 1,
/// 2, and 4 shards (4 shards over 240 nodes leaves a trailing empty shard,
/// which must contribute nothing).
#[test]
fn sharded_range_scoring_is_bit_identical_for_every_detector() {
    let n = 240;
    let g = test_graph(n, 21);
    let store_path = make_store("lib", &g);
    let store = OocStore::open(&store_path, 1 << 20).unwrap();
    let cfg = SamplingConfig {
        full_graph_threshold: 50, // force the sampled / sliced path
        batch_size: 96,
        fanout: 5,
        hops: 2,
        train_seeds: 160,
        seed: 4,
        ..SamplingConfig::default()
    };

    // Partition once per shard count.
    let mut partitions = Vec::new();
    for shards in [1usize, 2, 4] {
        let dir = tmp(&format!("lib_parts_{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = partition_store(&store, &dir, &PartitionConfig::new(shards, cfg)).unwrap();
        assert_eq!(manifest.mode, PartitionMode::Sliced);
        let slices: Vec<ShardStore> = (0..shards)
            .map(|i| ShardStore::open(&dir, i, StoreOptions::new(1 << 20)).unwrap())
            .collect();
        partitions.push((dir, manifest, slices));
    }

    for mut det in all_detectors() {
        det.fit_store(&store, &cfg);
        let single = det.score_store(&store, &cfg);
        for (_, manifest, slices) in &partitions {
            let parts: Vec<_> = manifest
                .shards
                .iter()
                .zip(slices)
                .map(|(meta, slice)| det.score_store_range(slice, &cfg, meta.lo, meta.hi))
                .collect();
            let merged = merge_range_scores(n, parts);
            assert_eq!(
                merged.combined,
                single.combined,
                "{} diverged at {} shards",
                det.kind(),
                manifest.shards.len()
            );
        }
    }

    let _ = std::fs::remove_file(&store_path);
    for (dir, _, _) in partitions {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Below the sampling threshold the partitioner writes one shared full
/// copy; range scoring takes the materialised full-graph path and merging
/// must still reproduce the plain full-graph scores.
#[test]
fn full_copy_partitions_merge_bit_identically() {
    let n = 120;
    let g = test_graph(n, 22);
    let store_path = make_store("fullcopy", &g);
    let store = OocStore::open(&store_path, 1 << 20).unwrap();
    let cfg = SamplingConfig {
        full_graph_threshold: 10_000, // n is far below: full-copy mode
        ..SamplingConfig::default()
    };
    let dir = tmp("fullcopy_parts");
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = partition_store(&store, &dir, &PartitionConfig::new(2, cfg)).unwrap();
    assert_eq!(manifest.mode, PartitionMode::FullCopy);
    let slices: Vec<ShardStore> = (0..2)
        .map(|i| ShardStore::open(&dir, i, StoreOptions::new(1 << 20)).unwrap())
        .collect();
    for mut det in all_detectors() {
        det.fit_store(&store, &cfg);
        let single = det.score_store(&store, &cfg);
        let parts: Vec<_> = manifest
            .shards
            .iter()
            .zip(&slices)
            .map(|(meta, slice)| det.score_store_range(slice, &cfg, meta.lo, meta.hi))
            .collect();
        let merged = merge_range_scores(n, parts);
        assert_eq!(
            merged.combined,
            single.combined,
            "{} diverged in full-copy mode",
            det.kind()
        );
    }
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_dir_all(&dir);
}

struct E2eFixture {
    store_path: std::path::PathBuf,
    partition_dir: std::path::PathBuf,
    models_dir: std::path::PathBuf,
    manifest: PartitionManifest,
    cfg: SamplingConfig,
}

/// A sliced 2-shard partition plus fitted checkpoints covering the three
/// merge families: `deg` (streaming concat), `degnorm` (global mean-std
/// recombination), `vbm` (per-batch GNN concat). `spare` is registered but
/// never scored before the dead-shard probe, so its first scatter happens
/// after the kill.
fn e2e_fixture(tag: &str) -> E2eFixture {
    let g = test_graph(220, 31);
    let store_path = make_store(&format!("{tag}_e2e"), &g);
    let store = OocStore::open(&store_path, 1 << 20).unwrap();
    let cfg = SamplingConfig {
        full_graph_threshold: 50,
        batch_size: 96,
        fanout: 5,
        hops: 2,
        train_seeds: 160,
        seed: 4,
        ..SamplingConfig::default()
    };
    let partition_dir = tmp(&format!("{tag}_parts"));
    let _ = std::fs::remove_dir_all(&partition_dir);
    let manifest = partition_store(&store, &partition_dir, &PartitionConfig::new(2, cfg)).unwrap();
    assert_eq!(manifest.mode, PartitionMode::Sliced);

    let models_dir = tmp(&format!("{tag}_models"));
    let _ = std::fs::remove_dir_all(&models_dir);
    std::fs::create_dir_all(&models_dir).unwrap();
    let mut vbm = AnyDetector::Vbm(Vbm::new({
        let mut c = VgodConfig::default().vbm;
        c.hidden_dim = 8;
        c.epochs = 2;
        c
    }));
    vbm.fit_store(&store, &cfg);
    vbm.save_file(&models_dir.join("vbm.ckpt")).unwrap();
    for (name, det) in [
        ("deg", AnyDetector::Deg(Deg)),
        ("degnorm", AnyDetector::DegNorm(DegNorm)),
        ("spare", AnyDetector::L2Norm(L2Norm)),
    ] {
        det.save_file(&models_dir.join(format!("{name}.ckpt")))
            .unwrap();
    }
    E2eFixture {
        store_path,
        partition_dir,
        models_dir,
        manifest,
        cfg,
    }
}

impl Drop for E2eFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.store_path);
        let _ = std::fs::remove_dir_all(&self.partition_dir);
        let _ = std::fs::remove_dir_all(&self.models_dir);
    }
}

#[test]
fn sharded_serving_matches_single_process_and_survives_worker_death() {
    let fx = e2e_fixture("serve");

    // Single-process reference: the engine serving the same store under
    // the same sampling schedule.
    let reference = serve(
        &fx.models_dir,
        &fx.store_path,
        "127.0.0.1:0",
        ServeConfig {
            replicas: 1,
            out_of_core: Some(OocServeConfig {
                sampling: fx.cfg,
                ..OocServeConfig::new(1 << 20)
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Two in-process shard workers plus the coordinator front.
    let workers: Vec<_> = (0..2)
        .map(|shard| {
            run_shard_worker(&WorkerConfig {
                partition_dir: fx.partition_dir.clone(),
                shard,
                models_dir: fx.models_dir.clone(),
                bind: "127.0.0.1:0".into(),
                budget: 1 << 20,
            })
            .unwrap()
        })
        .collect();
    let specs: Vec<ShardSpec> = workers
        .iter()
        .zip(&fx.manifest.shards)
        .map(|(w, meta)| ShardSpec {
            addr: w.addr(),
            meta: meta.clone(),
        })
        .collect();
    let sharded = serve_sharded(
        fx.manifest.clone(),
        specs,
        &fx.models_dir,
        "127.0.0.1:0",
        64,
    )
    .unwrap();

    // Byte-identical responses for every model, full graph and subsets.
    for model in ["deg", "degnorm", "vbm"] {
        let body = format!("{{\"model\":\"{model}\"}}");
        let (status_ref, body_ref) = http::post(reference.addr(), "/score", &body).unwrap();
        let (status_sh, body_sh) = http::post(sharded.addr(), "/score", &body).unwrap();
        assert_eq!((status_ref, status_sh), (200, 200), "{model}: {body_sh}");
        assert_eq!(body_ref, body_sh, "{model} full-graph response diverged");

        let subset = format!("{{\"model\":\"{model}\",\"nodes\":[0,7,219]}}");
        let (_, subset_ref) = http::post(reference.addr(), "/score", &subset).unwrap();
        let (_, subset_sh) = http::post(sharded.addr(), "/score", &subset).unwrap();
        assert_eq!(subset_ref, subset_sh, "{model} subset response diverged");
    }

    // Engine-compatible error mapping through the coordinator.
    let (status, _) = http::post(sharded.addr(), "/score", r#"{"model":"nope"}"#).unwrap();
    assert_eq!(status, 404);
    let (status, _) =
        http::post(sharded.addr(), "/score", r#"{"model":"deg","version":9}"#).unwrap();
    assert_eq!(status, 409);
    let (status, _) =
        http::post(sharded.addr(), "/score", r#"{"model":"deg","nodes":[999]}"#).unwrap();
    assert_eq!(status, 400);

    // /models and /metrics carry the sharded catalogue and partition stats.
    let (_, models_body) = http::get(sharded.addr(), "/models").unwrap();
    let models = Json::parse(&models_body).unwrap();
    assert_eq!(models.get("graph_nodes").unwrap().as_u64(), Some(220));
    assert_eq!(models.get("models").unwrap().as_arr().unwrap().len(), 4);
    let (_, metrics_body) = http::get(sharded.addr(), "/metrics").unwrap();
    let metrics = Json::parse(&metrics_body).unwrap();
    let partition = metrics.get("partition").unwrap();
    assert_eq!(partition.get("shards").unwrap().as_u64(), Some(2));
    assert!(partition.get("halo_bytes").unwrap().as_u64().unwrap() > 0);
    let shard_rows = metrics.get("shards").unwrap().as_arr().unwrap();
    assert_eq!(shard_rows.len(), 2);
    for row in shard_rows {
        assert!(row.get("requests").unwrap().as_u64().unwrap() >= 1);
        assert!(row.get("bytes_rx").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("cross_edges").unwrap().as_u64().is_some());
    }

    // Kill shard 1. A model that was never scattered before now fails with
    // a machine-readable shard_down 503; an already-merged (cached) model
    // keeps answering.
    workers[1].shutdown();
    workers[1].join();
    let (status, body) = http::post(sharded.addr(), "/score", r#"{"model":"spare"}"#).unwrap();
    assert_eq!(status, 503, "{body}");
    let err = Json::parse(&body).unwrap();
    assert_eq!(err.get("error").unwrap().as_str(), Some("shard_down"));
    assert_eq!(err.get("shard").unwrap().as_u64(), Some(1));
    assert!(err.get("cause").unwrap().as_str().is_some());
    let (status, _) = http::post(sharded.addr(), "/score", r#"{"model":"deg"}"#).unwrap();
    assert_eq!(status, 200, "cached models must survive a dead shard");

    let (status, _) = http::post(sharded.addr(), "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    sharded.join();
    reference.shutdown();
    reference.join();
}
