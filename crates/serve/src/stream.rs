//! Streaming serving: online graph mutations with k-hop delta rescoring.
//!
//! The streaming backend replaces the replicated [`Engine`](crate::Engine)
//! with a single mutation worker that owns the deployment graph as an
//! [`OverlayGraph`] — an immutable packed base ([`FrozenGraph`]) plus a
//! versioned mutable overlay — and a per-model [`ScoreCache`] of
//! full-length score channels:
//!
//! ```text
//!   POST /graph/update ──▶ bounded queue ──▶ mutation worker
//!                                             │ apply batch → touched set
//!                                             │ per model:
//!                                             │   Local{k}:  frontier = B_k(touched)
//!                                             │              closure rescore, patch cache
//!                                             │   Full:      full pass on mutated graph
//!                                             │   Refit:     fit + full pass
//!                                             ▼
//!   POST /score ◀──────── published Arc<StreamSnapshot> (atomic swap)
//!
//!   overlay > threshold ──▶ compactor thread: fold overlay into a fresh
//!                           FrozenGraph base, worker adopts it
//! ```
//!
//! `/score` never touches a detector: it answers from the last published
//! snapshot, so reads are wait-free with respect to mutations and a batch
//! mid-rescore keeps serving the pre-batch scores (bounded staleness,
//! reported in `/metrics`). For every detector declaring
//! [`DeltaCapability::Local`], the patched cache is byte-identical to a
//! from-scratch rescore of the mutated graph — the invariant the
//! `stream-smoke` CI job and the proptest suite enforce end to end.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::Instant;

use vgod_eval::{
    dirty_frontier, rescore_frontier, DeltaCapability, OutlierDetector, ScoreCache, ScoreMerge,
};
use vgod_graph::{load_graph, AttributedGraph, FrozenGraph, GraphMutation, GraphStore, OverlayGraph};

use crate::engine::{ReplyFn, ScoreError, ScoreReply, SubmitError};
use crate::json::{escape, Json};
use crate::metrics::Metrics;
use crate::registry::Registry;
use crate::{AnyDetector, ModelInfo};

/// Frontier-size histogram bucket upper bounds (inclusive); the last
/// bucket is unbounded.
pub const FRONTIER_BUCKETS: [usize; 8] = [1, 4, 16, 64, 256, 1024, 4096, usize::MAX];

const LATENCY_RING: usize = 4096;

/// Streaming knobs (`vgod serve --streaming`).
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Overlay size (bytes, estimated) above which the worker hands the
    /// overlay to the compactor thread to fold into a fresh base.
    pub compact_bytes: usize,
    /// Bound on queued-but-unapplied mutation batches; a full queue sheds
    /// `POST /graph/update` with `503`.
    pub queue_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            compact_bytes: 4 << 20,
            queue_capacity: 256,
        }
    }
}

/// Reply callback for a queued `/graph/update`: receives the HTTP status
/// and body once the batch is applied (or rejected).
pub(crate) type UpdateReplyFn = Box<dyn FnOnce(u16, String) + Send>;

/// What the serving side reads: one immutable view of every model's
/// current scores on one graph version. Published by pointer swap after
/// every applied batch.
struct StreamSnapshot {
    graph_version: u64,
    num_nodes: usize,
    models: BTreeMap<String, PublishedModel>,
}

struct PublishedModel {
    version: u64,
    kind: String,
    scores: Arc<Vec<f32>>,
}

/// Counters and gauges for the `"stream"` section of `/metrics`.
#[derive(Default)]
struct StreamMetrics {
    batches: AtomicU64,
    ops: AtomicU64,
    update_errors: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicU64,
    overlay_bytes: AtomicU64,
    overlay_rows: AtomicU64,
    compactions: AtomicU64,
    delta_nodes: AtomicU64,
    full_passes: AtomicU64,
    refits: AtomicU64,
    frontier_hist: [AtomicU64; FRONTIER_BUCKETS.len()],
    /// Ring of ingest→published latencies (µs) for update percentiles.
    update_latency_us: Mutex<Vec<u64>>,
    latency_next: AtomicU64,
    /// When the current snapshot was published (staleness gauge).
    last_publish: Mutex<Option<Instant>>,
}

impl StreamMetrics {
    fn record_frontier(&self, size: usize) {
        let idx = FRONTIER_BUCKETS
            .iter()
            .position(|&cap| size <= cap)
            .unwrap_or(FRONTIER_BUCKETS.len() - 1);
        self.frontier_hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn record_update_latency(&self, us: u64) {
        let mut ring = self.update_latency_us.lock().unwrap();
        if ring.len() < LATENCY_RING {
            ring.push(us);
        } else {
            let at = self.latency_next.fetch_add(1, Ordering::Relaxed) as usize % LATENCY_RING;
            ring[at] = us;
        }
    }
}

enum Job {
    Update {
        ops: Vec<GraphMutation>,
        received: Instant,
        reply: UpdateReplyFn,
    },
    Shutdown,
}

/// One loaded model inside the mutation worker.
struct StreamModel {
    name: String,
    kind: String,
    version: u64,
    detector: AnyDetector,
    capability: DeltaCapability,
    cache: ScoreCache,
}

struct Shared {
    published: RwLock<Arc<StreamSnapshot>>,
    metrics: Arc<Metrics>,
    stream: StreamMetrics,
    shutting_down: AtomicBool,
    compact_bytes: usize,
}

/// The streaming scoring backend: one mutation worker, one compactor, and
/// an atomically published score snapshot the HTTP front serves from.
pub struct StreamEngine {
    shared: Arc<Shared>,
    tx: mpsc::SyncSender<Job>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    compactor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StreamEngine {
    /// Load every checkpoint under `models_dir` and the graph at
    /// `graph_path`, run one full scoring pass per model (so the first
    /// served scores are byte-identical to offline `vgod detect` on the
    /// startup graph), and start the mutation worker + compactor threads.
    ///
    /// Checkpoints never hot-reload in streaming mode (models stay at
    /// version 1) — the version axis is carried by the *graph* instead.
    pub fn start(
        models_dir: &Path,
        graph_path: &Path,
        cfg: StreamConfig,
        metrics: Arc<Metrics>,
    ) -> Result<StreamEngine, String> {
        let registry = Registry::open(models_dir)?;
        if registry.is_empty() {
            return Err(format!("no checkpoints under {}", models_dir.display()));
        }
        let g = load_graph(graph_path.display().to_string()).map_err(|e| e.to_string())?;
        let base = Arc::new(FrozenGraph::from_store(&g));
        let overlay = OverlayGraph::new(Arc::clone(&base));

        let mut models = Vec::new();
        for info in registry.infos() {
            let (detector, version) = registry.get(&info.name, None).map_err(|e| e.to_string())?;
            let detector = detector.clone();
            let capability = detector.delta_capability();
            let merge = match capability {
                DeltaCapability::Local { merge, .. } => merge,
                _ => ScoreMerge::Concat,
            };
            let cache = ScoreCache::new(detector.score(&g), merge);
            models.push(StreamModel {
                name: info.name.clone(),
                kind: info.kind.clone(),
                version,
                detector,
                capability,
                cache,
            });
        }

        metrics.init_replicas(1);
        let shared = Arc::new(Shared {
            published: RwLock::new(Arc::new(publish(&overlay, &models))),
            metrics,
            stream: StreamMetrics::default(),
            shutting_down: AtomicBool::new(false),
            compact_bytes: cfg.compact_bytes,
        });
        *shared.stream.last_publish.lock().unwrap() = Some(Instant::now());
        shared
            .stream
            .overlay_bytes
            .store(overlay.overlay_bytes() as u64, Ordering::Relaxed);

        // Worker ⇄ compactor: the worker ships (base, delta) when the
        // overlay outgrows the threshold; the compactor folds and returns
        // the fresh base with the delta's high-water version.
        let (compact_tx, compact_rx) = mpsc::channel::<(Arc<FrozenGraph>, vgod_graph::OverlayDelta)>();
        let (adopted_tx, adopted_rx) = mpsc::channel::<(Arc<FrozenGraph>, u64)>();
        let compactor = std::thread::Builder::new()
            .name("vgod-stream-compact".into())
            .spawn(move || {
                while let Ok((base, delta)) = compact_rx.recv() {
                    let upto = delta.version;
                    let folded = Arc::new(FrozenGraph::compact(&base, &delta));
                    if adopted_tx.send((folded, upto)).is_err() {
                        return;
                    }
                }
            })
            .map_err(|e| format!("spawning compactor: {e}"))?;

        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("vgod-stream-worker".into())
            .spawn(move || worker_loop(worker_shared, overlay, models, rx, compact_tx, adopted_rx))
            .map_err(|e| format!("spawning mutation worker: {e}"))?;

        Ok(StreamEngine {
            shared,
            tx,
            worker: Mutex::new(Some(worker)),
            compactor: Mutex::new(Some(compactor)),
        })
    }

    /// Queue a mutation batch; `reply` fires with the HTTP response once
    /// the batch is applied and the rescored snapshot is published.
    pub(crate) fn try_submit_update(
        &self,
        ops: Vec<GraphMutation>,
        reply: UpdateReplyFn,
    ) -> Result<(), SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let job = Job::Update {
            ops,
            received: Instant::now(),
            reply,
        };
        // Count the job before it can be dequeued: incrementing after a
        // successful try_send races the worker's decrement, wrapping the
        // gauge to u64::MAX.
        self.shared.stream.queue_depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(_)) => {
                self.shared.stream.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.shared.stream.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                self.shared.stream.queue_depth.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// `/score` against the published snapshot: wait-free row selection,
    /// answered inline (no replica queue).
    pub(crate) fn try_submit_with(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
        reply: ReplyFn,
    ) -> Result<(), SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let start = Instant::now();
        let result = self.score_from_snapshot(model, version, nodes);
        let metrics = &self.shared.metrics;
        metrics.record_request();
        if result.is_err() {
            metrics.record_error();
        }
        metrics.record_batch(1);
        metrics.record_latency_us(start.elapsed().as_micros() as u64);
        reply(result);
        Ok(())
    }

    /// Blocking-front variant of [`StreamEngine::try_submit_with`].
    pub(crate) fn try_submit(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Result<mpsc::Receiver<Result<ScoreReply, ScoreError>>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.try_submit_with(
            model,
            version,
            nodes,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        )?;
        Ok(rx)
    }

    fn score_from_snapshot(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Result<ScoreReply, ScoreError> {
        let snapshot = Arc::clone(&self.shared.published.read().unwrap());
        let entry = snapshot.models.get(&model).ok_or_else(|| {
            ScoreError::Lookup(crate::registry::LookupError::UnknownModel(model.clone()))
        })?;
        if let Some(requested) = version {
            if requested != entry.version {
                return Err(ScoreError::Lookup(
                    crate::registry::LookupError::VersionMismatch {
                        name: model,
                        requested,
                        loaded: entry.version,
                    },
                ));
            }
        }
        let scores = match &nodes {
            // Whole-graph reads share the published vector: the hot read
            // path stays allocation-free.
            None => Arc::clone(&entry.scores),
            Some(ids) => {
                if let Some(&bad) = ids.iter().find(|&&u| u as usize >= snapshot.num_nodes) {
                    return Err(ScoreError::NodeOutOfRange {
                        node: bad,
                        num_nodes: snapshot.num_nodes,
                    });
                }
                Arc::new(ids.iter().map(|&u| entry.scores[u as usize]).collect::<Vec<f32>>())
            }
        };
        Ok(ScoreReply {
            model,
            version: entry.version,
            nodes,
            scores,
        })
    }

    pub(crate) fn models(&self) -> Vec<ModelInfo> {
        let snapshot = self.shared.published.read().unwrap();
        snapshot
            .models
            .iter()
            .map(|(name, m)| ModelInfo {
                name: name.clone(),
                version: m.version,
                kind: m.kind.clone(),
            })
            .collect()
    }

    pub(crate) fn num_nodes(&self) -> usize {
        self.shared.published.read().unwrap().num_nodes
    }

    pub(crate) fn replicas(&self) -> usize {
        1
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The base counters with a `"stream"` section spliced in.
    pub(crate) fn metrics_json(&self) -> String {
        let base = self.shared.metrics.snapshot().render_json();
        let stream = self.render_stream_section();
        format!("{},\"stream\":{}}}", &base[..base.len() - 1], stream)
    }

    fn render_stream_section(&self) -> String {
        let s = &self.shared.stream;
        let snapshot = self.shared.published.read().unwrap();
        let hist: Vec<String> = FRONTIER_BUCKETS
            .iter()
            .zip(&s.frontier_hist)
            .map(|(&cap, count)| {
                let le = if cap == usize::MAX {
                    "\"inf\"".to_string()
                } else {
                    cap.to_string()
                };
                format!(
                    "{{\"le\":{le},\"count\":{}}}",
                    count.load(Ordering::Relaxed)
                )
            })
            .collect();
        let mut lat = s.update_latency_us.lock().unwrap().clone();
        lat.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
                lat[idx.min(lat.len() - 1)]
            }
        };
        let staleness_us = s
            .last_publish
            .lock()
            .unwrap()
            .map(|at| at.elapsed().as_micros() as u64)
            .unwrap_or(0);
        format!(
            "{{\"graph_version\":{},\"num_nodes\":{},\
             \"updates\":{{\"batches\":{},\"ops\":{},\"errors\":{},\"rejected\":{},\"queue_depth\":{}}},\
             \"overlay\":{{\"bytes\":{},\"rows\":{},\"compactions\":{},\"compact_threshold\":{}}},\
             \"rescore\":{{\"delta_nodes\":{},\"full_passes\":{},\"refits\":{}}},\
             \"frontier_hist\":[{}],\
             \"update_latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"staleness_us\":{}}}",
            snapshot.graph_version,
            snapshot.num_nodes,
            s.batches.load(Ordering::Relaxed),
            s.ops.load(Ordering::Relaxed),
            s.update_errors.load(Ordering::Relaxed),
            s.rejected.load(Ordering::Relaxed),
            s.queue_depth.load(Ordering::Relaxed),
            s.overlay_bytes.load(Ordering::Relaxed),
            s.overlay_rows.load(Ordering::Relaxed),
            s.compactions.load(Ordering::Relaxed),
            self.shared.compact_bytes,
            s.delta_nodes.load(Ordering::Relaxed),
            s.full_passes.load(Ordering::Relaxed),
            s.refits.load(Ordering::Relaxed),
            hist.join(","),
            pct(0.50),
            pct(0.95),
            pct(0.99),
            staleness_us,
        )
    }

    pub(crate) fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Queued updates drain in FIFO order before the sentinel lands.
        let _ = self.tx.send(Job::Shutdown);
    }

    pub(crate) fn join(&self) {
        if let Some(handle) = self.worker.lock().unwrap().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.compactor.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StreamEngine {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn publish(overlay: &OverlayGraph, models: &[StreamModel]) -> StreamSnapshot {
    StreamSnapshot {
        graph_version: overlay.version(),
        num_nodes: overlay.num_nodes(),
        models: models
            .iter()
            .map(|m| {
                (
                    m.name.clone(),
                    PublishedModel {
                        version: m.version,
                        kind: m.kind.clone(),
                        scores: Arc::new(m.cache.combined().to_vec()),
                    },
                )
            })
            .collect(),
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    mut overlay: OverlayGraph,
    mut models: Vec<StreamModel>,
    rx: mpsc::Receiver<Job>,
    compact_tx: mpsc::Sender<(Arc<FrozenGraph>, vgod_graph::OverlayDelta)>,
    adopted_rx: mpsc::Receiver<(Arc<FrozenGraph>, u64)>,
) {
    let mut compaction_in_flight = false;
    while let Ok(job) = rx.recv() {
        // Fold any finished compaction in before touching the overlay.
        while let Ok((base, upto)) = adopted_rx.try_recv() {
            overlay.adopt_base(base, upto);
            compaction_in_flight = false;
            shared.stream.compactions.fetch_add(1, Ordering::Relaxed);
        }
        let (ops, received, reply) = match job {
            Job::Update {
                ops,
                received,
                reply,
            } => (ops, received, reply),
            Job::Shutdown => {
                // Answer updates that raced in behind the sentinel so
                // their connections get a response instead of hanging
                // (the epoll front only completes on an explicit reply).
                while let Ok(job) = rx.try_recv() {
                    if let Job::Update { reply, .. } = job {
                        shared.stream.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        reply(503, "{\"error\":\"shutting down\"}".to_string());
                    }
                }
                break;
            }
        };
        shared.stream.queue_depth.fetch_sub(1, Ordering::Relaxed);

        let effect = match overlay.apply_batch(&ops) {
            Ok(effect) => effect,
            Err(e) => {
                // apply_batch validates the whole batch before touching
                // the overlay, so a rejected batch left the graph — and
                // therefore the published scores — unchanged.
                shared.stream.update_errors.fetch_add(1, Ordering::Relaxed);
                reply(400, format!("{{\"error\":\"{}\"}}", escape(&e)));
                continue;
            }
        };

        let mut max_frontier = 0usize;
        if effect.applied > 0 {
            // Materialised mutated graph, built at most once per batch and
            // shared by every full-rescore/refit model.
            let mut full_graph: Option<AttributedGraph> = None;
            for model in &mut models {
                match model.capability {
                    DeltaCapability::Local { hops, .. } => {
                        model.cache.grow(overlay.num_nodes());
                        let frontier = dirty_frontier(&overlay, &effect.touched, hops);
                        let delta =
                            rescore_frontier(&model.detector, &overlay, &frontier, hops);
                        model.cache.patch(&frontier, &delta);
                        shared.stream.record_frontier(frontier.len());
                        shared
                            .stream
                            .delta_nodes
                            .fetch_add(frontier.len() as u64, Ordering::Relaxed);
                        max_frontier = max_frontier.max(frontier.len());
                    }
                    DeltaCapability::FullRescore => {
                        let g = full_graph.get_or_insert_with(|| overlay.materialize());
                        model.cache.replace(model.detector.score(g));
                        shared.stream.full_passes.fetch_add(1, Ordering::Relaxed);
                    }
                    DeltaCapability::Refit => {
                        let g = full_graph.get_or_insert_with(|| overlay.materialize());
                        model.detector.fit(g);
                        model.cache.replace(model.detector.score(g));
                        shared.stream.refits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            *shared.published.write().unwrap() = Arc::new(publish(&overlay, &models));
            *shared.stream.last_publish.lock().unwrap() = Some(Instant::now());
        }

        shared.stream.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .stream
            .ops
            .fetch_add(effect.applied as u64, Ordering::Relaxed);
        shared
            .stream
            .overlay_bytes
            .store(overlay.overlay_bytes() as u64, Ordering::Relaxed);
        shared
            .stream
            .overlay_rows
            .store(overlay.overlay_rows() as u64, Ordering::Relaxed);
        let elapsed_us = received.elapsed().as_micros() as u64;
        shared.stream.record_update_latency(elapsed_us);

        reply(
            200,
            format!(
                "{{\"applied\":{},\"version\":{},\"touched\":{},\"frontier\":{},\
                 \"overlay_bytes\":{},\"elapsed_us\":{}}}",
                effect.applied,
                effect.version,
                effect.touched.len(),
                max_frontier,
                overlay.overlay_bytes(),
                elapsed_us,
            ),
        );

        if !compaction_in_flight && overlay.overlay_bytes() > shared.compact_bytes {
            let base = Arc::clone(overlay.base());
            let delta = overlay.delta_snapshot();
            if compact_tx.send((base, delta)).is_ok() {
                compaction_in_flight = true;
            }
        }
    }
    // Dropping compact_tx stops the compactor thread.
}

/// Validate a `POST /graph/update` body into mutation ops, or the `400`
/// response describing what is wrong with it. Expected shape:
///
/// ```json
/// {"ops": [
///   {"op":"add_edge","u":0,"v":1},
///   {"op":"remove_edge","u":0,"v":1},
///   {"op":"add_node","attrs":[0.1,0.2],"label":3},
///   {"op":"remove_node","node":7},
///   {"op":"set_attrs","node":7,"attrs":[0.5,0.5]}
/// ]}
/// ```
pub(crate) fn parse_update_body(body: &[u8]) -> Result<Vec<GraphMutation>, (u16, String)> {
    let bad = |msg: &str| (400u16, format!("{{\"error\":\"{}\"}}", escape(msg)));
    let parsed = std::str::from_utf8(body)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
        .map_err(|e| bad(&format!("invalid JSON: {e}")))?;
    let Some(items) = parsed.get("ops").and_then(Json::as_arr) else {
        return Err(bad("missing \"ops\" array"));
    };
    let mut ops = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Some(op) = item.get("op").and_then(Json::as_str) else {
            return Err(bad(&format!("op {i}: missing \"op\" tag")));
        };
        let node_field = |key: &str| -> Result<u32, (u16, String)> {
            item.get(key)
                .and_then(Json::as_u64)
                .filter(|&u| u <= u32::MAX as u64)
                .map(|u| u as u32)
                .ok_or_else(|| bad(&format!("op {i}: missing or invalid \"{key}\"")))
        };
        let attrs_field = || -> Result<Vec<f32>, (u16, String)> {
            let Some(values) = item.get("attrs").and_then(Json::as_arr) else {
                return Err(bad(&format!("op {i}: missing \"attrs\" array")));
            };
            values
                .iter()
                .map(|v| v.as_f64().map(|f| f as f32))
                .collect::<Option<Vec<f32>>>()
                .ok_or_else(|| bad(&format!("op {i}: \"attrs\" must be numbers")))
        };
        ops.push(match op {
            "add_edge" => GraphMutation::AddEdge {
                u: node_field("u")?,
                v: node_field("v")?,
            },
            "remove_edge" => GraphMutation::RemoveEdge {
                u: node_field("u")?,
                v: node_field("v")?,
            },
            "add_node" => GraphMutation::AddNode {
                attrs: attrs_field()?,
                label: match item.get("label") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .filter(|&u| u <= u32::MAX as u64)
                            .map(|u| u as u32)
                            .ok_or_else(|| bad(&format!("op {i}: invalid \"label\"")))?,
                    ),
                },
            },
            "remove_node" => GraphMutation::RemoveNode {
                node: node_field("node")?,
            },
            "set_attrs" => GraphMutation::SetAttrs {
                node: node_field("node")?,
                attrs: attrs_field()?,
            },
            other => return Err(bad(&format!("op {i}: unknown op {other:?}"))),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use vgod_baselines::{Deg, DegNorm, L2Norm};
    use vgod_graph::{save_graph, seeded_rng};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vgod_stream_{tag}_{}", std::process::id()))
    }

    fn fixture(tag: &str) -> (PathBuf, PathBuf, AttributedGraph) {
        let mut rng = seeded_rng(33);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(90, 3, 4.0, 0.9),
            &mut rng,
        );
        let x = vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 4, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        let dir = tmp(&format!("{tag}_models"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        AnyDetector::Deg(Deg).save_file(&dir.join("deg.ckpt")).unwrap();
        AnyDetector::L2Norm(L2Norm)
            .save_file(&dir.join("l2norm.ckpt"))
            .unwrap();
        AnyDetector::DegNorm(DegNorm)
            .save_file(&dir.join("degnorm.ckpt"))
            .unwrap();
        let graph_path = tmp(&format!("{tag}_graph.txt"));
        save_graph(&g, graph_path.display().to_string()).unwrap();
        (dir, graph_path, g)
    }

    fn apply(engine: &StreamEngine, ops: Vec<GraphMutation>) -> (u16, String) {
        let (tx, rx) = mpsc::channel();
        engine
            .try_submit_update(
                ops,
                Box::new(move |status, body| {
                    let _ = tx.send((status, body));
                }),
            )
            .unwrap();
        rx.recv().unwrap()
    }

    fn served(engine: &StreamEngine, model: &str) -> Vec<f32> {
        engine
            .try_submit(model.to_string(), None, None)
            .unwrap()
            .recv()
            .unwrap()
            .unwrap()
            .scores
            .as_ref()
            .clone()
    }

    #[test]
    fn delta_served_scores_match_full_rescore() {
        let (models, graph_path, mut g) = fixture("delta");
        let engine = StreamEngine::start(
            &models,
            &graph_path,
            StreamConfig::default(),
            Arc::new(Metrics::new()),
        )
        .unwrap();

        // Startup scores are the offline scores of the startup graph.
        use vgod_eval::OutlierDetector as _;
        assert_eq!(served(&engine, "degnorm"), DegNorm.score(&g).combined);

        // A mixed batch, mirrored into a plain AttributedGraph.
        let (status, body) = apply(
            &engine,
            vec![
                GraphMutation::AddEdge { u: 3, v: 77 },
                GraphMutation::RemoveEdge { u: 0, v: 1 },
                GraphMutation::SetAttrs {
                    node: 40,
                    attrs: vec![2.0, -1.0, 0.5, 0.0],
                },
                GraphMutation::AddNode {
                    attrs: vec![1.0, 1.0, 1.0, 1.0],
                    label: Some(0),
                },
                GraphMutation::AddEdge { u: 90, v: 5 },
            ],
        );
        assert_eq!(status, 200, "{body}");
        g.add_edge(3, 77);
        g.remove_edge(0, 1);
        g.attrs_mut()
            .row_mut(40)
            .copy_from_slice(&[2.0, -1.0, 0.5, 0.0]);
        g.append_node(&[1.0, 1.0, 1.0, 1.0], Some(0));
        g.add_edge(90, 5);

        for (name, full) in [
            ("deg", Deg.score(&g).combined),
            ("l2norm", L2Norm.score(&g).combined),
            ("degnorm", DegNorm.score(&g).combined),
        ] {
            assert_eq!(served(&engine, name), full, "model {name}");
        }
        assert_eq!(engine.num_nodes(), 91);

        // No-op batch: version unchanged, still consistent.
        let (status, body) = apply(&engine, vec![GraphMutation::AddEdge { u: 3, v: 77 }]);
        assert_eq!(status, 200);
        assert!(body.contains("\"applied\":0"), "{body}");

        // Metrics carry the stream section.
        let metrics = engine.metrics_json();
        let v = Json::parse(&metrics).unwrap();
        let stream = v.get("stream").unwrap();
        assert_eq!(stream.get("updates").unwrap().get("batches").unwrap().as_u64(), Some(2));
        assert!(stream.get("rescore").unwrap().get("delta_nodes").unwrap().as_u64().unwrap() > 0);

        engine.shutdown();
        engine.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }

    #[test]
    fn compaction_folds_overlay_under_load() {
        let (models, graph_path, _) = fixture("compact");
        let engine = StreamEngine::start(
            &models,
            &graph_path,
            StreamConfig {
                compact_bytes: 512, // force compaction quickly
                queue_capacity: 64,
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        // Deterministic edge churn (toggle distinct pairs) until the
        // overlay outgrows the tiny threshold and a compaction is adopted
        // (adoption happens on the next batch after the compactor is done).
        let mut compactions = 0;
        'outer: for round in 0..200u32 {
            for i in 0..10u32 {
                let u = (round * 10 + i) % 90;
                let v = (u + 1 + (round + i) % 88) % 90;
                if u != v {
                    let (status, _) = apply(&engine, vec![GraphMutation::AddEdge { u, v }]);
                    assert_eq!(status, 200);
                }
            }
            let parsed = Json::parse(&engine.metrics_json()).unwrap();
            compactions = parsed
                .get("stream")
                .unwrap()
                .get("overlay")
                .unwrap()
                .get("compactions")
                .unwrap()
                .as_u64()
                .unwrap();
            if compactions > 0 {
                break 'outer;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(compactions > 0, "compactor never adopted a fresh base");

        engine.shutdown();
        engine.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }

    #[test]
    fn update_body_parsing_and_errors() {
        let ops = parse_update_body(
            br#"{"ops":[{"op":"add_edge","u":1,"v":2},{"op":"set_attrs","node":0,"attrs":[1.5,-2]}]}"#,
        )
        .unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0], GraphMutation::AddEdge { u: 1, v: 2 });
        assert!(parse_update_body(b"{}").is_err());
        assert!(parse_update_body(br#"{"ops":[{"op":"warp","u":1}]}"#).is_err());
        assert!(parse_update_body(br#"{"ops":[{"op":"add_edge","u":1}]}"#).is_err());

        // Self-loops are rejected at apply time with a 400.
        let (models, graph_path, g) = fixture("badop");
        let engine = StreamEngine::start(
            &models,
            &graph_path,
            StreamConfig::default(),
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let (status, body) = apply(&engine, vec![GraphMutation::AddEdge { u: 4, v: 4 }]);
        assert_eq!(status, 400, "{body}");

        // A batch with a valid op ahead of the bad one rejects whole:
        // nothing applies, and served scores still match an offline pass
        // on the unmutated graph byte-for-byte.
        let (status, body) = apply(
            &engine,
            vec![
                GraphMutation::AddEdge { u: 0, v: 50 },
                GraphMutation::AddEdge { u: 4, v: 4 },
            ],
        );
        assert_eq!(status, 400, "{body}");
        use vgod_eval::OutlierDetector as _;
        assert_eq!(served(&engine, "degnorm"), DegNorm.score(&g).combined);
        assert_eq!(engine.num_nodes(), g.num_nodes());
        engine.shutdown();
        engine.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }
}
