//! The micro-batching scoring engine.
//!
//! Graphs and detectors in this workspace are deliberately not `Send` (the
//! graph memoises an `Rc`-shared [`GraphContext`]), so the engine is a
//! single dedicated thread that *owns* the deployment graph and the model
//! [`Registry`]. HTTP connection threads talk to it over a bounded
//! [`std::sync::mpsc::sync_channel`]: a full queue fails `try_send`, which
//! the server surfaces as `503` — backpressure with no unbounded buffering.
//!
//! The batching discipline: on the first queued request the engine opens a
//! window of [`ServeConfig::max_wait`], keeps pulling requests until the
//! window closes or [`ServeConfig::max_batch`] are in hand, then flushes.
//! A flush groups requests by model and runs **one** full scoring pass per
//! distinct model, answering every grouped request from row selections of
//! that pass — the same selection [`OutlierDetector::score_nodes`]
//! performs, which keeps served scores byte-identical to offline scoring.
//! The whole loop runs inside an arena scope, so steady-state flushes
//! recycle the tensor buffers of earlier ones instead of allocating.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vgod_eval::OutlierDetector;
use vgod_graph::{load_graph, AttributedGraph};

use crate::metrics::Metrics;
use crate::registry::{LookupError, ModelInfo, Registry};

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Flush a batch once this many requests are queued.
    pub max_batch: usize,
    /// Flush a batch this long after its first request arrived.
    pub max_wait: Duration,
    /// Bounded queue capacity; a full queue rejects with `503`.
    pub queue_capacity: usize,
    /// How often to poll the checkpoint directory for hot reloads (checked
    /// when idle and between batches).
    pub reload_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_micros(2000),
            queue_capacity: 1024,
            reload_poll: Duration::from_millis(500),
        }
    }
}

/// A successful scoring reply.
#[derive(Clone, Debug)]
pub struct ScoreReply {
    /// The model that scored.
    pub model: String,
    /// The model version that scored.
    pub version: u64,
    /// The nodes scored, when the request named a subset.
    pub nodes: Option<Vec<u32>>,
    /// Scores, aligned with `nodes` (or with all graph nodes).
    pub scores: Vec<f32>,
}

/// Why a request could not be scored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScoreError {
    /// No model with that name (or wrong pinned version).
    Lookup(LookupError),
    /// A requested node id is outside the deployment graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The graph's node count.
        num_nodes: usize,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::Lookup(e) => e.fmt(f),
            ScoreError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
        }
    }
}

/// Why a request was not even queued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load.
    Overloaded,
    /// The engine has shut down.
    ShuttingDown,
}

struct ScoreRequest {
    model: String,
    version: Option<u64>,
    nodes: Option<Vec<u32>>,
    reply: mpsc::Sender<Result<ScoreReply, ScoreError>>,
    enqueued: Instant,
}

enum EngineMsg {
    Score(ScoreRequest),
    Shutdown,
}

/// Handle to the engine thread.
pub struct Engine {
    tx: Mutex<SyncSender<EngineMsg>>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
    metrics: Arc<Metrics>,
    models: Arc<Mutex<Vec<ModelInfo>>>,
    num_nodes: usize,
    shutting_down: AtomicBool,
}

impl Engine {
    /// Spawn the engine thread: it loads the graph at `graph_path`, opens
    /// the registry at `models_dir`, and starts serving the queue. Fails
    /// (synchronously) if the graph or any checkpoint fails to load.
    pub fn start(
        models_dir: PathBuf,
        graph_path: PathBuf,
        cfg: ServeConfig,
        metrics: Arc<Metrics>,
    ) -> Result<Engine, String> {
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let models = Arc::new(Mutex::new(Vec::new()));
        let (ready_tx, ready_rx) = mpsc::channel::<Result<usize, String>>();
        let thread_models = Arc::clone(&models);
        let thread_metrics = Arc::clone(&metrics);
        let join = std::thread::Builder::new()
            .name("vgod-serve-engine".into())
            .spawn(move || {
                engine_main(
                    models_dir,
                    graph_path,
                    cfg,
                    rx,
                    ready_tx,
                    thread_models,
                    thread_metrics,
                )
            })
            .map_err(|e| format!("spawning engine thread: {e}"))?;
        let num_nodes = ready_rx
            .recv()
            .map_err(|_| "engine thread died during startup".to_string())??;
        Ok(Engine {
            tx: Mutex::new(tx),
            join: Mutex::new(Some(join)),
            metrics,
            models,
            num_nodes,
            shutting_down: AtomicBool::new(false),
        })
    }

    /// Queue a scoring request. Returns the channel the reply will arrive
    /// on, or [`SubmitError`] if the queue is full or draining.
    pub fn try_submit(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Result<mpsc::Receiver<Result<ScoreReply, ScoreError>>, SubmitError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let msg = EngineMsg::Score(ScoreRequest {
            model,
            version,
            nodes,
            reply: reply_tx,
            enqueued: Instant::now(),
        });
        let sent = self.tx.lock().unwrap().try_send(msg);
        match sent {
            Ok(()) => {
                self.metrics.record_request();
                self.metrics.queue_inc();
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Registered models, as of the engine's last registry scan.
    pub fn models(&self) -> Vec<ModelInfo> {
        self.models.lock().unwrap().clone()
    }

    /// Node count of the deployment graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Begin graceful shutdown: refuse new submissions, let the engine
    /// drain everything already queued, then stop. Idempotent.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // A blocking send: queued Score messages ahead of this marker are
        // all drained (scored and replied to) before the thread exits.
        let _ = self.tx.lock().unwrap().send(EngineMsg::Shutdown);
    }

    /// Wait for the engine thread to exit (call after [`Engine::shutdown`]).
    pub fn join(&self) {
        if let Some(handle) = self.join.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_main(
    models_dir: PathBuf,
    graph_path: PathBuf,
    cfg: ServeConfig,
    rx: Receiver<EngineMsg>,
    ready_tx: mpsc::Sender<Result<usize, String>>,
    models: Arc<Mutex<Vec<ModelInfo>>>,
    metrics: Arc<Metrics>,
) {
    let setup = || -> Result<(AttributedGraph, Registry), String> {
        let graph = load_graph(graph_path.display().to_string())
            .map_err(|e| format!("{}: {e}", graph_path.display()))?;
        let registry = Registry::open(&models_dir)?;
        Ok((graph, registry))
    };
    let (graph, mut registry) = match setup() {
        Ok(ok) => ok,
        Err(e) => {
            let _ = ready_tx.send(Err(e));
            return;
        }
    };
    *models.lock().unwrap() = registry.infos();
    let _ = ready_tx.send(Ok(graph.num_nodes()));

    // The arena scope makes every flush recycle the tensor buffers of the
    // previous one: steady-state serving performs no fresh value/grad
    // allocations (the same discipline the recycled training runtime uses).
    vgod_tensor::arena::scope(|| loop {
        match rx.recv_timeout(cfg.reload_poll) {
            Ok(EngineMsg::Score(first)) => {
                let batch = collect_batch(&rx, first, &cfg);
                let shutdown = matches!(batch.1, BatchEnd::Shutdown);
                process_batch(batch.0, &graph, &registry, &metrics);
                if shutdown {
                    drain(&rx, &graph, &registry, &metrics, &cfg);
                    return;
                }
            }
            Ok(EngineMsg::Shutdown) => {
                drain(&rx, &graph, &registry, &metrics, &cfg);
                return;
            }
            Err(RecvTimeoutError::Timeout) => {
                for failure in registry.poll_reload() {
                    eprintln!("vgod-serve: reload failed: {failure}");
                }
                *models.lock().unwrap() = registry.infos();
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    });
}

enum BatchEnd {
    Flushed,
    Shutdown,
}

/// Gather up to `max_batch` requests within `max_wait` of the first.
fn collect_batch(
    rx: &Receiver<EngineMsg>,
    first: ScoreRequest,
    cfg: &ServeConfig,
) -> (Vec<ScoreRequest>, BatchEnd) {
    let deadline = Instant::now() + cfg.max_wait;
    let mut batch = vec![first];
    while batch.len() < cfg.max_batch.max(1) {
        let now = Instant::now();
        let Some(left) = deadline
            .checked_duration_since(now)
            .filter(|d| !d.is_zero())
        else {
            break;
        };
        match rx.recv_timeout(left) {
            Ok(EngineMsg::Score(req)) => batch.push(req),
            Ok(EngineMsg::Shutdown) => return (batch, BatchEnd::Shutdown),
            Err(_) => break,
        }
    }
    (batch, BatchEnd::Flushed)
}

/// Score one flushed batch: one full pass per distinct model, row
/// selections per request.
fn process_batch(
    batch: Vec<ScoreRequest>,
    graph: &AttributedGraph,
    registry: &Registry,
    metrics: &Metrics,
) {
    metrics.record_batch(batch.len());
    let mut by_model: Vec<(String, Vec<ScoreRequest>)> = Vec::new();
    for req in batch {
        match by_model.iter_mut().find(|(name, _)| *name == req.model) {
            Some((_, group)) => group.push(req),
            None => {
                let name = req.model.clone();
                by_model.push((name, vec![req]));
            }
        }
    }
    for (name, group) in by_model {
        score_group(&name, group, graph, registry, metrics);
    }
}

fn score_group(
    name: &str,
    group: Vec<ScoreRequest>,
    graph: &AttributedGraph,
    registry: &Registry,
    metrics: &Metrics,
) {
    // One full scoring pass serves every request for this model; it is
    // computed lazily so a group of pure lookup errors costs nothing.
    let mut full: Option<(Vec<f32>, u64)> = None;
    for req in group {
        let result = (|| {
            let (detector, version) = registry
                .get(name, req.version)
                .map_err(ScoreError::Lookup)?;
            if let Some(nodes) = &req.nodes {
                let n = graph.num_nodes();
                if let Some(&bad) = nodes.iter().find(|&&u| u as usize >= n) {
                    return Err(ScoreError::NodeOutOfRange {
                        node: bad,
                        num_nodes: n,
                    });
                }
            }
            let (scores, version) = match &full {
                Some((scores, version)) => (scores.clone(), *version),
                None => {
                    let scores = detector.score(graph).combined;
                    full = Some((scores.clone(), version));
                    (scores, version)
                }
            };
            let selected = match &req.nodes {
                Some(nodes) => nodes.iter().map(|&u| scores[u as usize]).collect(),
                None => scores,
            };
            Ok(ScoreReply {
                model: name.to_string(),
                version,
                nodes: req.nodes.clone(),
                scores: selected,
            })
        })();
        if result.is_err() {
            metrics.record_error();
        }
        metrics.record_latency_us(req.enqueued.elapsed().as_micros() as u64);
        metrics.queue_dec();
        let _ = req.reply.send(result);
    }
}

/// Shutdown drain: everything still in the queue is scored and answered.
fn drain(
    rx: &Receiver<EngineMsg>,
    graph: &AttributedGraph,
    registry: &Registry,
    metrics: &Metrics,
    cfg: &ServeConfig,
) {
    let mut rest = Vec::new();
    while let Ok(msg) = rx.try_recv() {
        if let EngineMsg::Score(req) = msg {
            rest.push(req);
        }
    }
    // Score the remainder in max_batch-sized flushes.
    while !rest.is_empty() {
        let take = cfg.max_batch.max(1).min(rest.len());
        let batch: Vec<ScoreRequest> = rest.drain(..take).collect();
        process_batch(batch, graph, registry, metrics);
    }
}
