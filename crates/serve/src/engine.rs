//! The replicated micro-batching scoring engine.
//!
//! Graphs in this workspace are deliberately not `Send` (a graph memoises
//! an `Rc`-shared `GraphContext`), so scoring happens on dedicated
//! replica threads that each *own* a private rebuild of the deployment
//! graph. The engine spawns `N` such replicas ([`ServeConfig::replicas`],
//! default = available cores); models are shared — every replica resolves
//! requests against the same `Arc`-published registry [`Snapshot`], so a
//! checkpoint is loaded once no matter how many replicas serve it.
//!
//! Requests are routed to replicas **sticky per model**: the first request
//! for a model assigns it a replica round-robin, and every later request
//! for that model lands on the same replica. Sticky routing maximises
//! batch coherence — a flush groups requests by model and runs **one**
//! full scoring pass per distinct model, so scattering a model's traffic
//! across replicas would shrink every group and multiply forward passes.
//! Requests naming unregistered models are routed by name hash (they only
//! ever produce a `404`, and must not grow the sticky table).
//!
//! Each replica keeps the original engine's discipline:
//!
//! * a bounded queue per replica — `try_send` on a full queue fails, which
//!   the server surfaces as `503` (backpressure with no unbounded buffering);
//! * micro-batching — the first queued request opens a
//!   [`ServeConfig::max_wait`] window, requests accumulate until the window
//!   closes or [`ServeConfig::max_batch`] are in hand, then the batch is
//!   flushed with one pass per distinct model, answering every grouped
//!   request from row selections of that pass (the same selection
//!   [`OutlierDetector::score_nodes`] performs, which keeps served scores
//!   byte-identical to offline scoring);
//! * an arena scope around the whole loop, so steady-state flushes recycle
//!   tensor buffers instead of allocating.
//!
//! Replies are delivered through a caller-supplied callback that runs on
//! the replica thread ([`Engine::try_submit_with`]). The epoll server uses
//! this to serialise the response off the event loop and wake it through
//! an eventfd; tests and the portable fallback server use the channel
//! wrapper [`Engine::try_submit`].
//!
//! Hot reloads live on their own reloader thread, which owns the
//! [`Registry`], polls the checkpoint directory every
//! [`RegistryConfig::reload_poll`], and publishes a fresh snapshot (one
//! pointer swap) when anything changed — scoring never blocks on a reload.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vgod_eval::OutlierDetector;
use vgod_graph::{
    load_graph, AttributedGraph, CachePolicy, GraphStore, OocStore, SamplingConfig, StoreOptions,
};
use vgod_tensor::Matrix;

use crate::detector::AnyDetector;
use crate::metrics::Metrics;
use crate::registry::{LookupError, ModelInfo, Registry, RegistryConfig, Snapshot, SnapshotCell};

/// Out-of-core deployment backend: instead of materialising a full
/// in-memory graph per replica, every replica scores against **one**
/// shared demand-paged [`OocStore`] under this byte budget — the store is
/// `Send + Sync` and its sharded block cache is built for exactly this
/// kind of concurrent reader fleet.
#[derive(Clone, Debug)]
pub struct OocServeConfig {
    /// Total store memory budget in bytes (resident `indptr` + cache).
    pub budget: usize,
    /// Block replacement policy for the shared cache.
    pub policy: CachePolicy,
    /// Sampling schedule for store-backed scoring.
    pub sampling: SamplingConfig,
}

impl OocServeConfig {
    /// Defaults (segmented LRU, default sampling) at the given budget.
    pub fn new(budget: usize) -> OocServeConfig {
        OocServeConfig {
            budget,
            policy: CachePolicy::default(),
            sampling: SamplingConfig::default(),
        }
    }
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Flush a batch once this many requests are queued.
    pub max_batch: usize,
    /// Flush a batch this long after its first request arrived.
    pub max_wait: Duration,
    /// Bounded queue capacity **per replica**; a full queue rejects the
    /// request with `503`.
    pub queue_capacity: usize,
    /// Number of scoring replicas; `0` means one per available core.
    pub replicas: usize,
    /// Registry knobs (hot-reload poll interval).
    pub registry: RegistryConfig,
    /// `Some` serves from a shared out-of-core store instead of per-replica
    /// in-memory graphs (the deployment file must be a `VGODSTR1` store).
    pub out_of_core: Option<OocServeConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_micros(2000),
            queue_capacity: 1024,
            replicas: 0,
            registry: RegistryConfig::default(),
            out_of_core: None,
        }
    }
}

impl ServeConfig {
    /// The replica count this config resolves to on this machine.
    pub fn resolved_replicas(&self) -> usize {
        if self.replicas > 0 {
            self.replicas
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A successful scoring reply.
#[derive(Clone, Debug)]
pub struct ScoreReply {
    /// The model that scored.
    pub model: String,
    /// The model version that scored.
    pub version: u64,
    /// The nodes scored, when the request named a subset.
    pub nodes: Option<Vec<u32>>,
    /// Scores, aligned with `nodes` (or with all graph nodes). Behind an
    /// `Arc` so unfiltered whole-graph replies share the cached vector
    /// instead of cloning `O(n)` floats per request.
    pub scores: Arc<Vec<f32>>,
}

/// Why a request could not be scored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScoreError {
    /// No model with that name (or wrong pinned version).
    Lookup(LookupError),
    /// A requested node id is outside the deployment graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// A shard worker process died or stopped answering (sharded serving
    /// only) — the request cannot be scored until it is restarted.
    ShardDown {
        /// The dead shard's index.
        shard: usize,
        /// The transport failure observed (connect refused, EOF, ...).
        cause: String,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::Lookup(e) => e.fmt(f),
            ScoreError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            ScoreError::ShardDown { shard, cause } => {
                write!(f, "shard {shard} down: {cause}")
            }
        }
    }
}

/// Why a request was not even queued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The routed replica's bounded queue is full — shed load.
    Overloaded,
    /// The engine has shut down.
    ShuttingDown,
}

/// Reply callback: runs on the replica thread once the request is scored
/// (or failed). Keep it cheap and non-blocking — it executes inside the
/// scoring loop.
pub type ReplyFn = Box<dyn FnOnce(Result<ScoreReply, ScoreError>) + Send>;

struct ScoreRequest {
    model: String,
    version: Option<u64>,
    nodes: Option<Vec<u32>>,
    reply: ReplyFn,
    enqueued: Instant,
}

enum EngineMsg {
    Score(ScoreRequest),
    Shutdown,
}

/// Everything needed to rebuild the deployment graph inside a replica
/// thread. `AttributedGraph` itself is not `Send` (its memoised context
/// cache holds `Rc`s), but its raw parts are plain data; each replica
/// reconstructs an identical graph — same sorted adjacency, same attribute
/// bytes — and grows its own memoised context.
struct GraphSpec {
    edges: Vec<(u32, u32)>,
    x: Matrix,
    labels: Option<Vec<u32>>,
}

impl GraphSpec {
    fn of(g: &AttributedGraph) -> GraphSpec {
        GraphSpec {
            edges: g.undirected_edges(),
            x: g.attrs().clone(),
            labels: g.labels().map(<[u32]>::to_vec),
        }
    }

    fn build(&self) -> AttributedGraph {
        let mut g = AttributedGraph::from_edges(self.x.clone(), &self.edges);
        if let Some(labels) = &self.labels {
            g.set_labels(labels.clone());
        }
        g
    }
}

/// What each replica thread receives at spawn: either the raw parts of an
/// in-memory graph to rebuild privately, or a handle to the one shared
/// out-of-core store (which *is* `Send + Sync`, so no rebuild is needed —
/// all replicas page through the same budgeted cache).
enum ReplicaSource {
    Full(Arc<GraphSpec>),
    Store {
        store: Arc<OocStore>,
        sampling: SamplingConfig,
    },
}

impl ReplicaSource {
    /// A cheap per-replica handle (Arc clones only) — the source itself is
    /// `Send`; the `ReplicaGraph` it builds is not and must be built on
    /// the replica thread.
    fn clone_handle(&self) -> ReplicaSource {
        match self {
            ReplicaSource::Full(spec) => ReplicaSource::Full(Arc::clone(spec)),
            ReplicaSource::Store { store, sampling } => ReplicaSource::Store {
                store: Arc::clone(store),
                sampling: *sampling,
            },
        }
    }

    fn num_nodes(&self) -> usize {
        match self {
            ReplicaSource::Full(spec) => spec.x.rows(),
            ReplicaSource::Store { store, .. } => GraphStore::num_nodes(&**store),
        }
    }

    fn build(&self) -> ReplicaGraph {
        match self {
            ReplicaSource::Full(spec) => ReplicaGraph::Full(spec.build()),
            ReplicaSource::Store { store, sampling } => ReplicaGraph::Store {
                store: Arc::clone(store),
                sampling: *sampling,
            },
        }
    }
}

/// A replica's scoring view of the deployment graph.
enum ReplicaGraph {
    Full(AttributedGraph),
    Store {
        store: Arc<OocStore>,
        sampling: SamplingConfig,
    },
}

impl ReplicaGraph {
    fn num_nodes(&self) -> usize {
        match self {
            ReplicaGraph::Full(g) => g.num_nodes(),
            ReplicaGraph::Store { store, .. } => GraphStore::num_nodes(&**store),
        }
    }

    /// One full scoring pass with `det` (the per-model pass every flush
    /// amortises across its grouped requests).
    fn full_scores(&self, det: &AnyDetector) -> Vec<f32> {
        match self {
            ReplicaGraph::Full(g) => det.score(g).combined,
            ReplicaGraph::Store { store, sampling } => det.score_store(&**store, sampling).combined,
        }
    }
}

/// Per-model sticky routing table: first sight assigns the next replica
/// round-robin, later requests stick to it.
struct Router {
    assignments: Mutex<HashMap<String, usize>>,
    next: AtomicUsize,
    replicas: usize,
}

impl Router {
    fn new(replicas: usize) -> Router {
        Router {
            assignments: Mutex::new(HashMap::new()),
            next: AtomicUsize::new(0),
            replicas,
        }
    }

    fn route(&self, model: &str, registered: bool) -> usize {
        if self.replicas == 1 {
            return 0;
        }
        let mut map = self.assignments.lock().unwrap();
        if let Some(&replica) = map.get(model) {
            return replica;
        }
        if registered {
            let replica = self.next.fetch_add(1, Ordering::Relaxed) % self.replicas;
            map.insert(model.to_string(), replica);
            replica
        } else {
            // Unknown names answer 404 from whichever replica; hash so a
            // flood of garbage names cannot grow the sticky table.
            fnv1a(model.as_bytes()) as usize % self.replicas
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Handle to the replica fleet and the reloader thread.
pub struct Engine {
    replica_txs: Vec<SyncSender<EngineMsg>>,
    router: Router,
    snapshots: Arc<SnapshotCell>,
    reload_stop: SyncSender<()>,
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
    metrics: Arc<Metrics>,
    num_nodes: usize,
    shutting_down: AtomicBool,
}

impl Engine {
    /// Start the engine: load the graph at `graph_path` and the registry at
    /// `models_dir` (both on the calling thread — startup failures are
    /// synchronous), then spawn the scoring replicas and the reloader.
    pub fn start(
        models_dir: PathBuf,
        graph_path: PathBuf,
        cfg: ServeConfig,
        metrics: Arc<Metrics>,
    ) -> Result<Engine, String> {
        let source = match &cfg.out_of_core {
            Some(ooc) => {
                let opts = StoreOptions {
                    budget: ooc.budget,
                    policy: ooc.policy,
                    shards: 0,
                };
                let store = OocStore::open_with(&graph_path, opts)
                    .map_err(|e| format!("{}: {e}", graph_path.display()))?;
                ReplicaSource::Store {
                    store: Arc::new(store),
                    sampling: ooc.sampling,
                }
            }
            None => {
                let graph = load_graph(graph_path.display().to_string())
                    .map_err(|e| format!("{}: {e}", graph_path.display()))?;
                ReplicaSource::Full(Arc::new(GraphSpec::of(&graph)))
            }
        };
        let num_nodes = source.num_nodes();

        let registry = Registry::open(&models_dir)?;
        let snapshots = Arc::new(SnapshotCell::new(registry.snapshot()));

        let replicas = cfg.replicas_for_start();
        metrics.init_replicas(replicas);
        let mut joins = Vec::with_capacity(replicas + 1);
        let mut replica_txs = Vec::with_capacity(replicas);
        for id in 0..replicas {
            let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
            let source = source.clone_handle();
            let snapshots = Arc::clone(&snapshots);
            let metrics = Arc::clone(&metrics);
            let cfg = cfg.clone();
            let join = std::thread::Builder::new()
                .name(format!("vgod-serve-replica-{id}"))
                .spawn(move || replica_main(id, source, rx, &snapshots, &metrics, &cfg))
                .map_err(|e| format!("spawning replica {id}: {e}"))?;
            replica_txs.push(tx);
            joins.push(join);
        }

        let (reload_stop, stop_rx) = mpsc::sync_channel(1);
        let reload_snapshots = Arc::clone(&snapshots);
        let reload_poll = cfg.registry.reload_poll;
        let join = std::thread::Builder::new()
            .name("vgod-serve-reload".into())
            .spawn(move || reloader_main(registry, reload_snapshots, stop_rx, reload_poll))
            .map_err(|e| format!("spawning reloader: {e}"))?;
        joins.push(join);

        Ok(Engine {
            replica_txs,
            router: Router::new(replicas),
            snapshots,
            reload_stop,
            joins: Mutex::new(joins),
            metrics,
            num_nodes,
            shutting_down: AtomicBool::new(false),
        })
    }

    /// Queue a scoring request with a reply callback (runs on the replica
    /// thread). [`SubmitError`] if the routed replica's queue is full or
    /// the engine is draining.
    pub fn try_submit_with(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
        reply: ReplyFn,
    ) -> Result<(), SubmitError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let registered = self.snapshots.load().contains(&model);
        let replica = self.router.route(&model, registered);
        let msg = EngineMsg::Score(ScoreRequest {
            model,
            version,
            nodes,
            reply,
            enqueued: Instant::now(),
        });
        match self.replica_txs[replica].try_send(msg) {
            Ok(()) => {
                self.metrics.record_request();
                self.metrics.queue_inc(replica);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// [`Engine::try_submit_with`] wrapped in a channel, for blocking
    /// callers (tests, the portable fallback server).
    pub fn try_submit(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Result<mpsc::Receiver<Result<ScoreReply, ScoreError>>, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.try_submit_with(
            model,
            version,
            nodes,
            Box::new(move |result| {
                let _ = reply_tx.send(result);
            }),
        )?;
        Ok(reply_rx)
    }

    /// Registered models, from the latest published registry snapshot.
    pub fn models(&self) -> Vec<ModelInfo> {
        self.snapshots.load().infos().to_vec()
    }

    /// Node count of the deployment graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of scoring replicas.
    pub fn replicas(&self) -> usize {
        self.replica_txs.len()
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Begin graceful shutdown: refuse new submissions, let every replica
    /// drain its queue, stop the reloader. Idempotent.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Blocking sends: queued Score messages ahead of each marker are
        // all drained (scored and replied to) before that replica exits.
        for tx in &self.replica_txs {
            let _ = tx.send(EngineMsg::Shutdown);
        }
        let _ = self.reload_stop.try_send(());
    }

    /// Wait for every engine thread to exit (call after
    /// [`Engine::shutdown`]).
    pub fn join(&self) {
        let joins: Vec<_> = self.joins.lock().unwrap().drain(..).collect();
        for join in joins {
            let _ = join.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

impl ServeConfig {
    fn replicas_for_start(&self) -> usize {
        self.resolved_replicas().max(1)
    }
}

fn reloader_main(
    mut registry: Registry,
    snapshots: Arc<SnapshotCell>,
    stop_rx: Receiver<()>,
    poll: Duration,
) {
    loop {
        match stop_rx.recv_timeout(poll) {
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let failures = registry.poll_reload();
                for failure in &failures {
                    eprintln!("vgod-serve: reload failed: {failure}");
                }
                snapshots.store(registry.snapshot());
            }
            // Stop requested, or the engine handle dropped.
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn replica_main(
    id: usize,
    source: ReplicaSource,
    rx: Receiver<EngineMsg>,
    snapshots: &SnapshotCell,
    metrics: &Metrics,
    cfg: &ServeConfig,
) {
    let graph = source.build();
    // The arena scope makes every flush recycle the tensor buffers of the
    // previous one: steady-state serving performs no fresh value/grad
    // allocations (the same discipline the recycled training runtime uses).
    vgod_tensor::arena::scope(|| loop {
        match rx.recv() {
            Ok(EngineMsg::Score(first)) => {
                let (batch, end) = collect_batch(&rx, first, cfg);
                let shutdown = matches!(end, BatchEnd::Shutdown);
                process_batch(id, batch, &graph, &snapshots.load(), metrics);
                if shutdown {
                    drain(id, &rx, &graph, snapshots, metrics, cfg);
                    return;
                }
            }
            Ok(EngineMsg::Shutdown) => {
                drain(id, &rx, &graph, snapshots, metrics, cfg);
                return;
            }
            Err(_) => return,
        }
    });
}

enum BatchEnd {
    Flushed,
    Shutdown,
}

/// Gather up to `max_batch` requests within `max_wait` of the first.
fn collect_batch(
    rx: &Receiver<EngineMsg>,
    first: ScoreRequest,
    cfg: &ServeConfig,
) -> (Vec<ScoreRequest>, BatchEnd) {
    let deadline = Instant::now() + cfg.max_wait;
    let mut batch = vec![first];
    while batch.len() < cfg.max_batch.max(1) {
        let now = Instant::now();
        let Some(left) = deadline
            .checked_duration_since(now)
            .filter(|d| !d.is_zero())
        else {
            break;
        };
        match rx.recv_timeout(left) {
            Ok(EngineMsg::Score(req)) => batch.push(req),
            Ok(EngineMsg::Shutdown) => return (batch, BatchEnd::Shutdown),
            Err(_) => break,
        }
    }
    (batch, BatchEnd::Flushed)
}

/// Score one flushed batch: one full pass per distinct model, row
/// selections per request. The whole batch resolves against one snapshot,
/// so co-batched requests cannot straddle a hot reload.
fn process_batch(
    replica: usize,
    batch: Vec<ScoreRequest>,
    graph: &ReplicaGraph,
    snapshot: &Snapshot,
    metrics: &Metrics,
) {
    metrics.record_batch(batch.len());
    let mut by_model: Vec<(String, Vec<ScoreRequest>)> = Vec::new();
    for req in batch {
        match by_model.iter_mut().find(|(name, _)| *name == req.model) {
            Some((_, group)) => group.push(req),
            None => {
                let name = req.model.clone();
                by_model.push((name, vec![req]));
            }
        }
    }
    for (name, group) in by_model {
        score_group(replica, &name, group, graph, snapshot, metrics);
    }
}

fn score_group(
    replica: usize,
    name: &str,
    group: Vec<ScoreRequest>,
    graph: &ReplicaGraph,
    snapshot: &Snapshot,
    metrics: &Metrics,
) {
    // One full scoring pass serves every request for this model; it is
    // computed lazily so a group of pure lookup errors costs nothing.
    let mut full: Option<(Arc<Vec<f32>>, u64)> = None;
    for req in group {
        let result = (|| {
            let (detector, version) = snapshot
                .get(name, req.version)
                .map_err(ScoreError::Lookup)?;
            if let Some(nodes) = &req.nodes {
                let n = graph.num_nodes();
                if let Some(&bad) = nodes.iter().find(|&&u| u as usize >= n) {
                    return Err(ScoreError::NodeOutOfRange {
                        node: bad,
                        num_nodes: n,
                    });
                }
            }
            let (scores, version) = match &full {
                Some((scores, version)) => (Arc::clone(scores), *version),
                None => {
                    let scores = Arc::new(graph.full_scores(&detector));
                    full = Some((Arc::clone(&scores), version));
                    (scores, version)
                }
            };
            let selected = match &req.nodes {
                Some(nodes) => {
                    Arc::new(nodes.iter().map(|&u| scores[u as usize]).collect::<Vec<f32>>())
                }
                None => scores,
            };
            Ok(ScoreReply {
                model: name.to_string(),
                version,
                nodes: req.nodes.clone(),
                scores: selected,
            })
        })();
        if result.is_err() {
            metrics.record_error();
        }
        metrics.record_latency_us(req.enqueued.elapsed().as_micros() as u64);
        metrics.queue_dec(replica);
        (req.reply)(result);
    }
}

/// Shutdown drain: everything still in this replica's queue is scored and
/// answered.
fn drain(
    replica: usize,
    rx: &Receiver<EngineMsg>,
    graph: &ReplicaGraph,
    snapshots: &SnapshotCell,
    metrics: &Metrics,
    cfg: &ServeConfig,
) {
    let mut rest = Vec::new();
    while let Ok(msg) = rx.try_recv() {
        if let EngineMsg::Score(req) = msg {
            rest.push(req);
        }
    }
    // Score the remainder in max_batch-sized flushes.
    while !rest.is_empty() {
        let take = cfg.max_batch.max(1).min(rest.len());
        let batch: Vec<ScoreRequest> = rest.drain(..take).collect();
        process_batch(replica, batch, graph, &snapshots.load(), metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model snapshots are shared across replica threads by `Arc`, which
    /// requires every detector to be `Send + Sync` — all detector state is
    /// plain owned data (parameter matrices, seeds), enforced here at
    /// compile time.
    #[test]
    fn any_detector_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::AnyDetector>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn sticky_router_spreads_models_and_hashes_unknown() {
        let router = Router::new(4);
        let a = router.route("a", true);
        let b = router.route("b", true);
        let c = router.route("c", true);
        // Round-robin first-sight assignment: three models, three replicas.
        assert_eq!((a, b, c), (0, 1, 2));
        // Sticky thereafter.
        assert_eq!(router.route("b", true), b);
        assert_eq!(router.route("a", true), a);
        // Unknown names don't grow the table but route deterministically.
        let bogus = router.route("no-such-model", false);
        assert_eq!(router.route("no-such-model", false), bogus);
        assert_eq!(router.assignments.lock().unwrap().len(), 3);
        // A single replica short-circuits.
        let single = Router::new(1);
        assert_eq!(single.route("a", true), 0);
        assert_eq!(single.route("zzz", false), 0);
    }

    #[test]
    fn graph_spec_rebuilds_identically() {
        let mut rng = vgod_graph::seeded_rng(7);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(40, 2, 3.0, 0.8),
            &mut rng,
        );
        let x = vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 4, 2.0, 0.5, &mut rng);
        g.set_attrs(x);
        let spec = GraphSpec::of(&g);
        let rebuilt = spec.build();
        assert_eq!(rebuilt.num_nodes(), g.num_nodes());
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        assert_eq!(rebuilt.labels(), g.labels());
        assert_eq!(rebuilt.attrs().as_slice(), g.attrs().as_slice());
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(rebuilt.neighbors(u), g.neighbors(u));
        }
    }
}
