//! One type over every persistable detector, loaded by magic-line dispatch.

use std::io::BufRead;

use vgod::{Arm, Vbm, Vgod};
use vgod_baselines::{
    AnomalyDae, Cola, Conad, Deg, DegNorm, Dominant, Done, L2Norm, Radar, RandomDetector,
};
use vgod_eval::{DeltaCapability, OutlierDetector, RangeScores, Scores};
use vgod_graph::{AttributedGraph, GraphStore, SamplingConfig};

/// Any detector the workspace can persist and serve.
///
/// Checkpoints self-describe through their magic line (`# vgod-<kind> v1`),
/// so [`AnyDetector::load`] reads one format-agnostic stream and returns
/// whichever model it contains. This is the single loader shared by the
/// serving [`Registry`](crate::Registry) and the `vgod detect
/// --load-model` CLI path.
#[derive(Clone, Debug)]
#[allow(missing_docs)]
pub enum AnyDetector {
    Vgod(Vgod),
    Vbm(Vbm),
    Arm(Arm),
    Dominant(Dominant),
    AnomalyDae(AnomalyDae),
    Done(Done),
    Cola(Cola),
    Conad(Conad),
    Radar(Radar),
    DegNorm(DegNorm),
    Deg(Deg),
    L2Norm(L2Norm),
    Random(RandomDetector),
}

macro_rules! for_each_variant {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnyDetector::Vgod($inner) => $body,
            AnyDetector::Vbm($inner) => $body,
            AnyDetector::Arm($inner) => $body,
            AnyDetector::Dominant($inner) => $body,
            AnyDetector::AnomalyDae($inner) => $body,
            AnyDetector::Done($inner) => $body,
            AnyDetector::Cola($inner) => $body,
            AnyDetector::Conad($inner) => $body,
            AnyDetector::Radar($inner) => $body,
            AnyDetector::DegNorm($inner) => $body,
            AnyDetector::Deg($inner) => $body,
            AnyDetector::L2Norm($inner) => $body,
            AnyDetector::Random($inner) => $body,
        }
    };
}

impl AnyDetector {
    /// The checkpoint kind tag — the `<kind>` of the magic line, which is
    /// also the `--model` name the CLI uses.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyDetector::Vgod(_) => "vgod",
            AnyDetector::Vbm(_) => "vbm",
            AnyDetector::Arm(_) => "arm",
            AnyDetector::Dominant(_) => "dominant",
            AnyDetector::AnomalyDae(_) => "anomalydae",
            AnyDetector::Done(_) => "done",
            AnyDetector::Cola(_) => "cola",
            AnyDetector::Conad(_) => "conad",
            AnyDetector::Radar(_) => "radar",
            AnyDetector::DegNorm(_) => "degnorm",
            AnyDetector::Deg(_) => "deg",
            AnyDetector::L2Norm(_) => "l2norm",
            AnyDetector::Random(_) => "random",
        }
    }

    /// Write the wrapped detector's checkpoint (its own magic + format).
    pub fn save(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        for_each_variant!(self, m => m.save(out))
    }

    /// Read any checkpoint, dispatching on its magic line.
    pub fn load(input: &mut impl BufRead) -> Result<AnyDetector, String> {
        let mut text = Vec::new();
        input.read_to_end(&mut text).map_err(|e| e.to_string())?;
        let first_line = text
            .split(|&b| b == b'\n')
            .next()
            .map(|l| String::from_utf8_lossy(l).trim().to_string())
            .unwrap_or_default();
        let mut cursor = text.as_slice();
        match first_line.as_str() {
            "# vgod-framework v1" => Vgod::load(&mut cursor).map(AnyDetector::Vgod),
            "# vgod-vbm v1" => Vbm::load(&mut cursor).map(AnyDetector::Vbm),
            "# vgod-arm v1" => Arm::load(&mut cursor).map(AnyDetector::Arm),
            "# vgod-dominant v1" => Dominant::load(&mut cursor).map(AnyDetector::Dominant),
            "# vgod-anomalydae v1" => AnomalyDae::load(&mut cursor).map(AnyDetector::AnomalyDae),
            "# vgod-done v1" => Done::load(&mut cursor).map(AnyDetector::Done),
            "# vgod-cola v1" => Cola::load(&mut cursor).map(AnyDetector::Cola),
            "# vgod-conad v1" => Conad::load(&mut cursor).map(AnyDetector::Conad),
            "# vgod-radar v1" => Radar::load(&mut cursor).map(AnyDetector::Radar),
            "# vgod-degnorm v1" => DegNorm::load(&mut cursor).map(AnyDetector::DegNorm),
            "# vgod-deg v1" => Deg::load(&mut cursor).map(AnyDetector::Deg),
            "# vgod-l2norm v1" => L2Norm::load(&mut cursor).map(AnyDetector::L2Norm),
            "# vgod-random v1" => RandomDetector::load(&mut cursor).map(AnyDetector::Random),
            other => Err(format!("unrecognised checkpoint magic {other:?}")),
        }
    }

    /// [`AnyDetector::load`] from a file path.
    pub fn load_file(path: &std::path::Path) -> Result<AnyDetector, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        AnyDetector::load(&mut std::io::BufReader::new(file))
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// [`AnyDetector::save`] to a file path.
    pub fn save_file(&self, path: &std::path::Path) -> Result<(), String> {
        let file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut w = std::io::BufWriter::new(file);
        self.save(&mut w)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

impl OutlierDetector for AnyDetector {
    fn name(&self) -> &'static str {
        for_each_variant!(self, m => m.name())
    }

    fn fit(&mut self, g: &AttributedGraph) {
        for_each_variant!(self, m => OutlierDetector::fit(m, g))
    }

    fn score(&self, g: &AttributedGraph) -> Scores {
        for_each_variant!(self, m => m.score(g))
    }

    // Store-backed paths forward to the wrapped detector so its own
    // override (mini-batch training, global combination, refit-per-batch
    // for the transductive models) is the one that runs — a blanket
    // default here would silently bypass them.

    fn fit_store(&mut self, store: &dyn GraphStore, cfg: &SamplingConfig) {
        for_each_variant!(self, m => OutlierDetector::fit_store(m, store, cfg))
    }

    fn score_store(&self, store: &dyn GraphStore, cfg: &SamplingConfig) -> Scores {
        for_each_variant!(self, m => m.score_store(store, cfg))
    }

    fn score_store_range(
        &self,
        store: &dyn GraphStore,
        cfg: &SamplingConfig,
        lo: u32,
        hi: u32,
    ) -> RangeScores {
        for_each_variant!(self, m => m.score_store_range(store, cfg, lo, hi))
    }

    fn delta_capability(&self) -> DeltaCapability {
        for_each_variant!(self, m => m.delta_capability())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_baselines::DeepConfig;
    use vgod_graph::seeded_rng;
    use vgod_tensor::Matrix;

    fn tiny_graph() -> AttributedGraph {
        let mut rng = seeded_rng(11);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(80, 2, 4.0, 0.9),
            &mut rng,
        );
        let x = vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 6, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        g
    }

    #[test]
    fn dispatches_on_magic_line() {
        let g = tiny_graph();
        let mut dom = Dominant::new(DeepConfig {
            epochs: 2,
            hidden: 4,
            ..DeepConfig::fast()
        });
        OutlierDetector::fit(&mut dom, &g);
        let mut buf = Vec::new();
        dom.save(&mut buf).unwrap();
        let any = AnyDetector::load(&mut buf.as_slice()).unwrap();
        assert_eq!(any.kind(), "dominant");
        assert_eq!(any.name(), "DOMINANT");
        assert_eq!(any.score(&g).combined, dom.score(&g).combined);
    }

    #[test]
    fn stateless_detectors_roundtrip() {
        let g = tiny_graph();
        let mut buf = Vec::new();
        DegNorm.save(&mut buf).unwrap();
        let any = AnyDetector::load(&mut buf.as_slice()).unwrap();
        assert_eq!(any.kind(), "degnorm");
        assert_eq!(any.score(&g).combined, DegNorm.score(&g).combined);

        let mut buf = Vec::new();
        RandomDetector::new(9).save(&mut buf).unwrap();
        let any = AnyDetector::load(&mut buf.as_slice()).unwrap();
        assert_eq!(
            any.score(&g).combined,
            RandomDetector::new(9).score(&g).combined
        );
    }

    #[test]
    fn rejects_unknown_and_empty_checkpoints() {
        assert!(AnyDetector::load(&mut b"".as_slice()).is_err());
        assert!(AnyDetector::load(&mut b"# vgod-unknown v1\n".as_slice()).is_err());
        assert!(AnyDetector::load(&mut b"garbage\n".as_slice()).is_err());
        let _ = Matrix::zeros(1, 1); // keep the dev-dependency honest
    }
}
