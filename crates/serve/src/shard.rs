//! Distributed sharded scoring: one worker process per partition shard,
//! and a coordinator that scatter-gathers score requests across them.
//!
//! The partitioner ([`vgod_graph::partition_store`]) splits the deployment
//! store into contiguous node ranges, each saved as a self-contained slice
//! plus a halo manifest of the ghost rows that cross the cut. A **worker**
//! ([`run_shard_worker`]) opens its slice as a [`ShardStore`], loads the
//! same checkpoint directory the coordinator serves, and answers
//! `POST /shard/score` with the *raw per-range channels* of
//! [`OutlierDetector::score_store_range`] — structural/contextual columns
//! plus the [`ScoreMerge`] rule naming the global recombination.
//!
//! The **coordinator** ([`Coordinator`]) mirrors the [`Engine`]'s submit
//! surface (`try_submit_with` / `try_submit` / `models` / `metrics`), so
//! the HTTP fronts in [`crate::server`] and [`crate::epoll`] drive either
//! backend unchanged. Each request scatters to every shard over keep-alive
//! loopback connections, reassembles the ranges with
//! [`merge_range_scores`], and answers from the merged full-graph vector —
//! byte-identical to single-process scoring because the merge applies the
//! detector's own global combination (VGOD Eq. 19 / DegNorm Eq. 20) over
//! the full-length concatenated channels.
//!
//! Failure semantics: a dead worker (connect refused, EOF mid-response)
//! fails the request with [`ScoreError::ShardDown`] — surfaced as `503`
//! with a `shard_down` error body — and is logged to stderr. Models are
//! loaded once at startup on both sides; sharded serving does **not** hot
//! reload (every model stays at version 1).
//!
//! [`OutlierDetector::score_store_range`]: vgod_eval::OutlierDetector::score_store_range
//! [`ScoreMerge`]: vgod_eval::ScoreMerge
//! [`Engine`]: crate::Engine

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use vgod_eval::{merge_range_scores, OutlierDetector, RangeScores, ScoreMerge, Scores};
use vgod_graph::{PartitionManifest, SamplingConfig, ShardStore, StoreOptions};

use crate::engine::{ReplyFn, ScoreError, ScoreReply, SubmitError};
use crate::http::{self, read_request, write_response};
use crate::json::{escape, Json};
use crate::metrics::Metrics;
use crate::registry::{LookupError, ModelInfo, Registry};

// ---------------------------------------------------------------------------
// Worker

/// Everything a shard worker needs to start serving its slice.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Partition directory (manifest + slices + halos).
    pub partition_dir: PathBuf,
    /// Which shard of the partition this worker owns.
    pub shard: usize,
    /// Checkpoint directory — must hold the same files the coordinator
    /// serves (the coordinator fits/saves, workers only load).
    pub models_dir: PathBuf,
    /// Bind address (port `0` for ephemeral).
    pub bind: String,
    /// Byte budget for the slice's demand-paged cache.
    pub budget: usize,
}

/// A running shard worker: bound address plus the accept-loop thread.
pub struct WorkerHandle {
    addr: SocketAddr,
    state: Arc<WorkerState>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

struct WorkerState {
    store: ShardStore,
    sampling: SamplingConfig,
    snapshot: Arc<crate::registry::Snapshot>,
    shard: usize,
    lo: u32,
    hi: u32,
    /// Serialises scoring — a worker owns one shard and one core's worth
    /// of work; concurrent heavy passes would only thrash the cache.
    score_lock: Mutex<()>,
    requests: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
}

/// Start a shard worker: open the slice, load the checkpoints, bind, and
/// serve until `POST /shutdown`.
pub fn run_shard_worker(cfg: &WorkerConfig) -> Result<WorkerHandle, String> {
    let store = ShardStore::open(&cfg.partition_dir, cfg.shard, StoreOptions::new(cfg.budget))?;
    let sampling = store.sampling();
    let (lo, hi) = store.owned_range();
    let registry = Registry::open(&cfg.models_dir)?;
    let snapshot = registry.snapshot();
    let listener = TcpListener::bind(&cfg.bind).map_err(|e| format!("bind {}: {e}", cfg.bind))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let state = Arc::new(WorkerState {
        store,
        sampling,
        snapshot,
        shard: cfg.shard,
        lo,
        hi,
        score_lock: Mutex::new(()),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        addr: Mutex::new(Some(addr)),
    });
    let loop_state = Arc::clone(&state);
    let join = std::thread::Builder::new()
        .name(format!("vgod-shard-{}", cfg.shard))
        .spawn(move || worker_accept_loop(listener, loop_state))
        .map_err(|e| format!("spawning shard accept loop: {e}"))?;
    Ok(WorkerHandle {
        addr,
        state,
        join: Mutex::new(Some(join)),
    })
}

impl WorkerHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Trigger the same stop as `POST /shutdown`. Idempotent.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Block until the accept loop has exited.
    pub fn join(&self) {
        if let Some(handle) = self.join.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

impl WorkerState {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the accept loop awake so it notices the flag.
        if let Some(addr) = *self.addr.lock().unwrap() {
            let _ = TcpStream::connect(addr);
        }
    }
}

fn worker_accept_loop(listener: TcpListener, state: Arc<WorkerState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("vgod-shard-conn".into())
            .spawn(move || worker_connection(stream, conn_state));
    }
}

fn worker_connection(stream: TcpStream, state: Arc<WorkerState>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some((method, path, body, keep_alive))) => {
                // A shut-down worker is dead to its peers: drop the request
                // unanswered (the coordinator sees EOF → ShardDown), instead
                // of scoring from a half-stopped process.
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (status, response) = worker_respond(&method, &path, &body, &state);
                let keep = keep_alive && !state.shutdown.load(Ordering::SeqCst);
                if write_response(&mut writer, status, &response, keep).is_err() || !keep {
                    return;
                }
            }
            Err((status, message)) => {
                let body = format!("{{\"error\":\"{}\"}}", escape(&message));
                let _ = write_response(&mut writer, status, &body, false);
                return;
            }
        }
    }
}

fn worker_respond(method: &str, path: &str, body: &[u8], state: &WorkerState) -> (u16, String) {
    match (method, path) {
        ("GET", "/healthz") => (
            200,
            format!("{{\"status\":\"ok\",\"shard\":{}}}", state.shard),
        ),
        ("GET", "/metrics") => {
            let meta = state.store.meta();
            (
                200,
                format!(
                    "{{\"shard\":{},\"lo\":{},\"hi\":{},\"ghosts\":{},\"cross_edges\":{},\
                     \"halo_bytes\":{},\"requests\":{},\"errors\":{}}}",
                    state.shard,
                    state.lo,
                    state.hi,
                    meta.ghosts,
                    meta.cross_edges,
                    meta.halo_bytes,
                    state.requests.load(Ordering::Relaxed),
                    state.errors.load(Ordering::Relaxed),
                ),
            )
        }
        ("POST", "/shutdown") => {
            state.begin_shutdown();
            (200, "{\"status\":\"shutting down\"}".into())
        }
        ("POST", "/shard/score") => worker_score(body, state),
        ("GET" | "POST", _) => (404, "{\"error\":\"no such endpoint\"}".into()),
        _ => (405, "{\"error\":\"method not allowed\"}".into()),
    }
}

fn worker_score(body: &[u8], state: &WorkerState) -> (u16, String) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let (model, version) = match parse_shard_score_body(body) {
        Ok(parts) => parts,
        Err(response) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            return response;
        }
    };
    let (detector, loaded) = match state.snapshot.get(&model, version) {
        Ok(found) => found,
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            return lookup_error_response(&e);
        }
    };
    let range = {
        // One scoring pass at a time; the arena scope recycles tensor
        // buffers across requests on this connection thread.
        let _serial = state.score_lock.lock().unwrap();
        vgod_tensor::arena::scope(|| {
            detector.score_store_range(&state.store, &state.sampling, state.lo, state.hi)
        })
    };
    (
        200,
        render_range_response(&model, loaded, state.shard, state.lo, state.hi, &range),
    )
}

/// Validate a `/shard/score` body: `{"model": NAME, "version": V?}`.
fn parse_shard_score_body(body: &[u8]) -> Result<(String, Option<u64>), (u16, String)> {
    let parsed = std::str::from_utf8(body)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
        .map_err(|e| {
            (
                400u16,
                format!("{{\"error\":\"invalid JSON: {}\"}}", escape(&e)),
            )
        })?;
    let Some(model) = parsed.get("model").and_then(Json::as_str) else {
        return Err((400, "{\"error\":\"missing \\\"model\\\"\"}".into()));
    };
    let version = match parsed.get("version") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64() {
            Some(version) => Some(version),
            None => {
                return Err((
                    400,
                    "{\"error\":\"\\\"version\\\" must be an integer\"}".into(),
                ))
            }
        },
    };
    Ok((model.to_string(), version))
}

fn lookup_error_response(e: &LookupError) -> (u16, String) {
    match e {
        LookupError::UnknownModel(_) => (
            404,
            format!(
                "{{\"error\":\"{}\",\"code\":\"unknown_model\"}}",
                escape(&e.to_string())
            ),
        ),
        LookupError::VersionMismatch { loaded, .. } => (
            409,
            format!(
                "{{\"error\":\"{}\",\"code\":\"version_mismatch\",\"loaded\":{loaded}}}",
                escape(&e.to_string())
            ),
        ),
    }
}

fn render_floats(values: &[f32]) -> String {
    // `f32`'s `Display` is the shortest round-trip rendering; parsing it
    // back (even through an f64 intermediate) recovers the exact bits,
    // which is what keeps sharded scores byte-identical end to end.
    let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    rendered.join(",")
}

fn render_channel(channel: &Option<Vec<f32>>) -> String {
    match channel {
        Some(values) => format!("[{}]", render_floats(values)),
        None => "null".into(),
    }
}

fn render_range_response(
    model: &str,
    version: u64,
    shard: usize,
    lo: u32,
    hi: u32,
    range: &RangeScores,
) -> String {
    format!(
        "{{\"model\":\"{}\",\"version\":{version},\"shard\":{shard},\"lo\":{lo},\"hi\":{hi},\
         \"merge\":\"{}\",\"combined\":[{}],\"structural\":{},\"contextual\":{}}}",
        escape(model),
        range.merge.wire_name(),
        render_floats(&range.scores.combined),
        render_channel(&range.scores.structural),
        render_channel(&range.scores.contextual),
    )
}

// ---------------------------------------------------------------------------
// Coordinator

/// Where one shard worker listens, plus its partition bookkeeping.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// The worker's bound address.
    pub addr: SocketAddr,
    /// Partition metadata for this shard (range, ghost/halo counters).
    pub meta: vgod_graph::ShardMeta,
}

/// Per-shard scatter counters, rendered into the coordinator's
/// `GET /metrics`.
#[derive(Debug, Default)]
struct ShardStat {
    requests: AtomicU64,
    errors: AtomicU64,
    bytes_rx: AtomicU64,
    last_us: AtomicU64,
    total_us: AtomicU64,
}

struct CoordRequest {
    model: String,
    version: Option<u64>,
    nodes: Option<Vec<u32>>,
    reply: ReplyFn,
    enqueued: Instant,
}

enum CoordMsg {
    Score(CoordRequest),
    Shutdown,
}

/// The scatter-gather front over a fleet of shard workers.
///
/// Mirrors the submit surface of [`crate::Engine`] so the HTTP fronts can
/// drive either backend: requests queue on a bounded channel (full ⇒
/// `503`), a single merge thread scatters each one to every shard over
/// persistent keep-alive connections, reassembles the per-range channels
/// with [`merge_range_scores`], and replies through the same callback
/// contract. Merged full-graph vectors are cached per model (models are
/// static in sharded mode), so repeat queries answer without re-scattering.
pub struct Coordinator {
    tx: SyncSender<CoordMsg>,
    shutting_down: AtomicBool,
    metrics: Arc<Metrics>,
    num_nodes: usize,
    infos: Vec<ModelInfo>,
    manifest: PartitionManifest,
    shards: Vec<ShardSpec>,
    stats: Arc<Vec<ShardStat>>,
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Coordinator {
    /// Start the coordinator: load the model catalogue from `models_dir`
    /// (the same directory every worker loaded), wait for each worker to
    /// answer `/healthz`, and spawn the merge thread.
    pub fn start(
        manifest: PartitionManifest,
        shards: Vec<ShardSpec>,
        models_dir: &std::path::Path,
        queue_capacity: usize,
        metrics: Arc<Metrics>,
    ) -> Result<Coordinator, String> {
        if shards.len() != manifest.shards.len() {
            return Err(format!(
                "partition has {} shards but {} worker addresses were given",
                manifest.shards.len(),
                shards.len()
            ));
        }
        let registry = Registry::open(models_dir)?;
        let infos = registry.infos();
        for spec in &shards {
            wait_healthy(spec)?;
        }
        metrics.init_replicas(1);
        let stats: Arc<Vec<ShardStat>> =
            Arc::new((0..shards.len()).map(|_| ShardStat::default()).collect());
        let (tx, rx) = mpsc::sync_channel(queue_capacity.max(1));
        let merge_shards = shards.clone();
        let merge_stats = Arc::clone(&stats);
        let merge_metrics = Arc::clone(&metrics);
        let num_nodes = manifest.num_nodes;
        let join = std::thread::Builder::new()
            .name("vgod-coord-merge".into())
            .spawn(move || merge_main(rx, merge_shards, merge_stats, merge_metrics, num_nodes))
            .map_err(|e| format!("spawning merge thread: {e}"))?;
        Ok(Coordinator {
            tx,
            shutting_down: AtomicBool::new(false),
            metrics,
            num_nodes,
            infos,
            manifest,
            shards,
            stats,
            joins: Mutex::new(vec![join]),
        })
    }

    /// Queue a scoring request with a reply callback (runs on the merge
    /// thread). [`SubmitError`] if the queue is full or draining.
    pub fn try_submit_with(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
        reply: ReplyFn,
    ) -> Result<(), SubmitError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let msg = CoordMsg::Score(CoordRequest {
            model,
            version,
            nodes,
            reply,
            enqueued: Instant::now(),
        });
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.metrics.record_request();
                self.metrics.queue_inc(0);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// [`Coordinator::try_submit_with`] wrapped in a channel, for blocking
    /// callers.
    pub fn try_submit(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Result<mpsc::Receiver<Result<ScoreReply, ScoreError>>, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.try_submit_with(
            model,
            version,
            nodes,
            Box::new(move |result| {
                let _ = reply_tx.send(result);
            }),
        )?;
        Ok(reply_rx)
    }

    /// Registered models (static — no hot reload in sharded mode).
    pub fn models(&self) -> Vec<ModelInfo> {
        self.infos.clone()
    }

    /// Global node count of the partitioned deployment graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// One merge thread answers everything.
    pub fn replicas(&self) -> usize {
        1
    }

    /// The coordinator's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The `GET /metrics` body: engine-compatible counters plus the
    /// partition summary and per-shard scatter statistics.
    pub fn render_metrics_json(&self) -> String {
        let base = self.metrics.snapshot().render_json();
        let shard_rows: Vec<String> = self
            .shards
            .iter()
            .zip(self.stats.iter())
            .map(|(spec, stat)| {
                let requests = stat.requests.load(Ordering::Relaxed);
                let total_us = stat.total_us.load(Ordering::Relaxed);
                let avg_us = total_us.checked_div(requests).unwrap_or(0);
                format!(
                    "{{\"shard\":{},\"addr\":\"{}\",\"lo\":{},\"hi\":{},\"ghosts\":{},\
                     \"cross_edges\":{},\"halo_bytes\":{},\"requests\":{requests},\
                     \"errors\":{},\"bytes_rx\":{},\"last_us\":{},\"avg_us\":{avg_us}}}",
                    spec.meta.index,
                    spec.addr,
                    spec.meta.lo,
                    spec.meta.hi,
                    spec.meta.ghosts,
                    spec.meta.cross_edges,
                    spec.meta.halo_bytes,
                    stat.errors.load(Ordering::Relaxed),
                    stat.bytes_rx.load(Ordering::Relaxed),
                    stat.last_us.load(Ordering::Relaxed),
                )
            })
            .collect();
        let mode = match self.manifest.mode {
            vgod_graph::PartitionMode::FullCopy => "full-copy",
            vgod_graph::PartitionMode::Sliced => "sliced",
        };
        format!(
            "{},\"partition\":{{\"mode\":\"{mode}\",\"shards\":{},\"ghosts\":{},\
             \"cross_edges\":{},\"halo_bytes\":{}}},\"shards\":[{}]}}",
            &base[..base.len() - 1],
            self.shards.len(),
            self.manifest.total_ghosts(),
            self.manifest.total_cross_edges(),
            self.manifest.total_halo_bytes(),
            shard_rows.join(","),
        )
    }

    /// Begin graceful shutdown: refuse new submissions, drain the queue,
    /// then ask every worker to stop. Idempotent.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.tx.send(CoordMsg::Shutdown);
        for spec in &self.shards {
            let _ = http::post(spec.addr, "/shutdown", "");
        }
    }

    /// Wait for the merge thread to exit (call after
    /// [`Coordinator::shutdown`]).
    pub fn join(&self) {
        let joins: Vec<_> = self.joins.lock().unwrap().drain(..).collect();
        for join in joins {
            let _ = join.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

/// Poll a worker's `/healthz` until it answers (or a few seconds pass) —
/// workers bind before loading finishes only when spawned in-process, but
/// separate worker *processes* report their address only after binding,
/// so a short retry loop absorbs startup races either way.
fn wait_healthy(spec: &ShardSpec) -> Result<(), String> {
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match http::get(spec.addr, "/healthz") {
            Ok((200, _)) => return Ok(()),
            Ok((status, body)) => {
                return Err(format!(
                    "shard {} at {}: unhealthy ({status}: {body})",
                    spec.meta.index, spec.addr
                ))
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("shard {} at {}: {e}", spec.meta.index, spec.addr));
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

fn merge_main(
    rx: mpsc::Receiver<CoordMsg>,
    shards: Vec<ShardSpec>,
    stats: Arc<Vec<ShardStat>>,
    metrics: Arc<Metrics>,
    num_nodes: usize,
) {
    // Persistent keep-alive connections, one per shard; a slot empties when
    // its transport fails and reconnects on the next scatter.
    let mut clients: Vec<Option<http::Client>> = (0..shards.len()).map(|_| None).collect();
    // Merged full-graph vectors per model — models are static in sharded
    // mode, so a cached vector stays valid for the server's lifetime.
    let mut cache: std::collections::HashMap<String, (u64, Arc<Vec<f32>>)> =
        std::collections::HashMap::new();
    loop {
        match rx.recv() {
            Ok(CoordMsg::Score(req)) => {
                metrics.record_batch(1);
                let result =
                    score_scattered(&req, &shards, &mut clients, &stats, num_nodes, &mut cache);
                if result.is_err() {
                    metrics.record_error();
                }
                metrics.record_latency_us(req.enqueued.elapsed().as_micros() as u64);
                metrics.queue_dec(0);
                (req.reply)(result);
            }
            Ok(CoordMsg::Shutdown) | Err(_) => return,
        }
    }
}

fn score_scattered(
    req: &CoordRequest,
    shards: &[ShardSpec],
    clients: &mut [Option<http::Client>],
    stats: &[ShardStat],
    num_nodes: usize,
    cache: &mut std::collections::HashMap<String, (u64, Arc<Vec<f32>>)>,
) -> Result<ScoreReply, ScoreError> {
    if let Some(nodes) = &req.nodes {
        if let Some(&bad) = nodes.iter().find(|&&u| u as usize >= num_nodes) {
            return Err(ScoreError::NodeOutOfRange {
                node: bad,
                num_nodes,
            });
        }
    }
    let (version, combined) = match cache.get(&req.model) {
        Some((loaded, merged)) => {
            if let Some(requested) = req.version {
                if requested != *loaded {
                    return Err(ScoreError::Lookup(LookupError::VersionMismatch {
                        name: req.model.clone(),
                        requested,
                        loaded: *loaded,
                    }));
                }
            }
            (*loaded, Arc::clone(merged))
        }
        None => {
            let (version, merged) =
                scatter_gather(&req.model, req.version, shards, clients, stats, num_nodes)?;
            let merged = Arc::new(merged);
            cache.insert(req.model.clone(), (version, Arc::clone(&merged)));
            (version, merged)
        }
    };
    let selected = match &req.nodes {
        Some(nodes) => {
            Arc::new(nodes.iter().map(|&u| combined[u as usize]).collect::<Vec<f32>>())
        }
        None => combined,
    };
    Ok(ScoreReply {
        model: req.model.clone(),
        version,
        nodes: req.nodes.clone(),
        scores: selected,
    })
}

/// One scatter: every shard scores its range concurrently, the gathered
/// [`RangeScores`] reassemble into the global combined vector.
fn scatter_gather(
    model: &str,
    version: Option<u64>,
    shards: &[ShardSpec],
    clients: &mut [Option<http::Client>],
    stats: &[ShardStat],
    num_nodes: usize,
) -> Result<(u64, Vec<f32>), ScoreError> {
    let body = match version {
        Some(v) => format!("{{\"model\":\"{}\",\"version\":{v}}}", escape(model)),
        None => format!("{{\"model\":\"{}\"}}", escape(model)),
    };
    let gathered: Vec<Result<(u64, RangeScores), ScoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .zip(clients.iter_mut())
            .enumerate()
            .map(|(index, (spec, slot))| {
                let body = &body;
                scope.spawn(move || fetch_shard(index, spec, slot, body, &stats[index]))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(index, handle)| {
                handle.join().unwrap_or_else(|_| {
                    Err(ScoreError::ShardDown {
                        shard: index,
                        cause: "scatter thread panicked".into(),
                    })
                })
            })
            .collect()
    });
    let mut parts = Vec::with_capacity(gathered.len());
    let mut version = 0u64;
    for result in gathered {
        match result {
            Ok((loaded, range)) => {
                version = loaded;
                parts.push(range);
            }
            Err(e) => {
                if let ScoreError::ShardDown { shard, cause } = &e {
                    eprintln!("vgod-serve: shard {shard} down: {cause}");
                }
                return Err(e);
            }
        }
    }
    let merged = merge_range_scores(num_nodes, parts);
    Ok((version, merged.combined))
}

/// One shard's leg of a scatter: reuse (or rebuild) the keep-alive
/// connection, post the score request, parse the range payload. Transport
/// failures empty the connection slot and surface as
/// [`ScoreError::ShardDown`].
fn fetch_shard(
    index: usize,
    spec: &ShardSpec,
    slot: &mut Option<http::Client>,
    body: &str,
    stat: &ShardStat,
) -> Result<(u64, RangeScores), ScoreError> {
    let started = Instant::now();
    stat.requests.fetch_add(1, Ordering::Relaxed);
    let shard_down = |cause: String| ScoreError::ShardDown {
        shard: index,
        cause,
    };
    let result = (|| {
        if slot.is_none() {
            *slot = Some(http::Client::connect(spec.addr).map_err(&shard_down)?);
        }
        let client = slot.as_mut().unwrap();
        let (status, payload) =
            client
                .request("POST", "/shard/score", Some(body))
                .map_err(|e| {
                    // The connection is in an unknown state — rebuild next time.
                    *slot = None;
                    shard_down(e)
                })?;
        stat.bytes_rx
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        match status {
            200 => {
                parse_range_payload(&payload).map_err(|e| shard_down(format!("bad payload: {e}")))
            }
            404 | 409 => Err(parse_shard_lookup_error(&payload, status)),
            other => Err(shard_down(format!("shard answered {other}: {payload}"))),
        }
    })();
    let us = started.elapsed().as_micros() as u64;
    stat.last_us.store(us, Ordering::Relaxed);
    stat.total_us.fetch_add(us, Ordering::Relaxed);
    if result.is_err() {
        stat.errors.fetch_add(1, Ordering::Relaxed);
    }
    result
}

fn parse_shard_lookup_error(payload: &str, status: u16) -> ScoreError {
    let parsed = Json::parse(payload).ok();
    let message = parsed
        .as_ref()
        .and_then(|v| v.get("error"))
        .and_then(Json::as_str)
        .unwrap_or("lookup failed")
        .to_string();
    if status == 409 {
        // The worker reports which version it actually has; surface the
        // same conflict the engine would.
        let loaded = parsed
            .as_ref()
            .and_then(|v| v.get("loaded"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        return ScoreError::Lookup(LookupError::VersionMismatch {
            name: message,
            requested: 0,
            loaded,
        });
    }
    ScoreError::Lookup(LookupError::UnknownModel(message))
}

fn parse_f32_array(value: &Json) -> Result<Vec<f32>, String> {
    let items = value.as_arr().ok_or("expected an array of scores")?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        // f32 -> Display -> f64 -> f32 is exact (safe double rounding:
        // f64 carries more than 2x + 2 the precision of f32).
        let v = item.as_f64().ok_or("expected a number")?;
        out.push(v as f32);
    }
    Ok(out)
}

fn parse_optional_channel(value: Option<&Json>) -> Result<Option<Vec<f32>>, String> {
    match value {
        None | Some(Json::Null) => Ok(None),
        Some(v) => parse_f32_array(v).map(Some),
    }
}

fn parse_range_payload(payload: &str) -> Result<(u64, RangeScores), String> {
    let v = Json::parse(payload)?;
    let version = v
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing version")?;
    let merge_name = v
        .get("merge")
        .and_then(Json::as_str)
        .ok_or("missing merge rule")?;
    let merge = ScoreMerge::parse_wire(merge_name)?;
    let combined = parse_f32_array(v.get("combined").ok_or("missing combined")?)?;
    let structural = parse_optional_channel(v.get("structural"))?;
    let contextual = parse_optional_channel(v.get("contextual"))?;
    Ok((
        version,
        RangeScores {
            scores: Scores {
                combined,
                structural,
                contextual,
            },
            merge,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_payload_roundtrips_bit_exact() {
        let range = RangeScores {
            scores: Scores {
                combined: vec![0.1, -2.5e-8, f32::MIN_POSITIVE, 3.4e38, 0.0],
                structural: Some(vec![1.5, 2.25]),
                contextual: None,
            },
            merge: ScoreMerge::Weighted(0.3),
        };
        let body = render_range_response("vgod", 1, 2, 64, 128, &range);
        let (version, parsed) = parse_range_payload(&body).unwrap();
        assert_eq!(version, 1);
        assert_eq!(parsed.scores.combined, range.scores.combined);
        assert_eq!(parsed.scores.structural, range.scores.structural);
        assert_eq!(parsed.scores.contextual, None);
        assert_eq!(parsed.merge, range.merge);
    }

    #[test]
    fn shard_score_body_validates() {
        assert_eq!(
            parse_shard_score_body(br#"{"model":"vgod"}"#).unwrap(),
            ("vgod".into(), None)
        );
        assert_eq!(
            parse_shard_score_body(br#"{"model":"deg","version":3}"#).unwrap(),
            ("deg".into(), Some(3))
        );
        assert!(parse_shard_score_body(b"{}").is_err());
        assert!(parse_shard_score_body(br#"{"model":"x","version":"y"}"#).is_err());
        assert!(parse_shard_score_body(b"{nope").is_err());
    }

    #[test]
    fn lookup_errors_carry_machine_readable_codes() {
        let (status, body) = lookup_error_response(&LookupError::UnknownModel("ghost".into()));
        assert_eq!(status, 404);
        assert!(body.contains("\"code\":\"unknown_model\""));
        let (status, body) = lookup_error_response(&LookupError::VersionMismatch {
            name: "m".into(),
            requested: 4,
            loaded: 1,
        });
        assert_eq!(status, 409);
        assert!(body.contains("\"loaded\":1"));
        let err = parse_shard_lookup_error(&body, status);
        assert!(matches!(
            err,
            ScoreError::Lookup(LookupError::VersionMismatch { loaded: 1, .. })
        ));
    }
}
