//! A minimal JSON value, parser, and string escaper.
//!
//! The workspace has no serde; request bodies are small and the response
//! bodies are hand-formatted (score arrays must keep the exact `f32`
//! `Display` rendering that offline score files use), so a ~150-line
//! recursive-descent parser covers everything serving needs.

/// Maximum container nesting the parser accepts. Recursive descent uses
/// the call stack, so an attacker sending `[[[[…` must hit a parse error
/// long before a stack overflow.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for model
                            // names / node lists; reject rather than corrupt.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u{hex} escape"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw byte run.
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_score_request_shapes() {
        let v = Json::parse(r#"{"model": "vbm", "nodes": [0, 3, 17], "version": 2}"#).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("vbm"));
        assert_eq!(v.get("version").unwrap().as_u64(), Some(2));
        let nodes: Vec<u64> = v
            .get("nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|n| n.as_u64().unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 3, 17]);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values_and_numbers() {
        let v = Json::parse(r#"[null, true, false, -1.5e2, "a\"bA", {"k": []}]"#).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Json::Null);
        assert_eq!(items[3].as_f64(), Some(-150.0));
        assert_eq!(items[4].as_str(), Some("a\"bA"));
        assert_eq!(items[5].get("k").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1} x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting_without_overflow() {
        // One level under the cap parses …
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // … one level over errors (instead of recursing toward a stack
        // overflow). Also cover objects and the truncated variant.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).unwrap_err().contains("nesting"));
        let bomb = "[".repeat(200_000);
        assert!(Json::parse(&bomb).is_err());
        let obj_bomb = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&obj_bomb).is_err());
    }

    #[test]
    fn fuzzed_mutations_never_panic() {
        // Deterministic fuzz: mutate valid request bodies byte-by-byte
        // (truncate / flip / splice). The parser must return Ok or Err,
        // never panic or hang.
        let seeds = [
            r#"{"model":"vbm","nodes":[0,3,17],"version":2}"#,
            r#"[null,true,-1.5e2,"a\"b",{"k":[]}]"#,
            r#"{"a":{"b":{"c":"A\ud800"}}}"#,
        ];
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seed in seeds {
            let bytes = seed.as_bytes();
            for cut in 0..bytes.len() {
                let _ = Json::parse(&seed[..seed.len() - cut.min(seed.len())]);
            }
            for _ in 0..2_000 {
                let mut mutated = bytes.to_vec();
                let at = (next() as usize) % mutated.len();
                match next() % 3 {
                    0 => mutated[at] = (next() % 256) as u8,
                    1 => {
                        mutated.truncate(at);
                    }
                    _ => {
                        let b = mutated[at];
                        mutated.insert(at, b);
                    }
                }
                if let Ok(text) = std::str::from_utf8(&mutated) {
                    let _ = Json::parse(text);
                }
            }
        }
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        // Round trip through the parser.
        let s = "weird \"name\"\twith\nstuff";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(s));
    }
}
