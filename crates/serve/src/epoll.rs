//! The non-blocking HTTP front: a single-threaded, level-triggered epoll
//! readiness loop (Linux only — other platforms use the portable blocking
//! server in [`crate::server`]).
//!
//! One thread owns every connection. Each connection is a small state
//! machine over two buffers:
//!
//! ```text
//!             ┌────────────── EPOLLIN ──────────────┐
//!             ▼                                     │
//!   ┌──── reading ────┐   parse_request     ┌───────┴───────┐
//!   │ rbuf ← read()   ├──── Complete ──────▶│  dispatching  │
//!   └─────────────────┘                     └───┬───────┬───┘
//!        ▲    │ Partial: wait for bytes         │       │ POST /score:
//!        │    │ Error: 400/413/431, close       │       │ queue on engine
//!        │    ▼                      immediate  │       ▼ replica
//!   ┌─── writing ───┐               (404/503/…) │  ┌─ pending slot ─┐
//!   │ wbuf → write()│◀──────────────────────────┘  │ reply callback │
//!   └───────┬───────┘◀───── completion queue ──────┤ + eventfd wake │
//!           │ EPOLLOUT when short write            └────────────────┘
//!           ▼
//!     keep-alive: back to reading        close: drop connection
//! ```
//!
//! Requests are parsed **zero-copy** ([`parse_request`] borrows slices out
//! of `rbuf`) and may be **pipelined**: every parsed request claims an
//! ordered response slot, immediate responses fill their slot on the spot,
//! and `/score` slots are filled later by the engine replica's reply
//! callback — which renders the body off the event loop, pushes a
//! [`Completion`], and wakes the loop through an eventfd. Slots are
//! flushed strictly in request order, so pipelined clients always see
//! responses in the order they asked.
//!
//! Backpressure composes with the engine: a full replica queue fails the
//! submit synchronously and the slot is filled with `503` immediately —
//! the event loop never blocks on the engine, and the engine never blocks
//! on a slow client (responses buffer in `wbuf`, drained by `EPOLLOUT`).
//!
//! Shutdown: `POST /shutdown` (or [`ServerHandle::shutdown`]) flips the
//! shared flag, drains the engine, and pokes the loop awake with a
//! throwaway connect. The loop then stops accepting, marks every
//! connection close-after-flush, waits for outstanding `/score` slots to
//! complete (the engine answers everything it accepted), flushes, and
//! exits.
//!
//! [`ServerHandle::shutdown`]: crate::ServerHandle::shutdown

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::{Arc, Mutex};

use crate::http::{parse_request, render_response_into, ParseOutcome};
use crate::server::{parse_score_body, route_immediate, score_result_response, Shared};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
const READ_CHUNK: usize = 64 * 1024;
const MAX_EVENTS: usize = 256;

/// A finished `/score` computation, produced on a replica thread and
/// consumed by the event loop.
struct Completion {
    conn: usize,
    gen: u32,
    seq: u64,
    status: u16,
    body: String,
}

/// Mailbox from replica threads into the event loop: a mutex-guarded
/// vector plus an eventfd so pushes wake `epoll_wait`.
struct CompletionQueue {
    items: Mutex<Vec<Completion>>,
    wake_fd: RawFd,
}

impl CompletionQueue {
    fn new() -> Result<Arc<CompletionQueue>, String> {
        let wake_fd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if wake_fd < 0 {
            return Err(format!("eventfd: {}", std::io::Error::last_os_error()));
        }
        Ok(Arc::new(CompletionQueue {
            items: Mutex::new(Vec::new()),
            wake_fd,
        }))
    }

    fn push(&self, completion: Completion) {
        self.items.lock().unwrap().push(completion);
        let one: u64 = 1;
        // Nonblocking; an already-signalled eventfd or a torn-down loop
        // makes this a no-op, which is fine — completions are also drained
        // unconditionally on every wakeup.
        unsafe { libc::write(self.wake_fd, &one as *const u64 as *const _, 8) };
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.items.lock().unwrap())
    }

    fn drain_wakeups(&self) {
        let mut counter: u64 = 0;
        while unsafe { libc::read(self.wake_fd, &mut counter as *mut u64 as *mut _, 8) } == 8 {}
    }
}

impl Drop for CompletionQueue {
    fn drop(&mut self) {
        // The queue outlives the reactor (reply callbacks hold an `Arc`),
        // so the eventfd stays valid for every late completion and is
        // closed exactly once, here.
        unsafe { libc::close(self.wake_fd) };
    }
}

/// One ordered response slot (see module docs). `response` is `None` while
/// a `/score` is in flight on a replica.
struct Slot {
    seq: u64,
    keep_alive: bool,
    response: Option<(u16, String)>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Read buffer; `rpos..` is the unparsed suffix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Write buffer; `wpos..` is the unsent suffix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Response slots in request order (front = oldest).
    pending: VecDeque<Slot>,
    next_seq: u64,
    /// Interest mask currently registered with epoll.
    registered: u32,
    sent_continue: bool,
    /// Peer half-closed its write side; serve what's queued, then close.
    peer_closed: bool,
    /// Unrecoverable parse error: ignore further input, close after flush.
    broken_input: bool,
    close_after_flush: bool,
}

impl Conn {
    fn idle(&self) -> bool {
        self.pending.is_empty() && self.wpos >= self.wbuf.len()
    }
}

/// The event loop and everything it owns.
pub(crate) struct Reactor {
    epfd: RawFd,
    listener: TcpListener,
    shared: Arc<Shared>,
    completions: Arc<CompletionQueue>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generation: u32,
    draining: bool,
    accepting: bool,
}

impl Reactor {
    /// Set up epoll state synchronously (so `serve` can fail fast); the
    /// returned reactor is moved onto the event-loop thread.
    pub(crate) fn new(listener: TcpListener, shared: Arc<Shared>) -> Result<Reactor, String> {
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(format!(
                "epoll_create1: {}",
                std::io::Error::last_os_error()
            ));
        }
        let completions = match CompletionQueue::new() {
            Ok(queue) => queue,
            Err(e) => {
                unsafe { libc::close(epfd) };
                return Err(e);
            }
        };
        let reactor = Reactor {
            epfd,
            listener,
            shared,
            completions,
            conns: Vec::new(),
            free: Vec::new(),
            generation: 0,
            draining: false,
            accepting: true,
        };
        reactor.ctl(
            libc::EPOLL_CTL_ADD,
            reactor.listener.as_raw_fd(),
            libc::EPOLLIN,
            TOKEN_LISTENER,
        )?;
        reactor.ctl(
            libc::EPOLL_CTL_ADD,
            reactor.completions.wake_fd,
            libc::EPOLLIN,
            TOKEN_WAKE,
        )?;
        Ok(reactor)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> Result<(), String> {
        let mut ev = libc::epoll_event { events, u64: token };
        if unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(format!("epoll_ctl: {}", std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Run until shutdown completes. Consumes the reactor; all fds close on
    /// the way out.
    pub(crate) fn run(mut self) {
        let mut events = [libc::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        loop {
            self.check_draining();
            if self.draining && self.conns.iter().all(Option::is_none) {
                break;
            }
            let n =
                unsafe { libc::epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as i32, -1) };
            if n < 0 {
                // EINTR: retry. Anything else is unrecoverable for a
                // single-loop server; exit rather than spin.
                if std::io::Error::last_os_error().raw_os_error() == Some(4) {
                    continue;
                }
                break;
            }
            for ev in &events[..n as usize] {
                // `epoll_event` is packed; copy fields out before use.
                let token = ev.u64;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => self.on_accept(),
                    TOKEN_WAKE => {
                        self.completions.drain_wakeups();
                        self.on_completions();
                    }
                    token => self.on_conn_event(token, bits),
                }
            }
            // Completions may have raced in while we processed sockets.
            self.on_completions();
        }
    }

    /// First wakeup after the shutdown flag flips: stop accepting and mark
    /// every connection for close; idle ones drop immediately.
    fn check_draining(&mut self) {
        if self.draining || !self.shared.is_shutting_down() {
            return;
        }
        self.draining = true;
        self.stop_accepting();
        for idx in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[idx] else {
                continue;
            };
            conn.close_after_flush = true;
            if conn.idle() {
                self.close_conn(idx);
            } else {
                self.update_interest(idx);
            }
        }
    }

    fn stop_accepting(&mut self) {
        if self.accepting {
            self.accepting = false;
            let _ = self.ctl(
                libc::EPOLL_CTL_DEL,
                self.listener.as_raw_fd(),
                0,
                TOKEN_LISTENER,
            );
        }
    }

    fn on_accept(&mut self) {
        loop {
            let fd = unsafe {
                libc::accept4(
                    self.listener.as_raw_fd(),
                    std::ptr::null_mut(),
                    std::ptr::null_mut(),
                    libc::SOCK_NONBLOCK | libc::SOCK_CLOEXEC,
                )
            };
            if fd < 0 {
                // EAGAIN (drained the backlog) or a transient accept error;
                // either way wait for the next readiness event.
                return;
            }
            let stream = unsafe { TcpStream::from_raw_fd(fd) };
            let _ = stream.set_nodelay(true);
            self.generation = self.generation.wrapping_add(1);
            let conn = Conn {
                stream,
                gen: self.generation,
                rbuf: Vec::with_capacity(4096),
                rpos: 0,
                wbuf: Vec::new(),
                wpos: 0,
                pending: VecDeque::new(),
                next_seq: 0,
                registered: 0,
                sent_continue: false,
                peer_closed: false,
                broken_input: false,
                close_after_flush: false,
            };
            let idx = match self.free.pop() {
                Some(idx) => {
                    self.conns[idx] = Some(conn);
                    idx
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            let gen = self.conns[idx].as_ref().unwrap().gen;
            let events = libc::EPOLLIN | libc::EPOLLRDHUP;
            if self
                .ctl(libc::EPOLL_CTL_ADD, fd, events, token(idx, gen))
                .is_err()
            {
                self.conns[idx] = None;
                self.free.push(idx);
                continue;
            }
            self.conns[idx].as_mut().unwrap().registered = events;
            self.shared.engine.metrics().conn_opened();
        }
    }

    fn on_conn_event(&mut self, token: u64, bits: u32) {
        let (idx, gen) = untoken(token);
        let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) else {
            return; // already closed; stale event
        };
        if conn.gen != gen {
            return; // slot reused since this event was queued
        }
        if bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        if bits & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0 {
            self.on_readable(idx);
        }
        if self.conns.get(idx).and_then(Option::as_ref).is_some() && bits & libc::EPOLLOUT != 0 {
            self.flush(idx);
        }
    }

    fn on_readable(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let conn = self.conns[idx].as_mut().unwrap();
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    if conn.idle() {
                        self.close_conn(idx);
                        return;
                    }
                    break;
                }
                Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.parse_available(idx);
        if self.conns.get(idx).and_then(Option::as_ref).is_some() {
            self.flush(idx);
        }
    }

    /// Parse every complete request sitting in `rbuf` (pipelining) and
    /// dispatch each one.
    fn parse_available(&mut self, idx: usize) {
        loop {
            let conn = self.conns[idx].as_mut().unwrap();
            if conn.broken_input {
                return;
            }
            let outcome = parse_request(&conn.rbuf[conn.rpos..]);
            match outcome {
                ParseOutcome::Partial { expect_continue } => {
                    // Interim 100 only when nothing is queued ahead of this
                    // request — an interim response must not overtake
                    // earlier final responses.
                    if expect_continue
                        && !conn.sent_continue
                        && conn.pending.is_empty()
                        && conn.wpos >= conn.wbuf.len()
                    {
                        conn.sent_continue = true;
                        conn.wbuf
                            .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                    }
                    break;
                }
                ParseOutcome::Error { status, message } => {
                    conn.broken_input = true;
                    let body = format!("{{\"error\":\"{}\"}}", crate::json::escape(message));
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.push_back(Slot {
                        seq,
                        keep_alive: false,
                        response: Some((status, body)),
                    });
                    break;
                }
                ParseOutcome::Complete(req) => {
                    let consumed = req.consumed;
                    let keep_alive = req.keep_alive;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.sent_continue = false;
                    let method_is_score = req.method == "POST" && req.path == "/score";
                    let method_is_update = req.method == "POST" && req.path == "/graph/update";
                    let response = if method_is_score {
                        let parsed = parse_score_body(req.body);
                        conn.rpos += consumed;
                        match parsed {
                            Err(err) => Some(err),
                            Ok((model, version, nodes)) => {
                                self.submit_score(idx, seq, model, version, nodes)
                            }
                        }
                    } else if method_is_update {
                        // Parse happens inside the backend (it owns the op
                        // grammar); the body must be copied out of rbuf
                        // before the borrow ends either way.
                        let body = req.body.to_vec();
                        conn.rpos += consumed;
                        self.submit_update(idx, seq, &body)
                    } else {
                        let immediate = route_immediate(req.method, req.path, &self.shared)
                            .unwrap_or((500, "{\"error\":\"unroutable\"}".into()));
                        let conn = self.conns[idx].as_mut().unwrap();
                        conn.rpos += consumed;
                        Some(immediate)
                    };
                    let conn = self.conns[idx].as_mut().unwrap();
                    conn.pending.push_back(Slot {
                        seq,
                        keep_alive,
                        response,
                    });
                    // Reclaim the consumed prefix once it dominates.
                    if conn.rpos > 64 * 1024 && conn.rpos * 2 > conn.rbuf.len() {
                        conn.rbuf.drain(..conn.rpos);
                        conn.rpos = 0;
                    }
                }
            }
        }
    }

    /// Queue a `/score` on the engine. `Some(response)` if it failed
    /// synchronously (shed / draining); `None` when a replica owns it and
    /// will deliver a [`Completion`].
    fn submit_score(
        &mut self,
        idx: usize,
        seq: u64,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Option<(u16, String)> {
        let gen = self.conns[idx].as_ref().unwrap().gen;
        let completions = Arc::clone(&self.completions);
        let reply = Box::new(move |result| {
            // Replica thread: render the body here, off the event loop.
            let (status, body) = score_result_response(result);
            completions.push(Completion {
                conn: idx,
                gen,
                seq,
                status,
                body,
            });
        });
        match self
            .shared
            .engine
            .try_submit_with(model, version, nodes, reply)
        {
            Ok(()) => None,
            Err(e) => Some(crate::server::submit_error_response(&e)),
        }
    }

    /// Queue a `/graph/update` on the streaming backend. Same slot
    /// discipline as [`Reactor::submit_score`]: `Some(response)` on a
    /// synchronous failure, `None` when the mutation worker will deliver a
    /// [`Completion`].
    fn submit_update(&mut self, idx: usize, seq: u64, body: &[u8]) -> Option<(u16, String)> {
        let gen = self.conns[idx].as_ref().unwrap().gen;
        let completions = Arc::clone(&self.completions);
        let reply = Box::new(move |status, body| {
            completions.push(Completion {
                conn: idx,
                gen,
                seq,
                status,
                body,
            });
        });
        self.shared.engine.try_submit_update(body, reply)
    }

    /// Deliver finished `/score` computations into their slots.
    fn on_completions(&mut self) {
        let batch = self.completions.take();
        let mut touched: Vec<usize> = Vec::new();
        for completion in batch {
            let Some(conn) = self.conns.get_mut(completion.conn).and_then(Option::as_mut) else {
                continue; // connection died while the score was in flight
            };
            if conn.gen != completion.gen {
                continue;
            }
            if let Some(slot) = conn.pending.iter_mut().find(|s| s.seq == completion.seq) {
                slot.response = Some((completion.status, completion.body));
                if !touched.contains(&completion.conn) {
                    touched.push(completion.conn);
                }
            }
        }
        for idx in touched {
            if self.conns.get(idx).and_then(Option::as_ref).is_some() {
                self.flush(idx);
            }
        }
    }

    /// Move filled slots (in order) into `wbuf`, write as much as the
    /// socket takes, then reconcile epoll interest / close the connection.
    fn flush(&mut self, idx: usize) {
        let draining = self.draining;
        let conn = self.conns[idx].as_mut().unwrap();
        // Promote ready responses strictly in request order.
        while let Some(front) = conn.pending.front() {
            if front.response.is_none() {
                break;
            }
            let slot = conn.pending.pop_front().unwrap();
            let (status, body) = slot.response.unwrap();
            let keep = slot.keep_alive && !draining && !conn.broken_input;
            render_response_into(&mut conn.wbuf, status, &body, keep);
            if !keep {
                conn.close_after_flush = true;
                // Later pipelined responses must not follow a `Connection:
                // close`; their completions will be dropped by seq lookup.
                conn.pending.clear();
                break;
            }
        }
        // Push bytes.
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close_conn(idx);
                    return;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.close_after_flush || (conn.peer_closed && conn.pending.is_empty()) {
                self.close_conn(idx);
                return;
            }
        } else if conn.wpos > 256 * 1024 {
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
        self.update_interest(idx);
    }

    fn update_interest(&mut self, idx: usize) {
        let conn = self.conns[idx].as_ref().unwrap();
        let mut desired = 0u32;
        if !conn.peer_closed && !conn.broken_input {
            desired |= libc::EPOLLIN | libc::EPOLLRDHUP;
        }
        if conn.wpos < conn.wbuf.len() {
            desired |= libc::EPOLLOUT;
        }
        if desired != conn.registered {
            let fd = conn.stream.as_raw_fd();
            let tok = token(idx, conn.gen);
            if self.ctl(libc::EPOLL_CTL_MOD, fd, desired, tok).is_ok() {
                self.conns[idx].as_mut().unwrap().registered = desired;
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            // Dropping the TcpStream closes the fd, which also removes it
            // from the epoll set.
            self.free.push(idx);
            self.shared.engine.metrics().conn_closed();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe { libc::close(self.epfd) };
    }
}

fn token(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn untoken(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}
