//! Just enough HTTP/1.1 over `std::net` for the scoring endpoints: a
//! request parser, a response writer, and a tiny blocking client used by
//! tests, the CI smoke example, and the serving benchmark.
//!
//! Deliberate simplifications (documented contract, not accidents): every
//! response closes the connection (`Connection: close`), bodies require
//! `Content-Length` (no chunked encoding), and header names are
//! case-insensitively matched only where the server needs them.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest accepted request body (a node list for a million-node graph
/// fits comfortably; anything bigger is a client bug).
pub const MAX_BODY: usize = 16 << 20;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target as sent (path only; no query parsing).
    pub path: String,
    /// Raw body bytes (empty when there was no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one request from a connection.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, String> {
    let mut line = String::new();
    stream
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    if line.is_empty() {
        return Err("connection closed before request line".into());
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line {line:?}"));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        stream
            .read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Write a JSON response and flush. Always closes the connection.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Blocking one-shot HTTP client: send `method path` with an optional JSON
/// body, return `(status, body)`. This is the repo's own client helper the
/// CI smoke test and benches drive the server with.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut stream = stream;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    stream.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|e| format!("non-UTF-8 body: {e}"))
}

/// `GET path` against a server.
pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    request(addr, "POST", path, Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /score HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_bodyless_request_and_rejects_garbage() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(read_request(&mut &b""[..]).is_err());
        assert!(read_request(&mut &b"nonsense\r\n\r\n"[..]).is_err());
        assert!(
            read_request(&mut &b"GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"[..]).is_err()
        );
    }

    #[test]
    fn formats_responses() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "{\"error\":\"full\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.ends_with("{\"error\":\"full\"}"));
    }
}
