//! Just enough HTTP/1.1 for the scoring endpoints, in two flavours:
//!
//! * a **zero-copy request parser** ([`parse_request`]) for the
//!   non-blocking server: it borrows method/path/body slices straight out
//!   of a connection's read buffer (no `String` per request), reports
//!   incomplete input as [`ParseOutcome::Partial`] so the event loop can
//!   wait for more bytes, and maps malformed or oversized input to proper
//!   status codes (`400`/`413`/`431`) instead of panicking or hanging;
//! * a **blocking client** — the one-shot [`get`]/[`post`] helpers plus the
//!   keep-alive [`Client`], which pipelines many requests over one
//!   connection ([`Client::send`]/[`Client::flush`]/[`Client::recv`]) and
//!   is what the serving benchmark and the keep-alive e2e tests drive the
//!   server with.
//!
//! Deliberate simplifications (documented contract, not accidents): bodies
//! require `Content-Length` (no chunked encoding), responses always carry
//! `Content-Length`, and header names are matched case-insensitively only
//! where the server needs them.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest accepted request body (a node list for a million-node graph
/// fits comfortably; anything bigger is a client bug → `413`).
pub const MAX_BODY: usize = 16 << 20;

/// Largest accepted header section (request line + headers) → `431`.
pub const MAX_HEADERS: usize = 16 << 10;

/// A request parsed in place: every `&str`/`&[u8]` borrows from the
/// connection's read buffer.
#[derive(Clone, Copy, Debug)]
pub struct ParsedRequest<'a> {
    /// `GET`, `POST`, …
    pub method: &'a str,
    /// Request target as sent (path only; no query parsing).
    pub path: &'a str,
    /// Body bytes (empty when there was no `Content-Length`).
    pub body: &'a [u8],
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection:` headers).
    pub keep_alive: bool,
    /// Total bytes this request occupied in the buffer (headers + body) —
    /// what the caller consumes before parsing the next pipelined request.
    pub consumed: usize,
}

/// One step of incremental parsing over a connection buffer.
#[derive(Clone, Copy, Debug)]
pub enum ParseOutcome<'a> {
    /// A full request; consume [`ParsedRequest::consumed`] bytes.
    Complete(ParsedRequest<'a>),
    /// More bytes needed before a verdict.
    Partial {
        /// Headers carried `Expect: 100-continue` and the body has not
        /// fully arrived — the server should emit `HTTP/1.1 100 Continue`
        /// (once) so the client sends the body.
        expect_continue: bool,
    },
    /// Malformed or oversized input. The connection cannot be re-synced,
    /// so the caller should answer and close.
    Error {
        /// HTTP status to answer with (`400`, `413`, `431`).
        status: u16,
        /// Human-readable cause, safe to embed in a JSON error body.
        message: &'static str,
    },
}

/// Incrementally parse one request from the front of `buf`.
///
/// Never allocates and never blocks: the caller appends freshly read bytes
/// to its buffer and re-invokes until [`ParseOutcome::Complete`] (then
/// consumes and repeats for pipelined requests) or
/// [`ParseOutcome::Error`].
pub fn parse_request(buf: &[u8]) -> ParseOutcome<'_> {
    // Header/body boundary first; bound the search so an endless header
    // stream cannot make us buffer forever.
    let window = buf.len().min(MAX_HEADERS + 4);
    let Some(head_end) = find_double_crlf(&buf[..window]) else {
        if buf.len() > MAX_HEADERS {
            return ParseOutcome::Error {
                status: 431,
                message: "header section exceeds limit",
            };
        }
        return ParseOutcome::Partial {
            expect_continue: false,
        };
    };
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return ParseOutcome::Error {
            status: 400,
            message: "header section is not valid UTF-8",
        };
    };

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Error {
            status: 400,
            message: "malformed request line",
        };
    };
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return ParseOutcome::Error {
                status: 400,
                message: "unsupported HTTP version",
            }
        }
    };

    let mut content_length = 0usize;
    let mut expect_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Error {
                status: 400,
                message: "malformed header line",
            };
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(len) = value.parse::<usize>() else {
                return ParseOutcome::Error {
                    status: 400,
                    message: "bad Content-Length",
                };
            };
            content_length = len;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }
    if content_length > MAX_BODY {
        return ParseOutcome::Error {
            status: 413,
            message: "body exceeds limit",
        };
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Partial { expect_continue };
    }
    ParseOutcome::Complete(ParsedRequest {
        method,
        path,
        body: &buf[body_start..total],
        keep_alive,
        consumed: total,
    })
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a JSON response into `out` (the event loop appends straight
/// onto a connection's write buffer — one fewer copy than formatting a
/// `String` first).
pub fn render_response_into(out: &mut Vec<u8>, status: u16, body: &str, keep_alive: bool) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            reason(status),
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
}

/// Write a JSON response and flush (blocking paths: fallback server,
/// tests).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    render_response_into(&mut out, status, body, keep_alive);
    stream.write_all(&out)?;
    stream.flush()
}

/// An owned `(method, path, body, keep_alive)` request, for callers that
/// outlive the read buffer (the blocking fallback server).
pub type OwnedRequest = (String, String, Vec<u8>, bool);

/// Read one request from a blocking connection (portable fallback server).
/// `Ok(None)` means the peer closed cleanly between requests.
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<OwnedRequest>, (u16, String)> {
    let mut line = String::new();
    stream
        .read_line(&mut line)
        .map_err(|e| (400, format!("reading request line: {e}")))?;
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err((400, format!("malformed request line {line:?}")));
    }
    let mut keep_alive = version == "HTTP/1.1";

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        stream
            .read_line(&mut header)
            .map_err(|e| (400, format!("reading header: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| (400, format!("bad Content-Length {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return Err((413, format!("body of {content_length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| (400, format!("reading body: {e}")))?;
    Ok(Some((method, path, body, keep_alive)))
}

/// A keep-alive HTTP/1.1 client over one connection. Requests can be
/// pipelined: [`Client::send`] buffers, [`Client::flush`] pushes the whole
/// wave in one write, [`Client::recv`] reads responses back in order —
/// which is how a benchmark client keeps a server core busy without one
/// round-trip per request.
pub struct Client {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    rpos: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            wbuf: Vec::with_capacity(1024),
            rbuf: Vec::with_capacity(4096),
            rpos: 0,
        })
    }

    /// Buffer one request (call [`Client::flush`] to put it on the wire).
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
        let body = body.unwrap_or("");
        self.wbuf.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }

    /// Write every buffered request in one syscall-sized burst.
    pub fn flush(&mut self) -> Result<(), String> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        self.stream
            .write_all(&self.wbuf)
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send: {e}"))?;
        self.wbuf.clear();
        Ok(())
    }

    /// Read the next pipelined response: `(status, body)`.
    pub fn recv(&mut self) -> Result<(u16, String), String> {
        // Headers.
        let head_end = loop {
            if let Some(at) = find_double_crlf(&self.rbuf[self.rpos..]) {
                break self.rpos + at;
            }
            self.fill()?;
        };
        let head = std::str::from_utf8(&self.rbuf[self.rpos..head_end])
            .map_err(|e| format!("non-UTF-8 response head: {e}"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad Content-Length {value:?}"))?;
                }
            }
        }
        // Body.
        let body_start = head_end + 4;
        while self.rbuf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = String::from_utf8(self.rbuf[body_start..body_start + content_length].to_vec())
            .map_err(|e| format!("non-UTF-8 body: {e}"))?;
        self.rpos = body_start + content_length;
        // Compact once the consumed prefix dominates the buffer.
        if self.rpos > 64 * 1024 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        Ok((status, body))
    }

    /// One whole round-trip on this connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        self.send(method, path, body);
        self.flush()?;
        self.recv()
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self
            .stream
            .read(&mut chunk)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".into());
        }
        self.rbuf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

/// Blocking one-shot HTTP client: send `method path` with an optional JSON
/// body on a fresh connection, return `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut stream = stream;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    stream.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|e| format!("non-UTF-8 body: {e}"))
}

/// `GET path` against a server.
pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    request(addr, "POST", path, Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> ParsedRequest<'_> {
        match parse_request(buf) {
            ParseOutcome::Complete(req) => req,
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    fn error_status(buf: &[u8]) -> u16 {
        match parse_request(buf) {
            ParseOutcome::Error { status, .. } => status,
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn parses_request_with_body_zero_copy() {
        let raw = b"POST /score HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcdEXTRA";
        let req = complete(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.consumed, raw.len() - "EXTRA".len());
        // Borrowed, not copied: the body slice points into the input.
        let body_offset = raw.len() - "abcdEXTRA".len();
        assert_eq!(
            req.body.as_ptr() as usize,
            raw.as_ptr() as usize + body_offset
        );
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /score HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let first = complete(raw);
        assert_eq!(first.path, "/healthz");
        let second = complete(&raw[first.consumed..]);
        assert_eq!(second.path, "/score");
        assert_eq!(second.body, b"{}");
        assert_eq!(first.consumed + second.consumed, raw.len());
    }

    #[test]
    fn partial_input_waits_for_more_bytes() {
        let full = b"POST /score HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
        for cut in [0, 1, 10, 25, full.len() - 1] {
            assert!(
                matches!(parse_request(&full[..cut]), ParseOutcome::Partial { .. }),
                "prefix of {cut} bytes must be Partial"
            );
        }
        assert_eq!(complete(full).body, b"0123456789");
    }

    #[test]
    fn connection_and_version_semantics() {
        let req = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let req = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
        assert_eq!(error_status(b"GET / HTTP/2\r\n\r\n"), 400);
    }

    #[test]
    fn expect_continue_is_reported_while_body_pending() {
        let head = b"POST /score HTTP/1.1\r\nContent-Length: 4\r\nExpect: 100-continue\r\n\r\n";
        match parse_request(head) {
            ParseOutcome::Partial { expect_continue } => assert!(expect_continue),
            other => panic!("expected Partial, got {other:?}"),
        }
        let mut full = head.to_vec();
        full.extend_from_slice(b"abcd");
        assert_eq!(complete(&full).body, b"abcd");
    }

    #[test]
    fn malformed_and_oversized_inputs_map_to_statuses() {
        assert_eq!(error_status(b"nonsense\r\n\r\n"), 400);
        assert_eq!(
            error_status(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            400
        );
        assert_eq!(
            error_status(b"GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            400
        );
        assert_eq!(
            error_status(b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            400
        );
        assert_eq!(error_status(b"GET \xff\xfe HTTP/1.1\r\n\r\n"), 400);
        // Declared body over the cap: rejected before any body bytes arrive.
        let huge = format!(
            "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(error_status(huge.as_bytes()), 413);
        // Endless header section: rejected once past the header cap.
        let mut runaway = b"GET / HTTP/1.1\r\n".to_vec();
        while runaway.len() <= MAX_HEADERS {
            runaway.extend_from_slice(b"X-Filler: yes\r\n");
        }
        assert_eq!(error_status(&runaway), 431);
    }

    #[test]
    fn truncated_garbage_never_panics() {
        // Fuzz-ish: every prefix of valid and invalid requests must parse
        // to *some* outcome without panicking.
        let samples: [&[u8]; 5] = [
            b"POST /score HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd",
            b"\r\n\r\n\r\n\r\n",
            b"POST",
            b"\x00\x01\x02\x03\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
        ];
        for sample in samples {
            for cut in 0..=sample.len() {
                let _ = parse_request(&sample[..cut]);
            }
        }
    }

    #[test]
    fn blocking_read_request_keeps_fallback_contract() {
        let raw = b"POST /score HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcd";
        let (method, path, body, keep_alive) = read_request(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/score");
        assert_eq!(body, b"abcd");
        assert!(keep_alive);
        assert!(read_request(&mut &b""[..]).unwrap().is_none());
        assert!(read_request(&mut &b"nonsense\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn formats_responses() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "{\"error\":\"full\"}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"full\"}"));

        let mut out = Vec::new();
        render_response_into(&mut out, 200, "{}", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert_eq!(reason(413), "Payload Too Large");
        assert_eq!(reason(431), "Request Header Fields Too Large");
    }
}
