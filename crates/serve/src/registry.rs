//! The model registry: every checkpoint in a watched directory, keyed by
//! `(name, version)`, with atomic hot reload.
//!
//! The registry itself is owned by one reloader thread; scoring replicas
//! never touch it directly. Instead the reloader publishes an immutable
//! [`Snapshot`] — a map of `Arc`-shared detectors — after every change,
//! and replicas grab the current `Arc<Snapshot>` per batch. Publishing a
//! snapshot is one pointer swap, so a hot reload never stalls scoring and
//! a replica mid-batch keeps the consistent view it started with.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use std::time::{Duration, SystemTime};

use crate::AnyDetector;

/// Registry tuning knobs (part of [`ServeConfig`](crate::ServeConfig)).
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// How often the reloader thread re-scans the checkpoint directory
    /// for new / changed / removed files (`vgod serve --reload-ms`).
    pub reload_poll: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            reload_poll: Duration::from_millis(500),
        }
    }
}

/// What `GET /models` reports about one registered model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry key: the checkpoint's file stem.
    pub name: String,
    /// Reload generation: `1` on first load, incremented each hot reload.
    pub version: u64,
    /// Checkpoint kind tag (`vgod`, `vbm`, `dominant`, …).
    pub kind: String,
}

#[derive(Debug)]
struct Entry {
    detector: Arc<AnyDetector>,
    version: u64,
    mtime: Option<SystemTime>,
    len: u64,
}

/// Errors from registry lookups, mapped to HTTP statuses by the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// No model with the requested name.
    UnknownModel(String),
    /// The model exists, but not at the requested version (it was
    /// hot-reloaded since the client pinned a version).
    VersionMismatch {
        /// The model name.
        name: String,
        /// The version the client asked for.
        requested: u64,
        /// The version currently loaded.
        loaded: u64,
    },
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            LookupError::VersionMismatch {
                name,
                requested,
                loaded,
            } => write!(f, "model {name:?} is at version {loaded}, not {requested}"),
        }
    }
}

/// Checkpoints from one directory, loadable by name.
///
/// Every regular file in the directory is loaded through
/// [`AnyDetector::load`]; the file stem becomes the model name. Reloads are
/// atomic per model: a changed file is parsed into a fresh detector first
/// and only then swapped in, so a half-written or corrupt checkpoint never
/// evicts the model that is currently serving (the failure is reported and
/// the old version keeps answering).
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    entries: BTreeMap<String, Entry>,
}

impl Registry {
    /// Load every checkpoint under `dir`. Fails if the directory cannot be
    /// read or any file fails to parse — at startup a bad checkpoint is a
    /// deployment error, not something to serve around.
    pub fn open(dir: &Path) -> Result<Registry, String> {
        let mut registry = Registry {
            dir: dir.to_path_buf(),
            entries: BTreeMap::new(),
        };
        for (name, path) in registry.checkpoint_files()? {
            let detector = Arc::new(AnyDetector::load_file(&path)?);
            let (mtime, len) = stat(&path);
            registry.entries.insert(
                name,
                Entry {
                    detector,
                    version: 1,
                    mtime,
                    len,
                },
            );
        }
        Ok(registry)
    }

    fn checkpoint_files(&self) -> Result<Vec<(String, PathBuf)>, String> {
        let dir = &self.dir;
        let mut files = Vec::new();
        let listing = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for item in listing {
            let item = item.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = item.path();
            if !path.is_file() {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.starts_with('.') {
                continue; // editor/atomic-rename droppings
            }
            files.push((stem.to_string(), path));
        }
        files.sort();
        Ok(files)
    }

    /// Re-scan the directory: load new files, reload files whose
    /// mtime/length changed (bumping their version), drop models whose
    /// files disappeared. Returns human-readable reload failures; each
    /// failure leaves the previously loaded version serving.
    pub fn poll_reload(&mut self) -> Vec<String> {
        let mut failures = Vec::new();
        let files = match self.checkpoint_files() {
            Ok(files) => files,
            Err(e) => {
                failures.push(e);
                return failures;
            }
        };
        let live: std::collections::BTreeSet<&String> =
            files.iter().map(|(name, _)| name).collect();
        self.entries.retain(|name, _| live.contains(name));
        for (name, path) in files {
            let (mtime, len) = stat(&path);
            if let Some(entry) = self.entries.get(&name) {
                if entry.mtime == mtime && entry.len == len {
                    continue;
                }
            }
            match AnyDetector::load_file(&path) {
                Ok(detector) => {
                    let version = self.entries.get(&name).map_or(1, |e| e.version + 1);
                    self.entries.insert(
                        name,
                        Entry {
                            detector: Arc::new(detector),
                            version,
                            mtime,
                            len,
                        },
                    );
                }
                Err(e) => failures.push(e),
            }
        }
        failures
    }

    /// Look up a model, optionally pinned to a version.
    pub fn get(
        &self,
        name: &str,
        version: Option<u64>,
    ) -> Result<(&AnyDetector, u64), LookupError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| LookupError::UnknownModel(name.to_string()))?;
        if let Some(requested) = version {
            if requested != entry.version {
                return Err(LookupError::VersionMismatch {
                    name: name.to_string(),
                    requested,
                    loaded: entry.version,
                });
            }
        }
        Ok((entry.detector.as_ref(), entry.version))
    }

    /// Publishable immutable view of the current entries. Cheap: clones
    /// `Arc`s, never detectors.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::new(Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, e)| (name.clone(), (Arc::clone(&e.detector), e.version)))
                .collect(),
            infos: self.infos(),
        })
    }

    /// Registered models in name order.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.entries
            .iter()
            .map(|(name, e)| ModelInfo {
                name: name.clone(),
                version: e.version,
                kind: e.detector.kind().to_string(),
            })
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An immutable, `Arc`-shared view of the registry at one instant: what
/// every scoring replica resolves models against. Replicas capture one
/// snapshot per batch, so all requests in a flush see a consistent
/// model set even while the reloader publishes newer ones.
#[derive(Debug)]
pub struct Snapshot {
    entries: BTreeMap<String, (Arc<AnyDetector>, u64)>,
    infos: Vec<ModelInfo>,
}

impl Snapshot {
    /// Look up a model, optionally pinned to a version.
    pub fn get(
        &self,
        name: &str,
        version: Option<u64>,
    ) -> Result<(Arc<AnyDetector>, u64), LookupError> {
        let (detector, loaded) = self
            .entries
            .get(name)
            .ok_or_else(|| LookupError::UnknownModel(name.to_string()))?;
        if let Some(requested) = version {
            if requested != *loaded {
                return Err(LookupError::VersionMismatch {
                    name: name.to_string(),
                    requested,
                    loaded: *loaded,
                });
            }
        }
        Ok((Arc::clone(detector), *loaded))
    }

    /// Whether a model with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Registered models in name order.
    pub fn infos(&self) -> &[ModelInfo] {
        &self.infos
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The shared slot the reloader publishes snapshots into; readers pay one
/// `RwLock` read + `Arc` clone per batch.
#[derive(Debug)]
pub(crate) struct SnapshotCell(RwLock<Arc<Snapshot>>);

impl SnapshotCell {
    pub fn new(snapshot: Arc<Snapshot>) -> Self {
        Self(RwLock::new(snapshot))
    }

    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.0.read().unwrap())
    }

    pub fn store(&self, snapshot: Arc<Snapshot>) {
        *self.0.write().unwrap() = snapshot;
    }
}

fn stat(path: &Path) -> (Option<SystemTime>, u64) {
    match std::fs::metadata(path) {
        Ok(meta) => (meta.modified().ok(), meta.len()),
        Err(_) => (None, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgod_baselines::RandomDetector;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vgod_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_random(dir: &Path, name: &str, seed: u64) {
        AnyDetector::Random(RandomDetector::new(seed))
            .save_file(&dir.join(format!("{name}.ckpt")))
            .unwrap();
    }

    #[test]
    fn loads_names_and_versions() {
        let dir = tmp_dir("load");
        write_random(&dir, "a", 1);
        write_random(&dir, "b", 2);
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.len(), 2);
        let infos = reg.infos();
        assert_eq!(infos[0].name, "a");
        assert_eq!(infos[0].version, 1);
        assert_eq!(infos[1].kind, "random");
        assert!(reg.get("a", None).is_ok());
        assert!(reg.get("a", Some(1)).is_ok());
        assert_eq!(
            reg.get("a", Some(2)).unwrap_err(),
            LookupError::VersionMismatch {
                name: "a".into(),
                requested: 2,
                loaded: 1
            }
        );
        assert_eq!(
            reg.get("zzz", None).unwrap_err(),
            LookupError::UnknownModel("zzz".into())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_bumps_version_and_keeps_old_model_on_corruption() {
        let dir = tmp_dir("reload");
        write_random(&dir, "m", 1);
        let mut reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.get("m", None).unwrap().1, 1);

        // A real update (different byte length forces change detection even
        // on filesystems with coarse mtimes).
        std::fs::write(dir.join("m.ckpt"), "# vgod-random v1\nseed 123456789\n").unwrap();
        assert!(reg.poll_reload().is_empty());
        assert_eq!(reg.get("m", None).unwrap().1, 2);

        // Corruption: reload fails, version 2 keeps serving.
        std::fs::write(dir.join("m.ckpt"), "half-written garbage").unwrap();
        let failures = reg.poll_reload();
        assert_eq!(failures.len(), 1);
        assert_eq!(reg.get("m", None).unwrap().1, 2);

        // New + removed files.
        write_random(&dir, "n", 5);
        std::fs::remove_file(dir.join("m.ckpt")).unwrap();
        reg.poll_reload();
        assert!(reg.get("m", None).is_err());
        assert_eq!(reg.get("n", None).unwrap().1, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_bad_checkpoints_and_missing_dirs() {
        let dir = tmp_dir("bad");
        std::fs::write(dir.join("broken.ckpt"), "not a checkpoint").unwrap();
        assert!(Registry::open(&dir).is_err());
        assert!(Registry::open(&dir.join("missing")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
