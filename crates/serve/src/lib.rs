//! # vgod-serve — online inference for vgod-rs
//!
//! Turns trained checkpoints into a scoring service:
//!
//! * [`AnyDetector`] — one type over every detector the workspace can
//!   persist, loaded by dispatching on a checkpoint's magic line;
//! * [`Registry`] — a model registry that loads every checkpoint in a
//!   watched directory, keys each by `(name, version)`, and hot-reloads
//!   changed files atomically (a failed reload keeps the old model);
//! * [`Engine`] — a **replicated** micro-batching scoring engine: N
//!   scoring replicas (default one per core), each with its own bounded
//!   queue and arena-recycled buffers, sharing one `Arc`-published
//!   registry snapshot; requests route to replicas sticky-per-model, and
//!   each replica flush runs **one** forward pass per distinct model,
//!   serving every request of that model from it;
//! * [`serve`] — a dependency-free HTTP/1.1 server exposing `POST /score`,
//!   `GET /models`, `GET /healthz`, `GET /metrics` and `POST /shutdown`,
//!   with keep-alive and pipelining, backpressure (replica queue full ⇒
//!   `503`) and graceful shutdown that drains in-flight batches. On Linux
//!   the front is a single-threaded non-blocking epoll readiness loop with
//!   zero-copy request parsing; elsewhere it falls back to a portable
//!   blocking accept loop.
//!
//! Scoring is *transductive online serving*: the engine owns one graph
//! (the deployment graph) and answers score queries for subsets of its
//! nodes. Subset responses are produced by a full scoring pass plus row
//! selection ([`OutlierDetector::score_nodes`]), so a served score is
//! byte-identical to what `vgod detect` writes offline for the same
//! checkpoint and graph.
//!
//! [`OutlierDetector::score_nodes`]: vgod_eval::OutlierDetector::score_nodes
//!
//! ```no_run
//! use vgod_serve::{serve, ServeConfig};
//!
//! let handle = serve(
//!     "models/".as_ref(),
//!     "graph.txt".as_ref(),
//!     "127.0.0.1:0",
//!     ServeConfig::default(),
//! )
//! .unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.join(); // blocks until POST /shutdown
//! ```

#![warn(missing_docs)]

mod detector;
mod engine;
#[cfg(target_os = "linux")]
mod epoll;
pub mod http;
pub mod json;
mod metrics;
mod registry;
mod server;
mod shard;
mod stream;

pub use detector::AnyDetector;
pub use engine::{
    Engine, OocServeConfig, ReplyFn, ScoreError, ScoreReply, ServeConfig, SubmitError,
};
pub use metrics::{Metrics, MetricsSnapshot};
pub use registry::{ModelInfo, Registry, RegistryConfig};
pub use server::{serve, serve_sharded, serve_streaming, ServerHandle};
pub use shard::{run_shard_worker, Coordinator, ShardSpec, WorkerConfig, WorkerHandle};
pub use stream::{StreamConfig, StreamEngine, FRONTIER_BUCKETS};
