//! The HTTP front: a `TcpListener` accept loop, one thread per
//! connection, five endpoints, graceful shutdown.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::{Engine, ScoreError, ScoreReply, ServeConfig, SubmitError};
use crate::http::{read_request, write_response, Request};
use crate::json::{escape, Json};
use crate::metrics::Metrics;
use crate::registry::LookupError;

/// Running server: the engine plus the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

struct Shared {
    engine: Engine,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// Start serving: load the graph and every checkpoint under `models_dir`,
/// bind `bind_addr` (use port `0` for an ephemeral port), and return once
/// the server is accepting connections.
///
/// Endpoints:
///
/// * `POST /score` — body `{"model": NAME, "version": V?, "nodes": [ID..]?}`;
///   omitted `nodes` scores the whole graph. `404` unknown model, `409`
///   version mismatch, `400` malformed body or node out of range, `503`
///   queue full or draining.
/// * `GET /models` — registered checkpoints with versions and kinds.
/// * `GET /healthz` — liveness.
/// * `GET /metrics` — counters, latency percentiles, batch-size histogram.
/// * `POST /shutdown` — graceful stop: queued requests drain, then the
///   engine and accept loop exit ([`ServerHandle::join`] returns).
pub fn serve(
    models_dir: &Path,
    graph_path: &Path,
    bind_addr: &str,
    cfg: ServeConfig,
) -> Result<ServerHandle, String> {
    let metrics = Arc::new(Metrics::new());
    let engine = Engine::start(
        models_dir.to_path_buf(),
        graph_path.to_path_buf(),
        cfg,
        metrics,
    )?;
    let listener = TcpListener::bind(bind_addr).map_err(|e| format!("bind {bind_addr}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let shared = Arc::new(Shared {
        engine,
        shutdown: AtomicBool::new(false),
        addr,
    });
    let accept_shared = Arc::clone(&shared);
    let accept_join = std::thread::Builder::new()
        .name("vgod-serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(|e| format!("spawning accept thread: {e}"))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_join: Mutex::new(Some(accept_join)),
    })
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        self.shared.engine.metrics().snapshot()
    }

    /// The currently registered models (name, version, kind).
    pub fn models(&self) -> Vec<crate::ModelInfo> {
        self.shared.engine.models()
    }

    /// Trigger the same graceful stop as `POST /shutdown`. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the accept loop and engine have stopped (i.e. until
    /// shutdown was requested via HTTP or [`ServerHandle::shutdown`]).
    pub fn join(&self) {
        if let Some(handle) = self.accept_join.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.shared.engine.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drain the engine first (it answers everything already queued),
        // then poke the accept loop awake so it notices the flag.
        self.engine.shutdown();
        let _ = TcpStream::connect(self.addr);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        // Thread per connection: connections are short-lived (every
        // response closes), so the thread count tracks in-flight requests.
        let _ = std::thread::Builder::new()
            .name("vgod-serve-conn".into())
            .spawn(move || handle_connection(stream, conn_shared));
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match read_request(&mut reader) {
        Ok(req) => req,
        Err(e) => {
            let body = format!("{{\"error\":\"{}\"}}", escape(&e));
            let _ = write_response(&mut writer, 400, &body);
            return;
        }
    };
    let (status, body) = route(&request, &shared);
    let _ = write_response(&mut writer, status, &body);
}

fn route(req: &Request, shared: &Shared) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".into()),
        ("GET", "/models") => {
            let entries: Vec<String> = shared
                .engine
                .models()
                .iter()
                .map(|m| {
                    format!(
                        "{{\"name\":\"{}\",\"version\":{},\"kind\":\"{}\"}}",
                        escape(&m.name),
                        m.version,
                        escape(&m.kind)
                    )
                })
                .collect();
            (
                200,
                format!(
                    "{{\"graph_nodes\":{},\"models\":[{}]}}",
                    shared.engine.num_nodes(),
                    entries.join(",")
                ),
            )
        }
        ("GET", "/metrics") => (200, shared.engine.metrics().snapshot().render_json()),
        ("POST", "/shutdown") => {
            shared.begin_shutdown();
            (200, "{\"status\":\"shutting down\"}".into())
        }
        ("POST", "/score") => score(req, shared),
        ("GET" | "POST", _) => (404, "{\"error\":\"no such endpoint\"}".into()),
        _ => (405, "{\"error\":\"method not allowed\"}".into()),
    }
}

fn score(req: &Request, shared: &Shared) -> (u16, String) {
    let parsed = match std::str::from_utf8(&req.body)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(v) => v,
        Err(e) => {
            return (
                400,
                format!("{{\"error\":\"invalid JSON: {}\"}}", escape(&e)),
            )
        }
    };
    let Some(model) = parsed.get("model").and_then(Json::as_str) else {
        return (400, "{\"error\":\"missing \\\"model\\\"\"}".into());
    };
    let version = match parsed.get("version") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64() {
            Some(version) => Some(version),
            None => {
                return (
                    400,
                    "{\"error\":\"\\\"version\\\" must be an integer\"}".into(),
                )
            }
        },
    };
    let nodes = match parsed.get("nodes") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let Some(items) = v.as_arr() else {
                return (400, "{\"error\":\"\\\"nodes\\\" must be an array\"}".into());
            };
            let mut ids = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64().filter(|&u| u <= u32::MAX as u64) {
                    Some(u) => ids.push(u as u32),
                    None => {
                        return (
                            400,
                            "{\"error\":\"\\\"nodes\\\" must contain node ids\"}".into(),
                        )
                    }
                }
            }
            Some(ids)
        }
    };

    let reply_rx = match shared.engine.try_submit(model.to_string(), version, nodes) {
        Ok(rx) => rx,
        Err(SubmitError::Overloaded) => {
            return (503, "{\"error\":\"queue full\"}".into());
        }
        Err(SubmitError::ShuttingDown) => {
            return (503, "{\"error\":\"shutting down\"}".into());
        }
    };
    match reply_rx.recv() {
        Ok(Ok(reply)) => (200, render_reply(&reply)),
        Ok(Err(e)) => {
            let status = match &e {
                ScoreError::Lookup(LookupError::UnknownModel(_)) => 404,
                ScoreError::Lookup(LookupError::VersionMismatch { .. }) => 409,
                ScoreError::NodeOutOfRange { .. } => 400,
            };
            (
                status,
                format!("{{\"error\":\"{}\"}}", escape(&e.to_string())),
            )
        }
        Err(_) => (500, "{\"error\":\"engine dropped the request\"}".into()),
    }
}

/// Response body. Scores use `f32`'s `Display` (shortest round-trip
/// rendering) — the same formatting offline score files use, which is what
/// makes served scores byte-comparable to `vgod detect` output.
fn render_reply(reply: &ScoreReply) -> String {
    let scores: Vec<String> = reply.scores.iter().map(|s| s.to_string()).collect();
    let nodes = match &reply.nodes {
        Some(nodes) => {
            let ids: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
            format!("\"nodes\":[{}],", ids.join(","))
        }
        None => String::new(),
    };
    format!(
        "{{\"model\":\"{}\",\"version\":{},{}\"scores\":[{}]}}",
        escape(&reply.model),
        reply.version,
        nodes,
        scores.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use crate::AnyDetector;
    use std::path::PathBuf;
    use vgod_baselines::{DegNorm, RandomDetector};
    use vgod_eval::OutlierDetector as _;
    use vgod_graph::{save_graph, seeded_rng};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vgod_server_{tag}_{}", std::process::id()))
    }

    fn fixture(tag: &str) -> (PathBuf, PathBuf, vgod_graph::AttributedGraph) {
        let mut rng = seeded_rng(21);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(60, 2, 4.0, 0.9),
            &mut rng,
        );
        let x = vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 5, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        let dir = tmp(&format!("{tag}_models"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        AnyDetector::DegNorm(DegNorm)
            .save_file(&dir.join("degnorm.ckpt"))
            .unwrap();
        AnyDetector::Random(RandomDetector::new(3))
            .save_file(&dir.join("rand.ckpt"))
            .unwrap();
        let graph_path = tmp(&format!("{tag}_graph.txt"));
        save_graph(&g, graph_path.display().to_string()).unwrap();
        (dir, graph_path, g)
    }

    #[test]
    fn endpoints_respond() {
        let (models, graph_path, g) = fixture("endpoints");
        let handle = serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr();

        let (status, body) = http::get(addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

        let (status, body) = http::get(addr, "/models").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("graph_nodes").unwrap().as_u64(), Some(60));
        assert_eq!(v.get("models").unwrap().as_arr().unwrap().len(), 2);

        let (status, body) =
            http::post(addr, "/score", r#"{"model":"degnorm","nodes":[0,5]}"#).unwrap();
        assert_eq!(status, 200, "{body}");
        let expected = DegNorm.score(&g).combined;
        let v = Json::parse(&body).unwrap();
        let scored: Vec<f64> = v
            .get("scores")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.as_f64().unwrap())
            .collect();
        assert_eq!(scored.len(), 2);
        assert_eq!(scored[0] as f32, expected[0]);
        assert_eq!(scored[1] as f32, expected[5]);

        // Error mapping.
        let (status, _) = http::post(addr, "/score", r#"{"model":"nope"}"#).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http::post(addr, "/score", r#"{"model":"degnorm","version":9}"#).unwrap();
        assert_eq!(status, 409);
        let (status, _) =
            http::post(addr, "/score", r#"{"model":"degnorm","nodes":[999]}"#).unwrap();
        assert_eq!(status, 400);
        let (status, _) = http::post(addr, "/score", "{oops").unwrap();
        assert_eq!(status, 400);
        let (status, _) = http::get(addr, "/nothing").unwrap();
        assert_eq!(status, 404);

        let (status, body) = http::get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        let m = Json::parse(&body).unwrap();
        assert!(m.get("requests").unwrap().as_u64().unwrap() >= 1);

        let (status, _) = http::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        handle.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }

    #[test]
    fn startup_failures_are_synchronous() {
        let missing = tmp("no_such_dir");
        assert!(serve(
            &missing,
            &missing.join("graph.txt"),
            "127.0.0.1:0",
            ServeConfig::default()
        )
        .is_err());
    }
}
