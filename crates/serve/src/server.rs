//! The HTTP front door. On Linux this is the non-blocking epoll readiness
//! loop in [`crate::epoll`] — one thread, many keep-alive connections,
//! pipelining, zero-copy parsing. On other platforms it falls back to a
//! portable blocking accept loop (thread per connection, still keep-alive).
//!
//! Both fronts share the routing table below; `/score` is the only
//! asynchronous endpoint (it queues on the engine), everything else
//! answers immediately.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::{Engine, ReplyFn, ScoreError, ScoreReply, ServeConfig, SubmitError};
use crate::json::{escape, Json};
use crate::metrics::Metrics;
use crate::registry::LookupError;
use crate::shard::{Coordinator, ShardSpec};
use crate::stream::{parse_update_body, StreamConfig, StreamEngine, UpdateReplyFn};

/// Running server: the scoring backend plus the connection-handling thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loop_join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The scoring backend behind the HTTP front: the in-process replicated
/// [`Engine`], a [`Coordinator`] scatter-gathering over shard worker
/// processes, or the streaming [`StreamEngine`] with its mutable graph.
/// All expose the same submit surface, so the connection loops never know
/// which one they are driving.
pub(crate) enum Backend {
    Engine(Engine),
    Shards(Coordinator),
    Stream(StreamEngine),
}

impl Backend {
    pub(crate) fn try_submit_with(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
        reply: ReplyFn,
    ) -> Result<(), SubmitError> {
        match self {
            Backend::Engine(e) => e.try_submit_with(model, version, nodes, reply),
            Backend::Shards(c) => c.try_submit_with(model, version, nodes, reply),
            Backend::Stream(s) => s.try_submit_with(model, version, nodes, reply),
        }
    }

    /// Queue a `POST /graph/update` batch. `Some(response)` if it failed
    /// synchronously (non-streaming backend, malformed body, shed);
    /// `None` when the mutation worker owns it and will call `reply`.
    pub(crate) fn try_submit_update(
        &self,
        body: &[u8],
        reply: UpdateReplyFn,
    ) -> Option<(u16, String)> {
        let Backend::Stream(s) = self else {
            return Some((
                404,
                "{\"error\":\"graph updates need a streaming server (vgod serve --streaming)\"}"
                    .into(),
            ));
        };
        let ops = match parse_update_body(body) {
            Ok(ops) => ops,
            Err(response) => return Some(response),
        };
        match s.try_submit_update(ops, reply) {
            Ok(()) => None,
            Err(e) => Some(submit_error_response(&e)),
        }
    }

    // Only the portable blocking front calls this; the epoll front uses
    // the callback path.
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    pub(crate) fn try_submit(
        &self,
        model: String,
        version: Option<u64>,
        nodes: Option<Vec<u32>>,
    ) -> Result<std::sync::mpsc::Receiver<Result<ScoreReply, ScoreError>>, SubmitError> {
        match self {
            Backend::Engine(e) => e.try_submit(model, version, nodes),
            Backend::Shards(c) => c.try_submit(model, version, nodes),
            Backend::Stream(s) => s.try_submit(model, version, nodes),
        }
    }

    pub(crate) fn models(&self) -> Vec<crate::ModelInfo> {
        match self {
            Backend::Engine(e) => e.models(),
            Backend::Shards(c) => c.models(),
            Backend::Stream(s) => s.models(),
        }
    }

    pub(crate) fn num_nodes(&self) -> usize {
        match self {
            Backend::Engine(e) => e.num_nodes(),
            Backend::Shards(c) => c.num_nodes(),
            Backend::Stream(s) => s.num_nodes(),
        }
    }

    pub(crate) fn replicas(&self) -> usize {
        match self {
            Backend::Engine(e) => e.replicas(),
            Backend::Shards(c) => c.replicas(),
            Backend::Stream(s) => s.replicas(),
        }
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        match self {
            Backend::Engine(e) => e.metrics(),
            Backend::Shards(c) => c.metrics(),
            Backend::Stream(s) => s.metrics(),
        }
    }

    /// The `GET /metrics` body — the coordinator appends partition and
    /// per-shard scatter sections, the streaming engine a `stream`
    /// section, to the engine-shaped counters.
    pub(crate) fn metrics_json(&self) -> String {
        match self {
            Backend::Engine(e) => e.metrics().snapshot().render_json(),
            Backend::Shards(c) => c.render_metrics_json(),
            Backend::Stream(s) => s.metrics_json(),
        }
    }

    pub(crate) fn shutdown(&self) {
        match self {
            Backend::Engine(e) => e.shutdown(),
            Backend::Shards(c) => c.shutdown(),
            Backend::Stream(s) => s.shutdown(),
        }
    }

    pub(crate) fn join(&self) {
        match self {
            Backend::Engine(e) => e.join(),
            Backend::Shards(c) => c.join(),
            Backend::Stream(s) => s.join(),
        }
    }
}

/// State shared between the connection loop and the handle.
pub(crate) struct Shared {
    pub(crate) engine: Backend,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// Start serving: load the graph and every checkpoint under `models_dir`,
/// bind `bind_addr` (use port `0` for an ephemeral port), and return once
/// the server is accepting connections.
///
/// Endpoints:
///
/// * `POST /score` — body `{"model": NAME, "version": V?, "nodes": [ID..]?}`;
///   omitted `nodes` scores the whole graph. `404` unknown model, `409`
///   version mismatch, `400` malformed body or node out of range, `503`
///   routed replica queue full or draining.
/// * `GET /models` — registered checkpoints with versions and kinds.
/// * `GET /healthz` — liveness.
/// * `GET /metrics` — counters, latency percentiles, batch-size histogram,
///   per-replica queue depths, connection gauges.
/// * `POST /shutdown` — graceful stop: queued requests drain, then the
///   engine and connection loop exit ([`ServerHandle::join`] returns).
///
/// Connections are HTTP/1.1 keep-alive; malformed requests (bad framing,
/// oversized bodies or headers) are answered with `400`/`413`/`431` and
/// the connection is closed.
pub fn serve(
    models_dir: &Path,
    graph_path: &Path,
    bind_addr: &str,
    cfg: ServeConfig,
) -> Result<ServerHandle, String> {
    let metrics = Arc::new(Metrics::new());
    let engine = Engine::start(
        models_dir.to_path_buf(),
        graph_path.to_path_buf(),
        cfg,
        metrics,
    )?;
    start_front(Backend::Engine(engine), bind_addr)
}

/// Start the sharded front: validate the model catalogue, connect the
/// [`Coordinator`] to the given shard workers (spawned by the caller — the
/// CLI forks one process per shard), bind, and serve the same endpoint set
/// as [`serve`]. Additional semantics over the single-process front:
///
/// * `/score` answers are reassembled from per-shard range scores and are
///   byte-identical to single-process output;
/// * a dead worker fails `/score` with
///   `503 {"error":"shard_down","shard":I,"cause":"..."}`;
/// * `/metrics` carries `partition` and `shards` sections (per-shard
///   latency, scatter byte counts, halo-exchange sizes);
/// * checkpoints never hot-reload (every model stays at version 1).
pub fn serve_sharded(
    manifest: vgod_graph::PartitionManifest,
    shards: Vec<ShardSpec>,
    models_dir: &Path,
    bind_addr: &str,
    queue_capacity: usize,
) -> Result<ServerHandle, String> {
    let metrics = Arc::new(Metrics::new());
    let coordinator = Coordinator::start(manifest, shards, models_dir, queue_capacity, metrics)?;
    start_front(Backend::Shards(coordinator), bind_addr)
}

/// Start the streaming front: load the graph and checkpoints like
/// [`serve`], but back the server with the mutable [`StreamEngine`] and
/// expose `POST /graph/update` alongside the usual endpoint set:
///
/// * mutation batches apply to a versioned overlay over the packed base
///   graph; each applied batch delta-rescores the dirty k-hop frontier for
///   every local-receptive-field model and atomically republishes scores
///   (global/transductive models fall back to a full rescore or refit per
///   their [`DeltaCapability`](vgod_eval::DeltaCapability));
/// * `/score` answers from the published snapshot and is byte-identical to
///   offline `vgod detect` on the current (mutated) graph for every
///   local-capability detector;
/// * `/metrics` gains a `stream` section (mutation throughput, overlay
///   size, frontier histogram, update latency, staleness);
/// * checkpoints never hot-reload (the version axis belongs to the graph).
pub fn serve_streaming(
    models_dir: &Path,
    graph_path: &Path,
    bind_addr: &str,
    cfg: StreamConfig,
) -> Result<ServerHandle, String> {
    let metrics = Arc::new(Metrics::new());
    let engine = StreamEngine::start(models_dir, graph_path, cfg, metrics)?;
    start_front(Backend::Stream(engine), bind_addr)
}

fn start_front(engine: Backend, bind_addr: &str) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(bind_addr).map_err(|e| format!("bind {bind_addr}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let shared = Arc::new(Shared {
        engine,
        shutdown: AtomicBool::new(false),
        addr,
    });
    let loop_join = spawn_front(listener, Arc::clone(&shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        loop_join: Mutex::new(Some(loop_join)),
    })
}

#[cfg(target_os = "linux")]
fn spawn_front(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> Result<std::thread::JoinHandle<()>, String> {
    let reactor = crate::epoll::Reactor::new(listener, shared)?;
    std::thread::Builder::new()
        .name("vgod-serve-epoll".into())
        .spawn(move || reactor.run())
        .map_err(|e| format!("spawning event loop: {e}"))
}

#[cfg(not(target_os = "linux"))]
fn spawn_front(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> Result<std::thread::JoinHandle<()>, String> {
    std::thread::Builder::new()
        .name("vgod-serve-accept".into())
        .spawn(move || fallback::accept_loop(listener, shared))
        .map_err(|e| format!("spawning accept thread: {e}"))
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        self.shared.engine.metrics().snapshot()
    }

    /// The currently registered models (name, version, kind).
    pub fn models(&self) -> Vec<crate::ModelInfo> {
        self.shared.engine.models()
    }

    /// Number of scoring replicas the engine resolved to.
    pub fn replicas(&self) -> usize {
        self.shared.engine.replicas()
    }

    /// Trigger the same graceful stop as `POST /shutdown`. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the connection loop and engine have stopped (i.e. until
    /// shutdown was requested via HTTP or [`ServerHandle::shutdown`]).
    pub fn join(&self) {
        if let Some(handle) = self.loop_join.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.shared.engine.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

impl Shared {
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drain the engine first (it answers everything already queued —
        // replies land through the normal completion path), then poke the
        // connection loop awake so it notices the flag and starts closing.
        self.engine.shutdown();
        let _ = TcpStream::connect(self.addr);
    }
}

/// Route everything except `POST /score` and `POST /graph/update` (which
/// are asynchronous). `None` means "this request queues on the backend" —
/// the caller dispatches on the path.
pub(crate) fn route_immediate(method: &str, path: &str, shared: &Shared) -> Option<(u16, String)> {
    Some(match (method, path) {
        ("POST", "/score") | ("POST", "/graph/update") => return None,
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".into()),
        ("GET", "/models") => {
            let entries: Vec<String> = shared
                .engine
                .models()
                .iter()
                .map(|m| {
                    format!(
                        "{{\"name\":\"{}\",\"version\":{},\"kind\":\"{}\"}}",
                        escape(&m.name),
                        m.version,
                        escape(&m.kind)
                    )
                })
                .collect();
            (
                200,
                format!(
                    "{{\"graph_nodes\":{},\"models\":[{}]}}",
                    shared.engine.num_nodes(),
                    entries.join(",")
                ),
            )
        }
        ("GET", "/metrics") => (200, shared.engine.metrics_json()),
        ("POST", "/shutdown") => {
            shared.begin_shutdown();
            (200, "{\"status\":\"shutting down\"}".into())
        }
        ("GET" | "POST", _) => (404, "{\"error\":\"no such endpoint\"}".into()),
        _ => (405, "{\"error\":\"method not allowed\"}".into()),
    })
}

/// A validated `/score` body: `(model, pinned version, node subset)`.
pub(crate) type ScoreParams = (String, Option<u64>, Option<Vec<u32>>);

/// Validate a `/score` body into [`ScoreParams`], or the `400` response
/// describing what is wrong with it.
pub(crate) fn parse_score_body(body: &[u8]) -> Result<ScoreParams, (u16, String)> {
    let parsed = std::str::from_utf8(body)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
        .map_err(|e| {
            (
                400u16,
                format!("{{\"error\":\"invalid JSON: {}\"}}", escape(&e)),
            )
        })?;
    let Some(model) = parsed.get("model").and_then(Json::as_str) else {
        return Err((400, "{\"error\":\"missing \\\"model\\\"\"}".into()));
    };
    let version = match parsed.get("version") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64() {
            Some(version) => Some(version),
            None => {
                return Err((
                    400,
                    "{\"error\":\"\\\"version\\\" must be an integer\"}".into(),
                ))
            }
        },
    };
    let nodes = match parsed.get("nodes") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let Some(items) = v.as_arr() else {
                return Err((400, "{\"error\":\"\\\"nodes\\\" must be an array\"}".into()));
            };
            let mut ids = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64().filter(|&u| u <= u32::MAX as u64) {
                    Some(u) => ids.push(u as u32),
                    None => {
                        return Err((
                            400,
                            "{\"error\":\"\\\"nodes\\\" must contain node ids\"}".into(),
                        ))
                    }
                }
            }
            Some(ids)
        }
    };
    Ok((model.to_string(), version, nodes))
}

/// The response for a request the engine refused to queue.
pub(crate) fn submit_error_response(err: &SubmitError) -> (u16, String) {
    match err {
        SubmitError::Overloaded => (503, "{\"error\":\"queue full\"}".into()),
        SubmitError::ShuttingDown => (503, "{\"error\":\"shutting down\"}".into()),
    }
}

/// The response for a completed (scored or failed) request.
pub(crate) fn score_result_response(result: Result<ScoreReply, ScoreError>) -> (u16, String) {
    match result {
        Ok(reply) => (200, render_reply(&reply)),
        Err(ScoreError::ShardDown { shard, cause }) => (
            503,
            format!(
                "{{\"error\":\"shard_down\",\"shard\":{shard},\"cause\":\"{}\"}}",
                escape(&cause)
            ),
        ),
        Err(e) => {
            let status = match &e {
                ScoreError::Lookup(LookupError::UnknownModel(_)) => 404,
                ScoreError::Lookup(LookupError::VersionMismatch { .. }) => 409,
                ScoreError::NodeOutOfRange { .. } => 400,
                ScoreError::ShardDown { .. } => unreachable!(),
            };
            (
                status,
                format!("{{\"error\":\"{}\"}}", escape(&e.to_string())),
            )
        }
    }
}

/// Response body. Scores use `f32`'s `Display` (shortest round-trip
/// rendering) — the same formatting offline score files use, which is what
/// makes served scores byte-comparable to `vgod detect` output.
fn render_reply(reply: &ScoreReply) -> String {
    let scores: Vec<String> = reply.scores.iter().map(|s| s.to_string()).collect();
    let nodes = match &reply.nodes {
        Some(nodes) => {
            let ids: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
            format!("\"nodes\":[{}],", ids.join(","))
        }
        None => String::new(),
    };
    format!(
        "{{\"model\":\"{}\",\"version\":{},{}\"scores\":[{}]}}",
        escape(&reply.model),
        reply.version,
        nodes,
        scores.join(",")
    )
}

/// Portable blocking front: accept loop + thread per connection, with
/// HTTP/1.1 keep-alive. Compiled only where epoll is unavailable.
#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::*;
    use crate::http::{read_request, write_response};
    use std::io::BufReader;

    pub(super) fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
        for stream in listener.incoming() {
            if shared.is_shutting_down() {
                return;
            }
            let Ok(stream) = stream else { continue };
            let conn_shared = Arc::clone(&shared);
            let _ = std::thread::Builder::new()
                .name("vgod-serve-conn".into())
                .spawn(move || handle_connection(stream, conn_shared));
        }
    }

    fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
        shared.engine.metrics().conn_opened();
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                shared.engine.metrics().conn_closed();
                return;
            }
        });
        let mut writer = stream;
        loop {
            match read_request(&mut reader) {
                Ok(None) => break,
                Ok(Some((method, path, body, keep_alive))) => {
                    let (status, response) = respond(&method, &path, &body, &shared);
                    let keep = keep_alive && !shared.is_shutting_down();
                    if write_response(&mut writer, status, &response, keep).is_err() || !keep {
                        break;
                    }
                }
                Err((status, message)) => {
                    let body = format!("{{\"error\":\"{}\"}}", escape(&message));
                    let _ = write_response(&mut writer, status, &body, false);
                    break;
                }
            }
        }
        shared.engine.metrics().conn_closed();
    }

    fn respond(method: &str, path: &str, body: &[u8], shared: &Shared) -> (u16, String) {
        if let Some(immediate) = route_immediate(method, path, shared) {
            return immediate;
        }
        if path == "/graph/update" {
            let (tx, rx) = std::sync::mpsc::channel();
            let reply = Box::new(move |status, body| {
                let _ = tx.send((status, body));
            });
            return match shared.engine.try_submit_update(body, reply) {
                Some(response) => response,
                None => rx
                    .recv()
                    .unwrap_or((500, "{\"error\":\"engine dropped the update\"}".into())),
            };
        }
        let (model, version, nodes) = match parse_score_body(body) {
            Ok(parts) => parts,
            Err(response) => return response,
        };
        match shared.engine.try_submit(model, version, nodes) {
            Err(e) => submit_error_response(&e),
            Ok(reply_rx) => match reply_rx.recv() {
                Ok(result) => score_result_response(result),
                Err(_) => (500, "{\"error\":\"engine dropped the request\"}".into()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use crate::AnyDetector;
    use std::path::PathBuf;
    use vgod_baselines::{DegNorm, RandomDetector};
    use vgod_eval::OutlierDetector as _;
    use vgod_graph::{save_graph, seeded_rng};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vgod_server_{tag}_{}", std::process::id()))
    }

    fn fixture(tag: &str) -> (PathBuf, PathBuf, vgod_graph::AttributedGraph) {
        let mut rng = seeded_rng(21);
        let mut g = vgod_graph::community_graph(
            &vgod_graph::CommunityGraphConfig::homogeneous(60, 2, 4.0, 0.9),
            &mut rng,
        );
        let x = vgod_graph::gaussian_mixture_attributes(g.labels().unwrap(), 5, 3.0, 0.5, &mut rng);
        g.set_attrs(x);
        let dir = tmp(&format!("{tag}_models"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        AnyDetector::DegNorm(DegNorm)
            .save_file(&dir.join("degnorm.ckpt"))
            .unwrap();
        AnyDetector::Random(RandomDetector::new(3))
            .save_file(&dir.join("rand.ckpt"))
            .unwrap();
        let graph_path = tmp(&format!("{tag}_graph.txt"));
        save_graph(&g, graph_path.display().to_string()).unwrap();
        (dir, graph_path, g)
    }

    #[test]
    fn endpoints_respond() {
        let (models, graph_path, g) = fixture("endpoints");
        let handle = serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr();

        let (status, body) = http::get(addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

        let (status, body) = http::get(addr, "/models").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("graph_nodes").unwrap().as_u64(), Some(60));
        assert_eq!(v.get("models").unwrap().as_arr().unwrap().len(), 2);

        let (status, body) =
            http::post(addr, "/score", r#"{"model":"degnorm","nodes":[0,5]}"#).unwrap();
        assert_eq!(status, 200, "{body}");
        let expected = DegNorm.score(&g).combined;
        let v = Json::parse(&body).unwrap();
        let scored: Vec<f64> = v
            .get("scores")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.as_f64().unwrap())
            .collect();
        assert_eq!(scored.len(), 2);
        assert_eq!(scored[0] as f32, expected[0]);
        assert_eq!(scored[1] as f32, expected[5]);

        // Error mapping.
        let (status, _) = http::post(addr, "/score", r#"{"model":"nope"}"#).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http::post(addr, "/score", r#"{"model":"degnorm","version":9}"#).unwrap();
        assert_eq!(status, 409);
        let (status, _) =
            http::post(addr, "/score", r#"{"model":"degnorm","nodes":[999]}"#).unwrap();
        assert_eq!(status, 400);
        let (status, _) = http::post(addr, "/score", "{oops").unwrap();
        assert_eq!(status, 400);
        let (status, _) = http::get(addr, "/nothing").unwrap();
        assert_eq!(status, 404);

        let (status, body) = http::get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        let m = Json::parse(&body).unwrap();
        assert!(m.get("requests").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(
            m.get("replica_queue_depth")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            handle.replicas()
        );
        assert!(
            m.get("connections")
                .unwrap()
                .get("accepted")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1
        );

        let (status, _) = http::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        handle.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }

    #[test]
    fn keep_alive_and_pipelining_on_one_connection() {
        let (models, graph_path, g) = fixture("keepalive");
        let handle = serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr();
        let expected = DegNorm.score(&g).combined;

        let mut client = http::Client::connect(addr).unwrap();
        // Sequential keep-alive requests on one connection.
        for node in [0u32, 7, 13] {
            let (status, body) = client
                .request(
                    "POST",
                    "/score",
                    Some(&format!("{{\"model\":\"degnorm\",\"nodes\":[{node}]}}")),
                )
                .unwrap();
            assert_eq!(status, 200, "{body}");
            assert!(body.contains(&format!("\"scores\":[{}]", expected[node as usize])));
        }
        // Pipelined wave: many requests in one write, responses in order.
        for node in 0..16u32 {
            client.send(
                "POST",
                "/score",
                Some(&format!("{{\"model\":\"degnorm\",\"nodes\":[{node}]}}")),
            );
        }
        client.send("GET", "/healthz", None);
        client.flush().unwrap();
        for node in 0..16u32 {
            let (status, body) = client.recv().unwrap();
            assert_eq!(status, 200);
            assert!(
                body.contains(&format!("\"nodes\":[{node}]")),
                "responses must come back in request order: {body}"
            );
            assert!(body.contains(&format!("\"scores\":[{}]", expected[node as usize])));
        }
        let (status, _) = client.recv().unwrap();
        assert_eq!(status, 200);

        // One connection stayed open throughout.
        let snapshot = handle.metrics();
        assert!(snapshot.conns_active >= 1);

        handle.shutdown();
        handle.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }

    #[test]
    fn malformed_framing_gets_status_and_close() {
        let (models, graph_path, _) = fixture("framing");
        let handle = serve(&models, &graph_path, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = handle.addr();

        let mut client = http::Client::connect(addr).unwrap();
        // Oversized declared body → 413 before the body is sent.
        {
            use std::io::Write as _;
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            write!(
                raw,
                "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                crate::http::MAX_BODY + 1
            )
            .unwrap();
            raw.flush().unwrap();
            let mut resp = String::new();
            use std::io::Read as _;
            raw.set_read_timeout(Some(std::time::Duration::from_secs(30)))
                .unwrap();
            raw.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
            assert!(resp.contains("Connection: close"), "{resp}");
        }
        // Garbage request line → 400 (and the server survives).
        {
            use std::io::{Read as _, Write as _};
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.write_all(b"complete nonsense\r\n\r\n").unwrap();
            raw.flush().unwrap();
            let mut resp = String::new();
            raw.set_read_timeout(Some(std::time::Duration::from_secs(30)))
                .unwrap();
            raw.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        }
        // The keep-alive client from before still works.
        let (status, _) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);

        handle.shutdown();
        handle.join();
        let _ = std::fs::remove_dir_all(&models);
        let _ = std::fs::remove_file(&graph_path);
    }

    #[test]
    fn startup_failures_are_synchronous() {
        let missing = tmp("no_such_dir");
        assert!(serve(
            &missing,
            &missing.join("graph.txt"),
            "127.0.0.1:0",
            ServeConfig::default()
        )
        .is_err());
    }
}
